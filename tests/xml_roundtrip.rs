//! Property-based integration tests: the declarative XML language round-trips
//! arbitrary landscape descriptions, and controller rule bases embedded in
//! XML compile into working engines.

use autoglobe::controller::RuleBases;
use autoglobe::prelude::*;
use proptest::prelude::*;

fn action_kind_strategy() -> impl Strategy<Value = ActionKind> {
    proptest::sample::select(ActionKind::ALL.to_vec())
}


fn spec_strategy() -> impl Strategy<Value = (ServerSpec, ServiceSpec)> {
    (
        1.0f64..16.0,
        512u64..32768,
        0u32..3,
        proptest::collection::btree_set(action_kind_strategy(), 0..9),
        0.0f64..0.2,
    )
        .prop_map(|(idx, mem, min_inst, actions, base)| {
            let server = ServerSpec::new("host", (idx * 4.0).round() / 4.0)
                .with_memory(mem, mem * 2);
            let service = ServiceSpec::new("svc", ServiceKind::ApplicationServer)
                .with_instances(min_inst, Some(min_inst.max(1) + 3))
                .with_allowed_actions(actions)
                .with_load_model((base * 100.0).round() / 100.0, 0.004);
            (server, service)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// XML serialization is a faithful encoding of specs.
    #[test]
    fn description_round_trips_through_xml((server, service) in spec_strategy()) {
        let description = LandscapeDescription {
            servers: vec![server],
            services: vec![service],
            allocation: vec![],
            rule_bases: vec![],
        };
        let xml = description.to_xml();
        let reparsed = LandscapeDescription::from_xml(&xml).unwrap();
        prop_assert_eq!(description, reparsed);
    }

    /// Any rule written in the DSL embeds into a <ruleBase> element, parses
    /// back, and compiles into the controller's engines.
    #[test]
    fn xml_rule_bases_compile(
        weight in 0.0f64..=1.0,
        use_not in any::<bool>(),
        trigger_idx in 0usize..4,
    ) {
        let trigger = TriggerKind::ALL[trigger_idx];
        let atom = if use_not { "NOT cpuLoad IS low" } else { "cpuLoad IS high" };
        let w = (weight * 100.0).round() / 100.0;
        let xml = format!(
            r#"<landscape>
                 <ruleBase trigger="{}">
                   IF {atom} AND serviceLoad IS high THEN scaleOut IS applicable WITH {w}
                 </ruleBase>
               </landscape>"#,
            trigger.name(),
        );
        let description = LandscapeDescription::from_xml(&xml).unwrap();
        let mut rule_bases = RuleBases::paper_defaults();
        rule_bases.apply_descriptions(&description.rule_bases).unwrap();
        let base = rule_bases.for_trigger(trigger, "any");
        prop_assert_eq!(base.len(), 1, "replacement rule base has exactly one rule");
        prop_assert!((base.rules()[0].weight - w).abs() < 1e-9);
    }

    /// A landscape built from XML enforces the same constraints as one built
    /// programmatically: scale-out beyond maxInstances always fails.
    #[test]
    fn xml_constraints_equal_programmatic(max in 1u32..4) {
        let xml = format!(
            r#"<landscape>
                 <servers><server name="a" performanceIndex="1" memoryMB="65536"/></servers>
                 <services>
                   <service name="s" minInstances="0" maxInstances="{max}">
                     <allowedActions>scaleOut</allowedActions>
                   </service>
                 </services>
               </landscape>"#
        );
        let mut landscape = LandscapeDescription::from_xml(&xml).unwrap().build().unwrap();
        let service = landscape.service_by_name("s").unwrap();
        let server = landscape.server_by_name("a").unwrap();
        let scale_out = Action::ScaleOut { service, target: server };
        for _ in 0..max {
            let ok = landscape.apply(&scale_out).is_ok();
            prop_assert!(ok);
        }
        let rejected = landscape.apply(&scale_out).is_err();
        prop_assert!(rejected);
    }
}
