//! Seeded integration tests: the declarative XML language round-trips
//! arbitrary landscape descriptions, and controller rule bases embedded in
//! XML compile into working engines.

use autoglobe::controller::RuleBases;
use autoglobe::prelude::*;
use autoglobe_rng::{check, Rng};

fn random_specs(rng: &mut Rng) -> (ServerSpec, ServiceSpec) {
    let idx = rng.random_range(1.0..=16.0);
    let mem = rng.random_int(512..=32_767);
    let min_inst = rng.random_int(0..=2) as u32;
    let actions: Vec<ActionKind> = ActionKind::ALL
        .into_iter()
        .filter(|_| rng.random_bool(0.5))
        .collect();
    let base = rng.random_range(0.0..=0.2);
    let server = ServerSpec::new("host", (idx * 4.0).round() / 4.0).with_memory(mem, mem * 2);
    let service = ServiceSpec::new("svc", ServiceKind::ApplicationServer)
        .with_instances(min_inst, Some(min_inst.max(1) + 3))
        .with_allowed_actions(actions)
        .with_load_model((base * 100.0).round() / 100.0, 0.004);
    (server, service)
}

#[test]
fn description_round_trips_through_xml() {
    // XML serialization is a faithful encoding of specs.
    check::cases(64, |rng| {
        let (server, service) = random_specs(rng);
        let description = LandscapeDescription {
            servers: vec![server],
            services: vec![service],
            allocation: vec![],
            rule_bases: vec![],
        };
        let xml = description.to_xml();
        let reparsed = LandscapeDescription::from_xml(&xml).unwrap();
        assert_eq!(description, reparsed);
    });
}

#[test]
fn xml_rule_bases_compile() {
    // Any rule written in the DSL embeds into a <ruleBase> element, parses
    // back, and compiles into the controller's engines.
    check::cases(64, |rng| {
        let trigger = *rng.choice(&TriggerKind::ALL);
        let use_not = rng.random_bool(0.5);
        let atom = if use_not {
            "NOT cpuLoad IS low"
        } else {
            "cpuLoad IS high"
        };
        let w = (rng.random_range(0.0..=1.0) * 100.0).round() / 100.0;
        let xml = format!(
            r#"<landscape>
                 <ruleBase trigger="{}">
                   IF {atom} AND serviceLoad IS high THEN scaleOut IS applicable WITH {w}
                 </ruleBase>
               </landscape>"#,
            trigger.name(),
        );
        let description = LandscapeDescription::from_xml(&xml).unwrap();
        let mut rule_bases = RuleBases::paper_defaults();
        rule_bases
            .apply_descriptions(&description.rule_bases)
            .unwrap();
        let base = rule_bases.for_trigger(trigger, "any");
        assert_eq!(base.len(), 1, "replacement rule base has exactly one rule");
        assert!((base.rules()[0].weight - w).abs() < 1e-9);
    });
}

#[test]
fn xml_constraints_equal_programmatic() {
    // A landscape built from XML enforces the same constraints as one built
    // programmatically: scale-out beyond maxInstances always fails.
    check::cases(16, |rng| {
        let max = rng.random_int(1..=3) as u32;
        let xml = format!(
            r#"<landscape>
                 <servers><server name="a" performanceIndex="1" memoryMB="65536"/></servers>
                 <services>
                   <service name="s" minInstances="0" maxInstances="{max}">
                     <allowedActions>scaleOut</allowedActions>
                   </service>
                 </services>
               </landscape>"#
        );
        let mut landscape = LandscapeDescription::from_xml(&xml)
            .unwrap()
            .build()
            .unwrap();
        let service = landscape.service_by_name("s").unwrap();
        let server = landscape.server_by_name("a").unwrap();
        let scale_out = Action::ScaleOut {
            service,
            target: server,
        };
        for _ in 0..max {
            assert!(landscape.apply(&scale_out).is_ok());
        }
        assert!(landscape.apply(&scale_out).is_err());
    });
}
