//! Production-day scenarios driven end-to-end through the public
//! beat/tick/poll API: identity composition must reproduce the paper
//! scenarios bit for bit, and every catalog scenario must run as pure data
//! on both the supervised and the sharded control plane, deterministically
//! at any shard count.

use autoglobe::prelude::*;
use autoglobe::simulator::scenario_dsl::{grow, scale, shift};

/// A bit-exact fingerprint of everything a run reports: counts, float
/// metrics as raw bits, and the ordered action stream.
fn digest(m: &Metrics) -> String {
    use std::fmt::Write;
    let mut out = format!(
        "actions={} alerts={} overload={} demand={:016x} failures={} \
         detections={} det_lat={} recoveries={} rec_time={} lost_inst={} \
         lost_sess={:016x} repairs={} proactive={}\n",
        m.actions.len(),
        m.alerts,
        m.total_overload().as_secs(),
        m.total_demand.to_bits(),
        m.failures,
        m.detections,
        m.detection_latency_secs,
        m.recoveries,
        m.recovery_time_secs,
        m.lost_instances,
        m.lost_sessions.to_bits(),
        m.repairs,
        m.proactive_triggers,
    );
    for record in &m.actions {
        writeln!(out, "{record}").unwrap();
    }
    out
}

/// The legacy constructor path, pinned as the reference the identity
/// composition must reproduce.
#[allow(deprecated)]
fn legacy_supervised(base: Scenario, hours: u64) -> Metrics {
    let sim = SimConfig::paper(base, 1.15).with_duration(SimDuration::from_hours(hours));
    let supervisor = SupervisorConfig {
        controller: sim.controller,
        ..SupervisorConfig::default()
    };
    SupervisedRun::new(build_environment(base), &sim, supervisor).run()
}

/// Identity composition — an empty stack AND a stack of no-op combinators
/// (×1.0 scale, 0 h shift, 0 %/day growth) — reproduces each paper
/// scenario bit for bit through the same public harness.
#[test]
fn identity_composition_reproduces_each_paper_scenario_bit_for_bit() {
    let hours = 6;
    for &base in &Scenario::ALL {
        let reference = digest(&legacy_supervised(base, hours));
        let identity = RunBuilder::new(base).hours(hours).supervised().run();
        assert_eq!(
            digest(&identity),
            reference,
            "{base}: empty-stack spec must be the paper run"
        );
        let decorated = ScenarioSpec::new(
            "decorated-identity",
            base,
            vec![scale("FI", 1.0, (0.0, 1.0e6)), shift("BW", 0.0), grow(0.0)],
        );
        let decorated = RunBuilder::new(decorated).hours(hours).supervised().run();
        assert_eq!(
            digest(&decorated),
            reference,
            "{base}: no-op combinators must leave every bit untouched"
        );
    }
}

/// Every catalog scenario runs as pure data on both planes: the supervised
/// harness (chaos-capable when the spec schedules events) and the sharded
/// control plane — seeded, repeatably, and with the shard count invisible
/// to the metrics.
#[test]
fn catalog_scenarios_run_on_both_planes_deterministically() {
    let hours = 36;
    let seed = 1234;
    for spec in ScenarioSpec::catalog() {
        let supervised = |(): ()| {
            let builder = RunBuilder::new(spec.clone()).hours(hours).seed(seed);
            if spec.has_events() {
                builder.chaos_run().run()
            } else {
                builder.supervised().run()
            }
        };
        let first = supervised(());
        let again = supervised(());
        assert_eq!(
            digest(&first),
            digest(&again),
            "{}: same seed must reproduce the run",
            spec.name
        );
        let sharded = |shards: usize| {
            RunBuilder::new(spec.clone())
                .hours(hours)
                .seed(seed)
                .shards(shards)
                .sharded()
                .run()
                .0
        };
        let one = sharded(1);
        let four = sharded(4);
        assert_eq!(
            digest(&one),
            digest(&four),
            "{}: the shard count must be invisible to the scenario",
            spec.name
        );
    }
}

/// The correlated rack failure is ground truth the heartbeat layer has to
/// *detect*: four hosts fail at once, detection latency is paid, the
/// self-healing path restarts what it can, and the rack rejoins later.
#[test]
fn rack_failure_is_detected_and_healed() {
    let spec = ScenarioSpec::lookup("rack-failure").expect("catalog name");
    let m = RunBuilder::new(spec).hours(40).chaos_run().run();
    assert_eq!(m.failures, 4, "the whole rack fails");
    assert!(m.detections >= 1, "heartbeat silence must be confirmed");
    assert!(
        m.detection_latency_secs > 0,
        "detection takes miss+confirm ticks, never zero"
    );
    assert!(m.recoveries >= 1, "failover must restart instances");
    assert!(m.repairs >= 4, "the rack rejoins after the outage");
    assert!(m.lost_sessions > 0.0, "a hard crash severs live sessions");
}

/// Rolling maintenance is a *planned* failover: instances move before the
/// host leaves rotation, so nothing is severed and no detection latency is
/// paid — the drained hosts keep beating and rejoin cleanly.
#[test]
fn rolling_maintenance_drains_without_severing_sessions() {
    let spec = ScenarioSpec::lookup("rolling-maintenance").expect("catalog name");
    let m = RunBuilder::new(spec).hours(40).chaos_run().run();
    assert_eq!(m.failures, 0, "drains are not failures");
    assert!(m.recoveries >= 1, "planned failovers relocate instances");
    assert_eq!(m.recovery_time_secs, 0, "planned failover has zero MTTR");
    assert_eq!(m.lost_sessions, 0.0, "no sessions are severed");
    assert_eq!(m.detection_latency_secs, 0, "nothing to detect");
}

/// The flash crowd overloads the LES lane hard enough that the controller
/// must act, and the surge shows up in the overload account.
#[test]
fn flash_crowd_provokes_the_controller() {
    let spec = ScenarioSpec::lookup("flash-crowd").expect("catalog name");
    let m = RunBuilder::new(spec).hours(38).supervised().run();
    assert!(!m.actions.is_empty(), "a 10x surge must trigger remedies");
    assert!(
        m.total_overload() > SimDuration::ZERO,
        "a 10x step cannot be absorbed silently"
    );
}

/// The ideal-conditions terminal refuses event-bearing scenarios instead of
/// silently dropping their kills and drains.
#[test]
#[should_panic(expected = "schedules infrastructure events")]
fn supervised_terminal_rejects_event_scenarios() {
    let spec = ScenarioSpec::lookup("rack-failure").expect("catalog name");
    let _ = RunBuilder::new(spec).hours(2).supervised();
}
