//! Integration tests over the full simulation environment: the paper's
//! qualitative claims about the three scenarios (Section 5.2) on a reduced
//! horizon.

use autoglobe::prelude::*;

fn run(scenario: Scenario, multiplier: f64, hours: u64) -> Metrics {
    let env = build_environment(scenario);
    let config =
        SimConfig::paper(scenario, multiplier).with_duration(SimDuration::from_hours(hours));
    Simulation::new(env, config).run()
}

/// "In the static scenario, several servers become overloaded ... at
/// regular intervals" at +15 % users, while full mobility averts overload
/// almost completely.
#[test]
fn figure_12_vs_14_static_overloads_fm_does_not() {
    let static_m = run(Scenario::Static, 1.15, 30);
    let fm = run(Scenario::FullMobility, 1.15, 30);

    assert!(
        static_m.worst_overload() > SimDuration::from_hours(1),
        "static at 115% shows hours of overload, got {}",
        static_m.worst_overload()
    );
    assert!(
        fm.worst_recurring_overload() < SimDuration::from_minutes(30),
        "FM at 115% averts recurring overload, got {}",
        fm.worst_recurring_overload()
    );
    // FM reacts with actions; static cannot.
    assert!(static_m.actions.is_empty());
    assert!(!fm.actions.is_empty());
}

/// "The situation already improves in the constrained mobility scenario ...
/// the overload situations are on average shorter than in the static
/// scenario, but ... cannot be prevented completely."
#[test]
fn figure_13_cm_shortens_but_does_not_eliminate_overload() {
    let static_m = run(Scenario::Static, 1.15, 48);
    let cm = run(Scenario::ConstrainedMobility, 1.15, 48);

    assert!(
        cm.total_overload() < static_m.total_overload(),
        "CM {} must beat static {}",
        cm.total_overload(),
        static_m.total_overload()
    );
    // CM's only remedies are scale-in/scale-out (Table 5).
    assert!(!cm.actions.is_empty());
    for record in &cm.actions {
        assert!(matches!(
            record.action.kind(),
            ActionKind::ScaleIn | ActionKind::ScaleOut
        ));
    }
}

/// Full mobility uses the richer action vocabulary of Table 6 (movement
/// actions appear, not just scale-in/out).
#[test]
fn fm_uses_movement_actions() {
    let fm = run(Scenario::FullMobility, 1.25, 30);
    let kinds: std::collections::BTreeSet<_> = fm.actions.iter().map(|r| r.action.kind()).collect();
    assert!(
        kinds.contains(&ActionKind::ScaleUp)
            || kinds.contains(&ActionKind::Move)
            || kinds.contains(&ActionKind::ScaleDown),
        "FM should use movement actions, saw {kinds:?}"
    );
}

/// "After the first day, there are normally more instances of every
/// application server running than in the beginning" — under load, the
/// instance count grows and stays grown.
#[test]
fn instance_pool_grows_under_load() {
    let env = build_environment(Scenario::ConstrainedMobility);
    let initial = env.landscape.num_instances();
    let config = SimConfig::paper(Scenario::ConstrainedMobility, 1.15)
        .with_duration(SimDuration::from_hours(30));
    let mut sim = Simulation::new(env, config);
    for _ in 0..30 * 60 {
        sim.step();
    }
    assert!(
        sim.landscape().num_instances() > initial,
        "instances after a loaded day: {} vs initially {}",
        sim.landscape().num_instances(),
        initial
    );
}

/// The BW database is distributed across servers only in the FM scenario
/// (Table 6), never in CM (Table 5).
#[test]
fn bw_database_distribution_only_in_fm() {
    let cm = run(Scenario::ConstrainedMobility, 1.3, 30);
    for record in &cm.actions {
        if let Action::ScaleOut { service, .. } = record.action {
            // service ids are stable per build order; resolve via a fresh env.
            let env = build_environment(Scenario::ConstrainedMobility);
            let name = &env.landscape.service(service).unwrap().name;
            assert_ne!(name, "DB-BW", "CM must not distribute the BW database");
        }
    }
}

/// Determinism across the whole stack: same seed → identical metrics.
#[test]
fn end_to_end_determinism() {
    let a = run(Scenario::FullMobility, 1.2, 18);
    let b = run(Scenario::FullMobility, 1.2, 18);
    assert_eq!(a.actions.len(), b.actions.len());
    assert_eq!(a.overload_secs, b.overload_secs);
    assert_eq!(a.alerts, b.alerts);
    let last_a = a.average_series.last().unwrap();
    let last_b = b.average_series.last().unwrap();
    assert_eq!(last_a.value, last_b.value);
}

/// Different seeds perturb the jittered load but keep the qualitative
/// outcome: static at 100 % stays clean for any seed.
#[test]
fn baseline_robust_across_seeds() {
    for seed in [1u64, 7, 99] {
        let env = build_environment(Scenario::Static);
        let config = SimConfig::paper(Scenario::Static, 1.0)
            .with_duration(SimDuration::from_hours(24))
            .with_seed(seed);
        let m = Simulation::new(env, config).run();
        assert!(
            m.worst_overload() < SimDuration::from_minutes(30),
            "seed {seed}: static at 100% must stay clean, got {}",
            m.worst_overload()
        );
    }
}
