//! Cross-crate integration tests: XML description → landscape → monitoring
//! → fuzzy controller → executed actions, end to end.

use autoglobe::prelude::*;

/// The complete loop of the paper's Figure 2/6 against a hand-driven load
/// pattern: description parsing, monitoring with watch times, fuzzy action
/// and server selection, constraint checking, protection mode.
#[test]
fn full_loop_from_xml_to_executed_action() {
    let xml = r#"
      <landscape>
        <servers>
          <server name="weak" performanceIndex="1" memoryMB="2048"/>
          <server name="weak2" performanceIndex="1" memoryMB="2048"/>
          <server name="strong" performanceIndex="9" cpus="4"
                  cpuClockMHz="2800" memoryMB="12288"/>
        </servers>
        <services>
          <service name="app" kind="applicationServer" minInstances="1"
                   maxInstances="4" baseLoad="0.05" loadPerUser="0.005">
            <allowedActions>scaleIn scaleOut scaleUp scaleDown move</allowedActions>
          </service>
        </services>
        <allocation>
          <instance service="app" server="weak"/>
          <instance service="app" server="weak2"/>
        </allocation>
      </landscape>"#;

    let description = LandscapeDescription::from_xml(xml).unwrap();
    let landscape = description.build().unwrap();
    let app = landscape.service_by_name("app").unwrap();
    let weak = landscape.server_by_name("weak").unwrap();
    let weak2 = landscape.server_by_name("weak2").unwrap();
    let strong = landscape.server_by_name("strong").unwrap();
    let instance = landscape.instances_of(app)[0];
    let instance2 = landscape.instances_of(app)[1];

    let mut supervisor = Supervisor::new(landscape);

    // Sustained overload on the weak hosts.
    let mut t = SimTime::ZERO;
    let mut executed = Vec::new();
    for _ in 0..15 {
        t += SimDuration::from_minutes(1);
        supervisor.record_server(weak, t, 0.95, 0.6);
        supervisor.record_server(weak2, t, 0.9, 0.6);
        supervisor.record_server(strong, t, 0.05, 0.1);
        supervisor.record_instance(instance, t, 0.93);
        supervisor.record_instance(instance2, t, 0.88);
        supervisor.record_service(app, t, 0.9);
        executed.extend(supervisor.tick(t).expect("monotonic time"));
    }

    assert!(!executed.is_empty(), "controller must act");
    let record = &executed[0];
    assert_eq!(record.trigger, TriggerKind::ServerOverloaded);
    // On a weak host the paper's rule prefers scale-up to the strong host.
    assert_eq!(record.action.kind(), ActionKind::ScaleUp);
    assert_eq!(
        supervisor.landscape().instance(instance).unwrap().server,
        strong
    );
}

/// Protection mode spans the monitoring → controller boundary: after an
/// action, further triggers for the same subjects are suppressed until the
/// protection expires.
#[test]
fn protection_suppresses_subsequent_triggers_end_to_end() {
    let mut landscape = Landscape::new();
    let blade = landscape
        .add_server(ServerSpec::fsc_bx300("blade"))
        .unwrap();
    let other = landscape
        .add_server(ServerSpec::fsc_bx600("other"))
        .unwrap();
    let big = landscape.add_server(ServerSpec::hp_bl40p("big")).unwrap();
    let app = landscape
        .add_service(ServiceSpec::new("app", ServiceKind::ApplicationServer))
        .unwrap();
    let instance = landscape.start_instance(app, blade).unwrap();
    let mut supervisor = Supervisor::new(landscape);

    let mut t = SimTime::ZERO;
    let mut action_times = Vec::new();
    // Two hours of continuous overload reported for whatever host the
    // instance currently runs on.
    for _ in 0..120 {
        t += SimDuration::from_minutes(1);
        let host = supervisor.landscape().instance(instance).unwrap().server;
        for server in [blade, other, big] {
            let cpu = if server == host { 0.95 } else { 0.1 };
            supervisor.record_server(server, t, cpu, 0.3);
        }
        supervisor.record_instance(instance, t, 0.92);
        supervisor.record_service(app, t, 0.92);
        for record in supervisor.tick(t).expect("monotonic time") {
            action_times.push(record.time);
        }
    }

    assert!(
        action_times.len() >= 2,
        "expected repeated remediation over two hours, got {action_times:?}"
    );
    for pair in action_times.windows(2) {
        let gap = pair[1].since(pair[0]);
        assert!(
            gap >= SimDuration::from_minutes(30),
            "actions only after protection expiry, got gap {gap}"
        );
    }
}

/// The load archive accumulates across the supervisor and feeds queries the
/// controller-initialization path uses.
#[test]
fn archive_supports_watch_time_averages() {
    let mut landscape = Landscape::new();
    let blade = landscape
        .add_server(ServerSpec::fsc_bx300("blade"))
        .unwrap();
    let mut supervisor = Supervisor::new(landscape);

    for minute in 0..120u64 {
        let cpu = if minute < 60 { 0.2 } else { 0.8 };
        supervisor.record_server(blade, SimTime::from_minutes(minute), cpu, 0.1);
    }
    let first_hour = supervisor
        .archive()
        .average_cpu(
            Subject::Server(blade),
            SimTime::ZERO,
            SimTime::from_hours(1),
        )
        .unwrap();
    let second_hour = supervisor
        .archive()
        .average_cpu(
            Subject::Server(blade),
            SimTime::from_hours(1),
            SimTime::from_hours(2),
        )
        .unwrap();
    assert!((first_hour - 0.2).abs() < 1e-9);
    assert!((second_hour - 0.8).abs() < 1e-9);

    // Daily profile reflects the step.
    let profile = supervisor
        .archive()
        .daily_profile(Subject::Server(blade), SimDuration::from_hours(1));
    assert!((profile[0] - 0.2).abs() < 1e-9);
    assert!((profile[1] - 0.8).abs() < 1e-9);
}

/// Constraints declared in XML are honored by the executing controller: a
/// service limited to scale-in/out is never moved.
#[test]
fn declarative_constraints_bind_the_controller() {
    let xml = r#"
      <landscape>
        <servers>
          <server name="a" performanceIndex="1"/>
          <server name="b" performanceIndex="1"/>
          <server name="c" performanceIndex="9" memoryMB="12288"/>
        </servers>
        <services>
          <service name="cm-app" kind="applicationServer" minInstances="1"
                   maxInstances="4">
            <allowedActions>scaleIn scaleOut</allowedActions>
          </service>
        </services>
        <allocation>
          <instance service="cm-app" server="a"/>
        </allocation>
      </landscape>"#;
    let landscape = LandscapeDescription::from_xml(xml)
        .unwrap()
        .build()
        .unwrap();
    let app = landscape.service_by_name("cm-app").unwrap();
    let a = landscape.server_by_name("a").unwrap();
    let b = landscape.server_by_name("b").unwrap();
    let c = landscape.server_by_name("c").unwrap();
    let instance = landscape.instances_of(app)[0];
    let mut supervisor = Supervisor::new(landscape);

    let mut t = SimTime::ZERO;
    let mut executed = Vec::new();
    for _ in 0..60 {
        t += SimDuration::from_minutes(1);
        supervisor.record_server(a, t, 0.95, 0.5);
        supervisor.record_server(b, t, 0.1, 0.1);
        supervisor.record_server(c, t, 0.1, 0.1);
        supervisor.record_instance(instance, t, 0.92);
        supervisor.record_service(app, t, 0.92);
        executed.extend(supervisor.tick(t).expect("monotonic time"));
    }
    assert!(!executed.is_empty());
    for record in &executed {
        assert!(
            matches!(
                record.action.kind(),
                ActionKind::ScaleIn | ActionKind::ScaleOut
            ),
            "only declared actions may execute, saw {}",
            record.action
        );
    }
    // The original instance never moved.
    assert_eq!(supervisor.landscape().instance(instance).unwrap().server, a);
}

/// Alerting: when constraints forbid every remedy, the administrator is
/// alerted (Section 4.3) and the landscape stays untouched.
#[test]
fn unresolvable_overload_raises_alert() {
    let mut landscape = Landscape::new();
    let blade = landscape
        .add_server(ServerSpec::fsc_bx300("blade"))
        .unwrap();
    let frozen = landscape
        .add_service(ServiceSpec::new("frozen", ServiceKind::Database).immobile())
        .unwrap();
    let instance = landscape.start_instance(frozen, blade).unwrap();
    let mut supervisor = Supervisor::new(landscape);

    let mut t = SimTime::ZERO;
    for _ in 0..15 {
        t += SimDuration::from_minutes(1);
        supervisor.record_server(blade, t, 0.95, 0.5);
        supervisor.record_instance(instance, t, 0.95);
        supervisor.record_service(frozen, t, 0.95);
        assert!(supervisor.tick(t).expect("monotonic time").is_empty());
    }
    let events = supervisor.drain_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControllerEvent::AdministratorAlert { .. })),
        "expected an administrator alert, got {events:?}"
    );
    assert_eq!(supervisor.landscape().num_instances(), 1);
}

/// Self-healing end to end: a crashed instance restarts (Section 2:
/// "Failure situations like a program crash are remedied for example with a
/// restart"), and a failed host is evacuated and excluded from placement
/// until repaired.
#[test]
fn failures_heal_through_the_supervisor() {
    let mut landscape = Landscape::new();
    let blade1 = landscape
        .add_server(ServerSpec::fsc_bx300("blade1"))
        .unwrap();
    let blade2 = landscape
        .add_server(ServerSpec::fsc_bx600("blade2"))
        .unwrap();
    let app = landscape
        .add_service(ServiceSpec::new("app", ServiceKind::ApplicationServer))
        .unwrap();
    let instance = landscape.start_instance(app, blade1).unwrap();
    let mut supervisor = Supervisor::new(landscape);

    // Crash: restarts on the same (healthy) host with a new id and IP.
    let outcome = supervisor.report_instance_crash(instance, SimTime::from_minutes(7));
    assert_eq!(outcome.recovered.len(), 1);
    let (_, restarted, host) = outcome.recovered[0];
    assert_eq!(host, blade1);

    // Host failure: the instance evacuates to blade2; blade1 is excluded.
    let outcome = supervisor.report_server_failure(blade1, SimTime::from_minutes(9));
    assert_eq!(outcome.recovered.len(), 1);
    let (_, evacuated, host) = outcome.recovered[0];
    assert_eq!(host, blade2);
    assert!(!supervisor.landscape().is_available(blade1));
    assert!(supervisor.landscape().instance(restarted).is_err());
    assert!(supervisor.landscape().instance(evacuated).is_ok());

    // Repair brings the host back into the candidate pool — and is itself
    // a logged event, not a silent availability flip.
    let repaired = supervisor
        .report_server_repaired(blade1, SimTime::from_minutes(30))
        .unwrap();
    assert!(matches!(repaired, Some(ControllerEvent::Repaired { server, .. }) if server == blade1));
    assert!(supervisor.landscape().is_available(blade1));
    assert!(supervisor.landscape().can_host(app, blade1));

    // The message view narrates the whole story.
    let events = supervisor.drain_events();
    let recoveries = events
        .iter()
        .filter(|e| matches!(e, ControllerEvent::Recovered { .. }))
        .count();
    assert_eq!(recoveries, 2);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ControllerEvent::Repaired { .. })),
        "the repair must appear in the event log"
    );
}
