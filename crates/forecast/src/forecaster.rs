//! Pattern-matching load prediction from the load archive.
//!
//! The predictor blends two signals:
//!
//! 1. the **historical daily profile** — the archive's average load per
//!    time-of-day slot across all recorded days (the "pattern" of the
//!    paper's pattern-matching approach), and
//! 2. an **exponentially smoothed level correction** — how much hotter or
//!    colder *today* has been running than the profile predicted, so a
//!    once-a-quarter reporting day shifts the whole forecast up.

use crate::periodicity::detect_period;
use autoglobe_monitor::{LoadArchive, SimDuration, SimTime, Subject};

/// Configuration of the [`Forecaster`].
#[derive(Debug, Clone, Copy)]
pub struct ForecasterConfig {
    /// Width of a time-of-day slot in the daily profile.
    pub slot: SimDuration,
    /// Smoothing factor of the level correction in `(0, 1]`; higher adapts
    /// faster to today's deviation.
    pub alpha: f64,
    /// How far back the deviation is sampled when forecasting.
    pub correction_window: SimDuration,
}

impl Default for ForecasterConfig {
    fn default() -> Self {
        ForecasterConfig {
            slot: SimDuration::from_minutes(30),
            alpha: 0.4,
            correction_window: SimDuration::from_hours(2),
        }
    }
}

/// One forecast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Forecast {
    /// The instant the forecast is for.
    pub time: SimTime,
    /// Predicted CPU load in `[0, 1]`.
    pub cpu: f64,
    /// Confidence in `[0, 1]`: how periodic the history looked (0 when the
    /// forecast is a pure persistence guess).
    pub confidence: f64,
}

/// Pattern-matching forecaster over one subject's archived load.
#[derive(Debug, Clone)]
pub struct Forecaster {
    config: ForecasterConfig,
}

impl Forecaster {
    /// A forecaster with the default configuration.
    pub fn new() -> Self {
        Forecaster {
            config: ForecasterConfig::default(),
        }
    }

    /// A forecaster with an explicit configuration.
    pub fn with_config(config: ForecasterConfig) -> Self {
        Forecaster { config }
    }

    /// Predict `subject`'s CPU load at `target` (must be ≥ `now`), using
    /// everything the archive recorded up to `now`.
    ///
    /// With no history at all the forecast falls back to the latest known
    /// level (persistence) with zero confidence.
    pub fn predict(
        &self,
        archive: &LoadArchive,
        subject: Subject,
        now: SimTime,
        target: SimTime,
    ) -> Forecast {
        let slot_secs = self.config.slot.as_secs().max(1);
        let profile = archive.daily_profile(subject, self.config.slot);
        let slots = profile.len().max(1);
        let slot_of = |t: SimTime| ((t.second_of_day() / slot_secs) as usize).min(slots - 1);

        // Base prediction: the profile at the target's time of day.
        let base = profile.get(slot_of(target)).copied().unwrap_or(0.0);

        // Level correction: how far today deviates from the profile over
        // the recent correction window, exponentially smoothed.
        let window_start = now - self.config.correction_window;
        let mut correction = 0.0;
        let mut weighted = false;
        let step = self.config.slot;
        let mut t = window_start;
        while t <= now {
            let observed = archive.average_cpu(subject, t, t + step);
            if let Some(observed) = observed {
                let expected = profile.get(slot_of(t)).copied().unwrap_or(0.0);
                correction = if weighted {
                    self.config.alpha * (observed - expected)
                        + (1.0 - self.config.alpha) * correction
                } else {
                    observed - expected
                };
                weighted = true;
            }
            t += step;
        }

        // Confidence from the periodicity of the archived series.
        let confidence = self.periodicity_confidence(archive, subject, now);

        if !weighted && base == 0.0 {
            // Nothing known at all.
            return Forecast {
                time: target,
                cpu: 0.0,
                confidence: 0.0,
            };
        }

        Forecast {
            time: target,
            cpu: (base + correction).clamp(0.0, 1.0),
            confidence,
        }
    }

    /// Forecast an entire horizon at slot resolution.
    pub fn predict_series(
        &self,
        archive: &LoadArchive,
        subject: Subject,
        now: SimTime,
        horizon: SimDuration,
    ) -> Vec<Forecast> {
        let step = self.config.slot.as_secs().max(1);
        let steps = horizon.as_secs() / step;
        (1..=steps)
            .map(|i| {
                self.predict(
                    archive,
                    subject,
                    now,
                    now + SimDuration::from_secs(i * step),
                )
            })
            .collect()
    }

    fn periodicity_confidence(&self, archive: &LoadArchive, subject: Subject, now: SimTime) -> f64 {
        // Build an hourly series over the archived history (up to 7 days).
        let start = now - SimDuration::from_hours(24 * 7);
        let mut series = Vec::new();
        let mut t = start;
        while t < now {
            if let Some(v) = archive.average_cpu(subject, t, t + SimDuration::from_hours(1)) {
                series.push(v);
            }
            t += SimDuration::from_hours(1);
        }
        if series.len() < 48 {
            return 0.0;
        }
        detect_period(&series, 20, 28, 0.3)
            .map(|(_, r)| r.clamp(0.0, 1.0))
            .unwrap_or(0.0)
    }
}

impl Default for Forecaster {
    fn default() -> Self {
        Forecaster::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic daily load shape: hot 9:00–17:00, cold at night.
    fn office_load(hour: f64) -> f64 {
        if (9.0..17.0).contains(&hour) {
            0.75
        } else {
            0.10
        }
    }

    fn archive_with_days(days: u64) -> LoadArchive {
        let mut archive = LoadArchive::new(SimDuration::from_minutes(1));
        let subject = Subject::Server(autoglobe_landscape::ServerId::new(0));
        for minute in 0..days * 24 * 60 {
            let t = SimTime::from_minutes(minute);
            archive.record(subject, t, office_load(t.hour_of_day()), 0.2);
        }
        archive
    }

    fn subject() -> Subject {
        Subject::Server(autoglobe_landscape::ServerId::new(0))
    }

    #[test]
    fn forecasts_the_daily_pattern() {
        let archive = archive_with_days(4);
        let now = SimTime::from_hours(4 * 24); // midnight after day 3
        let f = Forecaster::new();
        // Predict 11:00 (hot) and 03:00 (cold) of the next day.
        let hot = f.predict(&archive, subject(), now, now + SimDuration::from_hours(11));
        let cold = f.predict(&archive, subject(), now, now + SimDuration::from_hours(3));
        assert!((hot.cpu - 0.75).abs() < 0.1, "hot {}", hot.cpu);
        assert!(cold.cpu < 0.25, "cold {}", cold.cpu);
        assert!(
            hot.confidence > 0.5,
            "daily pattern detected: {}",
            hot.confidence
        );
    }

    #[test]
    fn level_correction_follows_a_hotter_day() {
        let mut archive = archive_with_days(4);
        let subject = subject();
        // Today (day 4) runs 0.15 hotter than usual through 10:00.
        for minute in 0..10 * 60 {
            let t = SimTime::from_hours(4 * 24) + SimDuration::from_minutes(minute);
            archive.record(
                subject,
                t,
                (office_load(t.hour_of_day()) + 0.15).min(1.0),
                0.2,
            );
        }
        let now = SimTime::from_hours(4 * 24 + 10);
        let f = Forecaster::new();
        let prediction = f.predict(&archive, subject, now, now + SimDuration::from_hours(1));
        assert!(
            prediction.cpu > 0.82,
            "forecast lifts with today's deviation: {}",
            prediction.cpu
        );
    }

    #[test]
    fn empty_archive_gives_zero_confidence() {
        let archive = LoadArchive::new(SimDuration::from_minutes(1));
        let f = Forecaster::new();
        let p = f.predict(
            &archive,
            subject(),
            SimTime::from_hours(1),
            SimTime::from_hours(2),
        );
        assert_eq!(p.cpu, 0.0);
        assert_eq!(p.confidence, 0.0);
    }

    #[test]
    fn series_covers_the_horizon() {
        let archive = archive_with_days(3);
        let f = Forecaster::new();
        let now = SimTime::from_hours(3 * 24);
        let series = f.predict_series(&archive, subject(), now, SimDuration::from_hours(6));
        assert_eq!(series.len(), 12); // 30-minute slots
        assert!(series.windows(2).all(|w| w[0].time < w[1].time));
        for p in &series {
            assert!((0.0..=1.0).contains(&p.cpu));
        }
    }

    #[test]
    fn forecast_stays_in_unit_interval_under_extreme_correction() {
        let mut archive = archive_with_days(2);
        let subject = subject();
        for minute in 0..120 {
            let t = SimTime::from_hours(48) + SimDuration::from_minutes(minute);
            archive.record(subject, t, 1.0, 0.9);
        }
        let now = SimTime::from_hours(50);
        let f = Forecaster::new();
        let p = f.predict(&archive, subject, now, now + SimDuration::from_minutes(30));
        assert!(p.cpu <= 1.0);
    }
}
