//! Proactive triggering: forecasts become early trigger events.
//!
//! "Using these techniques, adaptive infrastructures can react proactively
//! on imminent overload situations" (the paper's reference [8]). The
//! [`ProactiveTrigger`] inspects forecasts (optionally lifted by explicit
//! reservations) and emits a synthetic [`TriggerEvent`] *ahead* of the
//! predicted threshold crossing, so the controller can rearrange while the
//! hardware still has headroom.

use crate::forecaster::Forecaster;
use crate::hints::HintBook;
use autoglobe_monitor::{LoadArchive, SimDuration, SimTime, Subject, TriggerEvent, TriggerKind};

/// Configuration of proactive triggering.
#[derive(Debug, Clone, Copy)]
pub struct ProactiveConfig {
    /// How far ahead forecasts look.
    pub horizon: SimDuration,
    /// Predicted load at or above which a proactive overload trigger fires.
    pub overload_threshold: f64,
    /// Minimum forecast confidence to act on a prediction.
    pub min_confidence: f64,
}

impl Default for ProactiveConfig {
    fn default() -> Self {
        ProactiveConfig {
            horizon: SimDuration::from_minutes(60),
            overload_threshold: 0.70,
            min_confidence: 0.3,
        }
    }
}

/// A proactive trigger together with its forecast provenance: when the
/// threshold crossing is predicted to happen. The lead time —
/// `predicted_at - event.time` — is how much head start the controller got
/// over a purely reactive detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProactiveFiring {
    /// The synthetic trigger, stamped at decision time.
    pub event: TriggerEvent,
    /// When the forecast predicts the threshold crossing.
    pub predicted_at: SimTime,
}

impl ProactiveFiring {
    /// How far ahead of the predicted crossing the trigger fired.
    pub fn lead(&self) -> SimDuration {
        self.predicted_at.since(self.event.time)
    }
}

/// Turns forecasts into early triggers.
#[derive(Debug, Clone, Default)]
pub struct ProactiveTrigger {
    config: ProactiveConfig,
    forecaster: Forecaster,
}

impl ProactiveTrigger {
    /// With default config and forecaster.
    pub fn new() -> Self {
        ProactiveTrigger::default()
    }

    /// With explicit configuration.
    pub fn with_config(config: ProactiveConfig, forecaster: Forecaster) -> Self {
        ProactiveTrigger { config, forecaster }
    }

    /// Check one subject: if its forecast (plus active reservations scaled
    /// by `capacity`) crosses the threshold within the horizon, return a
    /// proactive trigger stamped `now` along with the predicted crossing
    /// time.
    ///
    /// Only servers and services carry forecastable aggregate load;
    /// instance subjects are rejected (`None`) rather than mislabelled as
    /// service triggers — an instance forecast belongs to its service's
    /// archive, which the caller should query instead.
    ///
    /// `capacity` is the performance index of the subject's host(s), used
    /// to convert reserved demand into load.
    pub fn check(
        &self,
        archive: &LoadArchive,
        hints: &HintBook,
        subject: Subject,
        capacity: f64,
        now: SimTime,
    ) -> Option<ProactiveFiring> {
        let kind = match subject {
            Subject::Server(_) => TriggerKind::ServerOverloaded,
            Subject::Service(_) => TriggerKind::ServiceOverloaded,
            Subject::Instance(_) => return None,
        };
        let forecasts = self
            .forecaster
            .predict_series(archive, subject, now, self.config.horizon);
        for forecast in forecasts {
            if forecast.confidence < self.config.min_confidence {
                continue;
            }
            let reserved_load = subject
                .as_service()
                .map(|svc| hints.reserved_demand(svc, forecast.time) / capacity.max(1e-9))
                .unwrap_or(0.0);
            let predicted = (forecast.cpu + reserved_load).min(1.0);
            if predicted >= self.config.overload_threshold {
                return Some(ProactiveFiring {
                    event: TriggerEvent {
                        kind,
                        subject,
                        time: now,
                        average_cpu: predicted,
                        average_mem: 0.0,
                    },
                    predicted_at: forecast.time,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hints::Hint;
    use autoglobe_landscape::{ServerId, ServiceId};

    /// Archive with a hard daily step: load jumps to 0.9 at 09:00.
    fn archive() -> LoadArchive {
        let mut a = LoadArchive::new(SimDuration::from_minutes(1));
        for minute in 0..4 * 24 * 60 {
            let t = SimTime::from_minutes(minute);
            let load = if (9.0..17.0).contains(&t.hour_of_day()) {
                0.9
            } else {
                0.2
            };
            a.record(Subject::Server(ServerId::new(0)), t, load, 0.2);
        }
        a
    }

    #[test]
    fn predicts_the_morning_ramp_before_it_happens() {
        let archive = archive();
        let trigger = ProactiveTrigger::new();
        let hints = HintBook::new();
        // 08:30 on day 4: the 09:00 surge is within the one-hour horizon.
        let now = SimTime::from_hours(4 * 24 + 8) + SimDuration::from_minutes(30);
        let event = trigger.check(
            &archive,
            &hints,
            Subject::Server(ServerId::new(0)),
            1.0,
            now,
        );
        let firing = event.expect("proactive trigger fires before the surge");
        assert_eq!(firing.event.kind, TriggerKind::ServerOverloaded);
        assert_eq!(
            firing.event.time, now,
            "stamped at decision time, not surge time"
        );
        assert!(firing.event.average_cpu >= 0.7);
        assert!(
            firing.predicted_at > now,
            "predicted crossing lies in the future"
        );
        assert!(
            firing.lead() <= SimDuration::from_minutes(60),
            "lead bounded by the horizon"
        );
    }

    #[test]
    fn quiet_forecast_fires_nothing() {
        let archive = archive();
        let trigger = ProactiveTrigger::new();
        let hints = HintBook::new();
        // 18:30: nothing hot within an hour.
        let now = SimTime::from_hours(4 * 24 + 18) + SimDuration::from_minutes(30);
        assert!(trigger
            .check(
                &archive,
                &hints,
                Subject::Server(ServerId::new(0)),
                1.0,
                now
            )
            .is_none());
    }

    #[test]
    fn reservations_lift_service_forecasts_over_the_threshold() {
        // A service idling at 0.4 load with a 0.5-unit reservation starting
        // within the horizon crosses 0.7 on a capacity-1 host.
        let mut archive = LoadArchive::new(SimDuration::from_minutes(1));
        let service = Subject::Service(ServiceId::new(3));
        for minute in 0..4 * 24 * 60 {
            let t = SimTime::from_minutes(minute);
            // Mild daily wave so confidence is non-zero.
            let load = 0.4 + 0.1 * (t.hour_of_day() / 24.0 * std::f64::consts::TAU).sin();
            archive.record(service, t, load, 0.1);
        }
        let mut hints = HintBook::new();
        hints.register(Hint {
            service: ServiceId::new(3),
            description: "month-end close".into(),
            start: SimTime::from_hours(4 * 24 + 10),
            duration: SimDuration::from_hours(2),
            cpu_demand: 0.5,
            daily: false,
        });
        let trigger = ProactiveTrigger::new();
        let now = SimTime::from_hours(4 * 24 + 9) + SimDuration::from_minutes(30);
        let with_hint = trigger.check(&archive, &hints, service, 1.0, now);
        assert!(
            with_hint.is_some(),
            "reservation pushes forecast over threshold"
        );
        let without = trigger.check(&archive, &HintBook::new(), service, 1.0, now);
        assert!(without.is_none(), "no trigger without the reservation");
    }

    #[test]
    fn instance_subjects_are_rejected_not_mislabelled() {
        // An instance archive hot enough to fire must NOT come back as a
        // (malformed) service trigger — instances carry no forecastable
        // aggregate and are rejected outright.
        use autoglobe_landscape::InstanceId;
        let mut archive = LoadArchive::new(SimDuration::from_minutes(1));
        let subject = Subject::Instance(InstanceId::new(7));
        for minute in 0..4 * 24 * 60 {
            let t = SimTime::from_minutes(minute);
            let load = if (9.0..17.0).contains(&t.hour_of_day()) {
                0.9
            } else {
                0.2
            };
            archive.record(subject, t, load, 0.2);
        }
        let trigger = ProactiveTrigger::new();
        let now = SimTime::from_hours(4 * 24 + 8) + SimDuration::from_minutes(30);
        assert!(
            trigger
                .check(&archive, &HintBook::new(), subject, 1.0, now)
                .is_none(),
            "instance subject must not produce a proactive trigger"
        );
    }

    #[test]
    fn low_confidence_predictions_are_ignored() {
        // Aperiodic archive → confidence 0 → never fires even if hot.
        let mut archive = LoadArchive::new(SimDuration::from_minutes(1));
        let subject = Subject::Server(ServerId::new(0));
        for minute in 0..600 {
            archive.record(subject, SimTime::from_minutes(minute), 0.95, 0.2);
        }
        let trigger = ProactiveTrigger::new();
        assert!(trigger
            .check(
                &archive,
                &HintBook::new(),
                subject,
                1.0,
                SimTime::from_minutes(600)
            )
            .is_none());
    }
}
