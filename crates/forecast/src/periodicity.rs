//! Period detection for load series.
//!
//! SAP workloads are strongly periodic (Figure 10 of the ICDE paper: daily
//! rhythms with morning/midday/evening peaks and nightly batch windows).
//! The forecaster needs to know the period before it can match patterns;
//! we detect it with a normalized autocorrelation over the archived series.

/// Normalized autocorrelation of `series` at integer `lag`
/// (`1 ≤ lag < series.len()`), in `[-1, 1]`.
///
/// Returns `None` if the series is shorter than `lag + 2` samples or has
/// zero variance (a constant series correlates with everything — callers
/// should treat it as aperiodic).
pub fn autocorrelation(series: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 || series.len() < lag + 2 {
        return None;
    }
    let n = series.len() - lag;
    let mean: f64 = series.iter().sum::<f64>() / series.len() as f64;
    let variance: f64 =
        series.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / series.len() as f64;
    if variance < 1e-12 {
        return None;
    }
    let covariance: f64 = (0..n)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum::<f64>()
        / n as f64;
    Some(covariance / variance)
}

/// Find the lag in `[min_lag, max_lag]` with the highest autocorrelation.
/// Returns `(lag, correlation)`; `None` if the series is too short, has no
/// variance, or no candidate correlates above `threshold`.
pub fn detect_period(
    series: &[f64],
    min_lag: usize,
    max_lag: usize,
    threshold: f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for lag in min_lag..=max_lag {
        if let Some(r) = autocorrelation(series, lag) {
            if r >= threshold && best.is_none_or(|(_, br)| r > br) {
                best = Some((lag, r));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(period: usize, cycles: usize) -> Vec<f64> {
        (0..period * cycles)
            .map(|i| (i as f64 / period as f64 * std::f64::consts::TAU).sin() * 0.3 + 0.5)
            .collect()
    }

    #[test]
    fn autocorrelation_peaks_at_the_true_period() {
        let series = sine_series(24, 5);
        let at_period = autocorrelation(&series, 24).unwrap();
        let off_period = autocorrelation(&series, 11).unwrap();
        assert!(at_period > 0.95, "full-period lag correlates: {at_period}");
        assert!(at_period > off_period);
        // Half period anti-correlates for a sine.
        let anti = autocorrelation(&series, 12).unwrap();
        assert!(anti < -0.9, "half-period lag anti-correlates: {anti}");
    }

    #[test]
    fn detect_period_finds_the_daily_rhythm() {
        let series = sine_series(24, 6);
        let (lag, r) = detect_period(&series, 12, 36, 0.5).unwrap();
        assert_eq!(lag, 24);
        assert!(r > 0.9);
    }

    #[test]
    fn constant_series_is_aperiodic() {
        let series = vec![0.5; 100];
        assert!(autocorrelation(&series, 10).is_none());
        assert!(detect_period(&series, 2, 30, 0.1).is_none());
    }

    #[test]
    fn short_series_yield_none() {
        assert!(autocorrelation(&[0.1, 0.2], 1).is_none());
        assert!(autocorrelation(&[0.1, 0.2, 0.3], 5).is_none());
        assert!(autocorrelation(&[0.1; 10], 0).is_none());
    }

    #[test]
    fn noisy_periodic_series_still_detected() {
        // Deterministic "noise" via a second incommensurate sine.
        let series: Vec<f64> = (0..24 * 6)
            .map(|i| {
                let t = i as f64;
                0.5 + 0.3 * (t / 24.0 * std::f64::consts::TAU).sin() + 0.05 * (t * 0.7373).sin()
            })
            .collect();
        let (lag, _) = detect_period(&series, 12, 36, 0.5).unwrap();
        assert_eq!(lag, 24);
    }

    #[test]
    fn threshold_filters_weak_periodicity() {
        // Deterministic pseudo-random (LCG) series: aperiodic noise.
        let mut state = 0x2545F4914F6CDD1Du64;
        let series: Vec<f64> = (0..200)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 40) as f64 / (1u64 << 24) as f64
            })
            .collect();
        assert!(detect_period(&series, 2, 40, 0.9).is_none());
    }
}
