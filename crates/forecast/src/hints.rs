//! Administrator hints and explicit reservations.
//!
//! The paper's future work (Section 7): "we will enhance the controller in
//! such a way that it can manage explicit reservations, i.e., that an
//! administrator can register mission-critical tasks along with their
//! resource requirements." A [`Hint`] reserves CPU demand for a service in
//! a (possibly daily recurring) time window; [`HintBook`] merges active
//! reservations into forecasts.

use autoglobe_landscape::ServiceId;
use autoglobe_monitor::{SimDuration, SimTime};

/// One registered reservation.
#[derive(Debug, Clone, PartialEq)]
pub struct Hint {
    /// The mission-critical service.
    pub service: ServiceId,
    /// Human-readable reason, shown on the console.
    pub description: String,
    /// Start of the reservation window.
    pub start: SimTime,
    /// Length of the window.
    pub duration: SimDuration,
    /// Reserved CPU demand in performance-index-1 units.
    pub cpu_demand: f64,
    /// If true, the window recurs every simulated day.
    pub daily: bool,
}

impl Hint {
    /// Is the reservation active at `time`?
    pub fn active_at(&self, time: SimTime) -> bool {
        if self.daily {
            if time < self.start {
                return false;
            }
            let day_offset = self.start.second_of_day();
            let len = self.duration.as_secs();
            let t = time.second_of_day();
            if day_offset + len <= 86_400 {
                t >= day_offset && t < day_offset + len
            } else {
                // Window wraps midnight.
                t >= day_offset || t < (day_offset + len) % 86_400
            }
        } else {
            time >= self.start && time < self.start + self.duration
        }
    }
}

/// The registry of reservations.
#[derive(Debug, Clone, Default)]
pub struct HintBook {
    hints: Vec<Hint>,
}

impl HintBook {
    /// An empty book.
    pub fn new() -> Self {
        HintBook::default()
    }

    /// Register a hint.
    pub fn register(&mut self, hint: Hint) {
        self.hints.push(hint);
    }

    /// Remove all hints for a service (e.g. the task was cancelled).
    pub fn remove_service(&mut self, service: ServiceId) {
        self.hints.retain(|h| h.service != service);
    }

    /// All registered hints.
    pub fn hints(&self) -> &[Hint] {
        &self.hints
    }

    /// Total reserved CPU demand for `service` at `time`.
    pub fn reserved_demand(&self, service: ServiceId, time: SimTime) -> f64 {
        self.hints
            .iter()
            .filter(|h| h.service == service && h.active_at(time))
            .map(|h| h.cpu_demand)
            .sum()
    }

    /// Total reserved demand across all services at `time`.
    pub fn total_reserved(&self, time: SimTime) -> f64 {
        self.hints
            .iter()
            .filter(|h| h.active_at(time))
            .map(|h| h.cpu_demand)
            .sum()
    }

    /// Drop one-shot hints whose window has fully passed.
    pub fn expire(&mut self, now: SimTime) {
        self.hints.retain(|h| h.daily || now < h.start + h.duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> ServiceId {
        ServiceId::new(0)
    }

    fn batch_hint(daily: bool) -> Hint {
        Hint {
            service: service(),
            description: "nightly BW batch".into(),
            start: SimTime::from_hours(22),
            duration: SimDuration::from_hours(8),
            cpu_demand: 2.0,
            daily,
        }
    }

    #[test]
    fn one_shot_window() {
        let h = batch_hint(false);
        assert!(!h.active_at(SimTime::from_hours(21)));
        assert!(h.active_at(SimTime::from_hours(22)));
        assert!(h.active_at(SimTime::from_hours(29)));
        assert!(!h.active_at(SimTime::from_hours(30)));
        // Does not recur.
        assert!(!h.active_at(SimTime::from_hours(46)));
    }

    #[test]
    fn daily_window_wraps_midnight() {
        let h = batch_hint(true);
        // Day 2, 23:00 and 03:00 are inside; 12:00 is not.
        assert!(h.active_at(SimTime::from_hours(48 + 23)));
        assert!(h.active_at(SimTime::from_hours(48 + 3)));
        assert!(!h.active_at(SimTime::from_hours(48 + 12)));
        // Before the first occurrence: inactive.
        assert!(!h.active_at(SimTime::from_hours(1)));
    }

    #[test]
    fn book_sums_active_reservations() {
        let mut book = HintBook::new();
        book.register(batch_hint(true));
        book.register(Hint {
            service: service(),
            description: "quarter-end close".into(),
            start: SimTime::from_hours(23),
            duration: SimDuration::from_hours(2),
            cpu_demand: 1.5,
            daily: false,
        });
        let at_night = SimTime::from_hours(23) + SimDuration::from_minutes(30);
        assert!((book.reserved_demand(service(), at_night) - 3.5).abs() < 1e-12);
        assert!((book.total_reserved(at_night) - 3.5).abs() < 1e-12);
        // Another service has nothing reserved.
        assert_eq!(book.reserved_demand(ServiceId::new(9), at_night), 0.0);
    }

    #[test]
    fn expire_drops_passed_one_shots_keeps_daily() {
        let mut book = HintBook::new();
        book.register(batch_hint(false));
        book.register(batch_hint(true));
        book.expire(SimTime::from_hours(40));
        assert_eq!(book.hints().len(), 1);
        assert!(book.hints()[0].daily);
    }

    #[test]
    fn remove_service_clears_its_hints() {
        let mut book = HintBook::new();
        book.register(batch_hint(true));
        book.remove_service(service());
        assert!(book.hints().is_empty());
    }
}
