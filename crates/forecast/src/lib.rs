//! # autoglobe-forecast — short-term load forecasting
//!
//! The paper's future work (Section 7): "we work on predicting the future
//! load of services based on historic data stored in the load archive using
//! pattern matching and data mining techniques. ... The reservations and
//! load prediction can be used to improve the action and host selection
//! process of the controller." The companion paper (Gmach et al.,
//! CAiSE'05 workshops) describes the feed-forward side: exploiting
//! administrator hints and short-term load forecasting for services with
//! periodic behaviour, so the infrastructure reacts *proactively* on
//! imminent overload situations.
//!
//! This crate implements that extension on top of the
//! [`autoglobe_monitor::LoadArchive`]:
//!
//! * [`periodicity::autocorrelation`] / [`periodicity::detect_period`] —
//!   find the dominant period of a load series (daily rhythms in the SAP
//!   workloads).
//! * [`Forecaster`] — pattern-matching prediction: the historical daily
//!   profile (average load by time-of-day) blended with an
//!   exponentially-smoothed correction for the current day's deviation.
//! * [`hints::HintBook`] — explicit administrator reservations ("mission
//!   critical batch run at 22:00 needs 2 CPU units on the BW database"),
//!   merged into forecasts.
//! * [`ProactiveTrigger`] — turns forecasts into early [`TriggerEvent`]s a
//!   controller can handle *before* the overload materializes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forecaster;
pub mod hints;
pub mod periodicity;
pub mod proactive;

pub use forecaster::{Forecast, Forecaster, ForecasterConfig};
pub use hints::{Hint, HintBook};
pub use periodicity::{autocorrelation, detect_period};
pub use proactive::{ProactiveConfig, ProactiveFiring, ProactiveTrigger};
