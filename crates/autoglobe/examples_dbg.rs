use autoglobe::prelude::*;
fn main() {
    let mut landscape = Landscape::new();
    let blade = landscape.add_server(ServerSpec::fsc_bx300("Blade1")).unwrap();
    let big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
    let fi = landscape
        .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
        .unwrap();
    let instance = landscape.start_instance(fi, blade).unwrap();
    let mut sup = Supervisor::new(landscape);
    let mut t = SimTime::ZERO;
    for _ in 0..15 {
        t += SimDuration::from_minutes(1);
        sup.record_server(blade, t, 0.95, 0.5);
        sup.record_instance(instance, t, 0.95);
        sup.record_service(fi, t, 0.95);
        sup.tick(t);
    }
    for e in sup.drain_events() { println!("{e}"); }
    println!("instance on {:?}", sup.landscape().instance(instance).unwrap().server);
    let _ = big;
}
