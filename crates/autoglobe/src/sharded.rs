//! The sharded, self-healing control plane: N [`Supervisor`] replicas, a
//! lease table with epoch fencing, and deterministic failover.
//!
//! # Model
//!
//! The landscape is partitioned into `shards` by the explicit, deterministic
//! [`ShardMap`] (hash-by-id, see `autoglobe-landscape`). Each shard has an
//! *owner*: one of N supervisor replicas, recorded in a [`Lease`] carrying a
//! monotonically increasing epoch. Every replica keeps a full copy of the
//! landscape, and every landscape mutation — each [`ActionRecord`] an owner
//! executes, each confirmed failure — is replayed onto the other replicas
//! ([`Supervisor::apply_remote`], [`Supervisor::replay_failure`]) in one
//! global ascending-live-replica order, keeping them in lockstep. What
//! differs between the two [`ReplicationMode`]s is who ingests the
//! *measurement* stream:
//!
//! * [`ReplicationMode::Full`] — every live replica applies the complete
//!   buffered stream to its own monitoring (state machine replication,
//!   not state partitioning), so each replica derives the identical
//!   confirmed-trigger stream; the plane takes that stream from the lowest
//!   live replica (the *canonical* one).
//! * [`ReplicationMode::Delta`] (the default) — each replica ingests only
//!   the measurements of subjects in its **owned** shards, so its load
//!   archive and fuzzy advisors cover 1/shards of the landscape and
//!   per-replica monitoring work drops from O(landscape) to
//!   O(landscape/shards) per tick. Foreign loads arrive as a compact
//!   per-shard [`ShardDelta`] (current loads plus advisor watch
//!   snapshots), applied in ascending live-replica order exactly where
//!   `apply_remote` runs; cross-shard reads during trigger planning go
//!   through this read-only replicated loads view, never through foreign
//!   monitoring state. The global trigger stream is the merge of the
//!   owners' streams, restored to measurement-arrival order (then
//!   proactive subjects ascending) — the very order the canonical replica
//!   derives in full mode, bit for bit.
//!
//! Either way the plane brokers each dispatch through the lease table: only
//! the shard's current lease holder plans and executes the trigger, stamped
//! with the lease epoch.
//!
//! # Failure of a shard owner
//!
//! Supervisors heartbeat each other through the existing
//! [`HeartbeatMonitor`]: every plane tick each live supervisor beats a
//! plane-private monitor, and a supervisor that falls silent goes through
//! the same suspect → confirm protocol as any watched server. When an owner
//! is *confirmed* dead:
//!
//! 1. the global epoch increments, and every shard the dead supervisor
//!    owned is re-adopted by the deterministic successor — the lowest live
//!    supervisor id — under a fresh [`Lease`] at the new epoch;
//! 2. the dead owner's execution substrate is fenced below the new epoch
//!    ([`Supervisor::fence_stale_epochs`]): its in-flight actions are
//!    discarded as [`ExecutionEvent::FencedStaleEpoch`], and even a
//!    *revived* old owner that later tries to settle work finds every
//!    operation stamped with a stale epoch refused at poll time — no ghost
//!    moves;
//! 3. the successor watch-adopts every subject of the shard that has ever
//!    heartbeated the plane, so a server that was already silent when the
//!    old owner died still accrues misses with the new owner and its
//!    failure is confirmed after the usual detection window;
//! 4. under delta replication the successor also rebuilds the shard's
//!    monitoring from the plane's [`SampleRing`]: each adopted advisor is
//!    restored from the dead owner's last published watch snapshot and
//!    replays the samples that arrived after it. Any trigger the replay
//!    re-derives is one full replication would have dropped at dispatch
//!    while the shard was headless, so it is counted and evented
//!    identically ([`PlaneEvent::TriggerDropped`] at the trigger's own
//!    confirmation time).
//!
//! Triggers for a shard whose lease still points at a dead-but-unconfirmed
//! owner are dropped (and counted): the shard is headless for the detection
//! window, and monitoring re-raises the trigger once a live owner holds the
//! lease — the paper's watch-time confirmation makes the re-raise cheap.
//!
//! With `shards = 1` the plane is a single supervisor driven through the
//! same code path, bit-identical to [`SupervisedRun`](crate::harness)
//! (test-enforced); at any shard count the paper scenarios (reliable
//! executor, no failures) produce byte-identical results because planning
//! is deterministic over replicated state.

use crate::harness::{metrics_shell, resolve_schedule};
use crate::supervisor::{PendingTrigger, RecoveryRecord, Supervisor, SupervisorConfig};
use autoglobe_controller::{ActionRecord, ControllerEvent, ExecutionEvent, RecoveryOutcome};
use autoglobe_landscape::{
    DeltaSubject, InstanceId, Landscape, SampleRing, ServerId, ServiceId, ShardDelta, ShardId,
    ShardMap, WatchSnapshot,
};
use autoglobe_monitor::{
    Advisor, HeartbeatConfig, HeartbeatEvent, HeartbeatMonitor, LoadSample, SimDuration, SimTime,
    Subject, SubjectConfig, WatchState,
};
use autoglobe_pool as pool;
use autoglobe_rng::{splitmix64, Rng};
use autoglobe_simulator::sap::SapEnvironment;
use autoglobe_simulator::{LoadModulation, Metrics, ScenarioSchedule, SimConfig, WorkloadEngine};
use std::collections::{BTreeMap, BTreeSet};

use crate::supervisor::SupervisorError;

/// Seed domain separating the derived executor streams of secondary
/// replicas from the primary's configured seed.
const REPLICA_SEED_DOMAIN: u64 = 0x5EED_5A4D_0003;

/// How non-owners learn about foreign shards' measurements (see the module
/// docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// Every live replica ingests the complete measurement stream into its
    /// own monitoring — state machine replication. Kept as the
    /// proof/reference path: CI diffs its outputs against delta mode.
    Full,
    /// Owner-scoped ingestion plus compact per-shard [`ShardDelta`]s:
    /// per-replica monitoring work is O(landscape/shards) per tick with
    /// bit-identical outputs (test-enforced).
    #[default]
    Delta,
}

/// Cumulative measurement-ingestion accounting. Full replication performs
/// `live_replicas ×` the buffered count of supervisor-side ingestions;
/// delta replication at most one per measurement — the per-replica work
/// reduction, assertable in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Measurements buffered through `record_*` and consumed by ticks.
    pub buffered: u64,
    /// Supervisor-side measurement ingestions (archive + advisor records).
    pub ingested: u64,
}

/// Global ordering key for merging the owners' trigger streams in delta
/// mode: measured triggers first, in measurement-arrival order (full
/// mode's record order), then proactive triggers by subject (full mode's
/// servers-then-services landscape walk is exactly [`Subject`]'s order).
/// The derived `Ord` encodes both rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TriggerKey {
    Measured(u64),
    Proactive(Subject),
}

fn to_delta(subject: Subject) -> DeltaSubject {
    match subject {
        Subject::Server(s) => DeltaSubject::Server(s),
        Subject::Service(s) => DeltaSubject::Service(s),
        Subject::Instance(i) => DeltaSubject::Instance(i),
    }
}

fn from_delta(subject: DeltaSubject) -> Subject {
    match subject {
        DeltaSubject::Server(s) => Subject::Server(s),
        DeltaSubject::Service(s) => Subject::Service(s),
        DeltaSubject::Instance(i) => Subject::Instance(i),
    }
}

fn snapshot_of(watch: WatchState) -> WatchSnapshot {
    match watch {
        WatchState::Quiet => WatchSnapshot::Quiet,
        WatchState::Overload { since } => WatchSnapshot::Overload {
            since_secs: since.as_secs(),
        },
        WatchState::Idle { since } => WatchSnapshot::Idle {
            since_secs: since.as_secs(),
        },
    }
}

fn state_of(snapshot: WatchSnapshot) -> WatchState {
    match snapshot {
        WatchSnapshot::Quiet => WatchState::Quiet,
        WatchSnapshot::Overload { since_secs } => WatchState::Overload {
            since: SimTime::from_secs(since_secs),
        },
        WatchSnapshot::Idle { since_secs } => WatchState::Idle {
            since: SimTime::from_secs(since_secs),
        },
    }
}

/// Ring retention: the longest advisor retention a plane-registered subject
/// can have, plus an hour of slack. [`Advisor::restore`] re-prunes to the
/// advisor's own retention during replay, so the slack never changes a
/// rebuild — it only guarantees no needed sample was evicted early.
fn ring_retention_secs() -> u64 {
    let server = SubjectConfig::paper_defaults(1.0).retention().as_secs();
    let service = SubjectConfig::service_defaults().retention().as_secs();
    server.max(service) + 3600
}

/// A shard ownership lease: who may act for the shard, and under which
/// coordination epoch. Epochs only ever increase; an action stamped with an
/// older epoch than the shard's current lease is stale by definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Index of the supervisor replica holding the lease.
    pub owner: usize,
    /// The epoch the lease was issued under.
    pub epoch: u64,
}

/// Coordination-layer events: owner liveness transitions and shard
/// re-adoptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneEvent {
    /// A shard owner missed enough plane heartbeats to be suspected.
    OwnerSuspected {
        /// The silent supervisor's index.
        supervisor: usize,
        /// When the suspicion was raised.
        time: SimTime,
    },
    /// A shard owner's silence survived the confirmation window; its leases
    /// are revoked and its shards re-adopted.
    OwnerConfirmed {
        /// The confirmed-dead supervisor's index.
        supervisor: usize,
        /// When the failure was confirmed.
        time: SimTime,
    },
    /// A shard moved to its deterministic successor under a fresh epoch.
    ShardReadopted {
        /// The re-adopted shard.
        shard: ShardId,
        /// The dead previous owner.
        from: usize,
        /// The successor (lowest live supervisor index).
        to: usize,
        /// The new lease epoch.
        epoch: u64,
        /// When the re-adoption happened.
        time: SimTime,
    },
    /// A confirmed trigger addressed a shard whose lease still points at a
    /// dead-but-unconfirmed owner; it was dropped and will be re-raised by
    /// monitoring once the shard has a live owner.
    TriggerDropped {
        /// The headless shard.
        shard: ShardId,
        /// The trigger's subject.
        subject: Subject,
        /// When the trigger was dropped.
        time: SimTime,
    },
}

/// One supervisor replica plus its plane-side bookkeeping.
#[derive(Debug)]
struct ShardWorker {
    supervisor: Supervisor,
    alive: bool,
    inbox_beats: Vec<(Subject, SimTime)>,
    /// Delta mode: owner-routed measurements for this replica's shards,
    /// tagged with their global arrival sequence (buffer reused per tick).
    inbox_measurements: Vec<(u64, Subject, SimTime, f64, f64)>,
    /// Delta mode: arrival tags of the measurements whose ingestion raised
    /// a confirmed trigger, in ingestion order — tandem with the measured
    /// prefix of `scratch_triggers`.
    trigger_tags: Vec<(u64, Subject)>,
    scratch_triggers: Vec<PendingTrigger>,
}

/// Everything one [`ShardedControlPlane::tick`] produced.
#[derive(Debug, Default)]
pub struct PlaneTickReport {
    /// Actions completed this tick, in canonical dispatch order (already
    /// applied to every live replica).
    pub executed: Vec<ActionRecord>,
    /// Coordination events (suspicions, confirmations, re-adoptions,
    /// dropped triggers).
    pub events: Vec<PlaneEvent>,
    /// Self-healing outcomes of subject failures confirmed by shard owners
    /// this tick (already replayed onto every live replica).
    pub recoveries: Vec<RecoveryRecord>,
    /// In-flight operations of deposed owners fenced this tick.
    pub fenced: usize,
    /// Triggers dropped because their shard was headless.
    pub dropped_triggers: usize,
}

/// The sharded control plane (see the module docs for the model).
#[derive(Debug)]
pub struct ShardedControlPlane {
    workers: Vec<ShardWorker>,
    map: ShardMap,
    leases: Vec<Lease>,
    epoch: u64,
    /// Plane-private liveness monitor; supervisor `i` appears as
    /// `Subject::Server(ServerId::new(i))` (the ids are unrelated to the
    /// landscape's servers — this monitor watches supervisors).
    liveness: HeartbeatMonitor,
    /// Every subject that has ever heartbeated through the plane, so a
    /// successor knows what to watch-adopt.
    beated: BTreeSet<Subject>,
    /// Measurements buffered since the last tick, in arrival order; the
    /// next tick drains them in place (the buffer's capacity is reused,
    /// never reallocated per tick — test-enforced).
    measurements: Vec<(Subject, SimTime, f64, f64)>,
    /// The authoritative controller-event stream (one copy per event, in
    /// plane order — replica replays are drained and discarded).
    controller_events: Vec<ControllerEvent>,
    replication: ReplicationMode,
    /// Delta mode: plane-retained samples plus last published watch
    /// snapshots for every server/service — what a successor rebuilds an
    /// adopted shard's monitoring from.
    ring: SampleRing,
    /// Per-shard delta under construction each delta-mode tick (buffers
    /// reused across ticks).
    deltas: Vec<ShardDelta>,
    ingest: IngestStats,
    /// Reusable instance-routing table for delta-mode ticks: instance id →
    /// owning shard (`u32::MAX` = departed). Refilled from one instance
    /// walk per tick, replacing a tree lookup per instance measurement.
    /// Length is meaningless between ticks.
    route_scratch: Vec<u32>,
    jobs: usize,
    last_now: Option<SimTime>,
}

impl ShardedControlPlane {
    /// Shard `landscape` into `shards` partitions, each owned by its own
    /// supervisor replica built from `config`. Replica 0 keeps
    /// `config.executor_seed`; the others derive disjoint executor streams
    /// via splitmix64, so a fallible substrate stays deterministic per
    /// replica without the streams colliding.
    ///
    /// # Panics
    /// Panics when `shards` is zero or `config` fails validation.
    pub fn new(landscape: Landscape, shards: usize, config: SupervisorConfig) -> Self {
        let map = ShardMap::new(&landscape, shards);
        let workers: Vec<ShardWorker> = (0..shards)
            .map(|i| {
                let mut worker_config = config.clone();
                if i > 0 {
                    let mut state = config.executor_seed ^ REPLICA_SEED_DOMAIN ^ (i as u64);
                    worker_config.executor_seed = splitmix64(&mut state);
                }
                ShardWorker {
                    supervisor: Supervisor::with_config(landscape.clone(), worker_config),
                    alive: true,
                    inbox_beats: Vec::new(),
                    inbox_measurements: Vec::new(),
                    trigger_tags: Vec::new(),
                    scratch_triggers: Vec::new(),
                }
            })
            .collect();
        let mut liveness = HeartbeatMonitor::new(HeartbeatConfig::default());
        for i in 0..shards {
            liveness.watch(Subject::Server(ServerId::new(i as u32)));
        }
        let mut plane = ShardedControlPlane {
            workers,
            leases: (0..shards).map(|i| Lease { owner: i, epoch: 0 }).collect(),
            map,
            epoch: 0,
            liveness,
            beated: BTreeSet::new(),
            measurements: Vec::new(),
            controller_events: Vec::new(),
            replication: ReplicationMode::Delta,
            ring: SampleRing::new(ring_retention_secs()),
            deltas: (0..shards).map(|s| ShardDelta::new(s, 0, 0)).collect(),
            ingest: IngestStats::default(),
            route_scratch: Vec::new(),
            jobs: shards,
            last_now: None,
        };
        plane.apply_scopes();
        plane
    }

    /// Choose the [`ReplicationMode`] (builder form). Must be applied
    /// before any measurement is recorded: switching re-scopes every
    /// replica's monitoring from scratch.
    pub fn with_replication(mut self, mode: ReplicationMode) -> Self {
        self.set_replication(mode);
        self
    }

    /// Choose the [`ReplicationMode`]; see
    /// [`with_replication`](Self::with_replication).
    pub fn set_replication(&mut self, mode: ReplicationMode) {
        if mode == self.replication {
            return;
        }
        self.replication = mode;
        match mode {
            ReplicationMode::Full => {
                for w in &mut self.workers {
                    w.supervisor.clear_monitor_scope();
                }
            }
            ReplicationMode::Delta => self.apply_scopes(),
        }
    }

    /// The active replication mode.
    pub fn replication(&self) -> ReplicationMode {
        self.replication
    }

    /// Cumulative measurement-ingestion counters.
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest
    }

    /// Capacity of the plane's measurement buffer (allocation tests: the
    /// buffer is drained in place and reused, never handed off per tick).
    pub fn measurement_buffer_capacity(&self) -> usize {
        self.measurements.capacity()
    }

    /// The per-shard deltas published by the last delta-mode tick
    /// (inspection / tests; the buffers are rebuilt every tick).
    pub fn last_deltas(&self) -> &[ShardDelta] {
        &self.deltas
    }

    /// Scope each replica's monitoring to the shards it currently owns.
    fn apply_scopes(&mut self) {
        for i in 0..self.workers.len() {
            let owned: BTreeSet<ShardId> = self
                .leases
                .iter()
                .enumerate()
                .filter(|&(_, lease)| lease.owner == i)
                .map(|(shard, _)| shard)
                .collect();
            self.workers[i]
                .supervisor
                .set_monitor_scope(self.map.clone(), owned);
        }
    }

    /// Cap the scoped-thread fan-out of the per-replica interval close.
    /// Output-neutral: replicas are independent, so any width produces
    /// bit-identical results (CI-enforced).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Number of shards (== number of supervisor replicas).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The current global coordination epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lease currently covering `shard`.
    pub fn lease(&self, shard: ShardId) -> Lease {
        self.leases[shard]
    }

    /// Whether supervisor `i` is live.
    pub fn is_alive(&self, i: usize) -> bool {
        self.workers.get(i).map(|w| w.alive).unwrap_or(false)
    }

    /// Index of the canonical replica: the lowest live supervisor. Its
    /// trigger stream is the global one (all replicas derive identical
    /// streams), and it is the deterministic successor for orphaned shards.
    pub fn canonical(&self) -> usize {
        self.workers
            .iter()
            .position(|w| w.alive)
            .expect("at least one supervisor is always live")
    }

    /// The canonical replica's landscape (all live replicas are identical).
    pub fn landscape(&self) -> &Landscape {
        self.workers[self.canonical()].supervisor.landscape()
    }

    /// Direct access to replica `i`'s supervisor (inspection / tests).
    pub fn supervisor(&self, i: usize) -> &Supervisor {
        &self.workers[i].supervisor
    }

    /// Kill supervisor `i` (crash-stop: it stops heartbeating the plane and
    /// is excluded from all future work). Its leases stay in place until
    /// the plane *confirms* the death — that window is exactly the
    /// detection latency the shardchaos experiment measures. Refuses to
    /// kill the last live supervisor (the plane would be headless forever)
    /// and returns whether the kill took effect.
    pub fn kill(&mut self, i: usize) -> bool {
        let live = self.workers.iter().filter(|w| w.alive).count();
        match self.workers.get_mut(i) {
            Some(w) if w.alive && live > 1 => {
                w.alive = false;
                w.inbox_beats.clear();
                true
            }
            _ => false,
        }
    }

    /// Buffer a server measurement for every live replica.
    pub fn record_server(&mut self, server: ServerId, time: SimTime, cpu: f64, mem: f64) {
        self.measurements
            .push((Subject::Server(server), time, cpu, mem));
    }

    /// Buffer a service measurement for every live replica.
    pub fn record_service(&mut self, service: ServiceId, time: SimTime, cpu: f64) {
        self.measurements
            .push((Subject::Service(service), time, cpu, 0.0));
    }

    /// Buffer an instance measurement for every live replica.
    pub fn record_instance(&mut self, instance: InstanceId, time: SimTime, cpu: f64) {
        self.measurements
            .push((Subject::Instance(instance), time, cpu, 0.0));
    }

    /// Route a liveness signal to the owner of the subject's shard. A beat
    /// whose owner is dead-but-unconfirmed is lost — exactly like a
    /// heartbeat sent to a crashed coordinator — until the shard's
    /// successor adopts the watch. Returns false for a subject the
    /// landscape does not know (the beat is fenced).
    pub fn beat(&mut self, subject: Subject, now: SimTime) -> bool {
        let Some(shard) = self.shard_of_subject(subject) else {
            return false;
        };
        self.beated.insert(subject);
        let owner = self.leases[shard].owner;
        if self.workers[owner].alive {
            self.workers[owner].inbox_beats.push((subject, now));
        }
        true
    }

    /// The shard responsible for `subject`. Instances belong to their host
    /// server's shard; `None` when the subject has left the landscape.
    pub fn shard_of_subject(&self, subject: Subject) -> Option<ShardId> {
        let landscape = self.landscape();
        match subject {
            Subject::Server(s) => landscape.server(s).ok().map(|_| self.map.shard_of(s)),
            Subject::Service(s) => landscape
                .service(s)
                .ok()
                .map(|_| self.map.shard_of_service(s)),
            Subject::Instance(i) => landscape
                .instance(i)
                .ok()
                .map(|inst| self.map.shard_of(inst.server)),
        }
    }

    /// Mark a server (un)available on every live replica — the harness's
    /// failure-injection hook, mirroring the simulator's oracle.
    pub fn set_server_available(&mut self, server: ServerId, available: bool) {
        for w in self.workers.iter_mut().filter(|w| w.alive) {
            w.supervisor
                .landscape_mut()
                .set_available(server, available)
                .expect("replicas agree on the server set");
        }
    }

    /// Broadcast a repair to every live replica; the canonical replica's
    /// `Repaired` event (if any) is kept as the authoritative copy.
    pub fn report_server_repaired(&mut self, server: ServerId, now: SimTime) -> bool {
        let canonical = self.canonical();
        let mut repaired = false;
        for i in 0..self.workers.len() {
            if !self.workers[i].alive {
                continue;
            }
            let outcome = self.workers[i]
                .supervisor
                .report_server_repaired(server, now)
                .expect("replicas agree on the server set");
            let events = self.workers[i].supervisor.drain_events();
            if i == canonical {
                repaired = outcome.is_some();
                self.controller_events.extend(events);
            }
        }
        repaired
    }

    /// Planned failover of a host on every live replica (maintenance
    /// drain): the host is marked unavailable and its instances restart
    /// elsewhere immediately through the supervisor's oracle path
    /// ([`Supervisor::report_server_failure`]) — zero detection latency,
    /// no severed sessions, unlike a kill detected through heartbeat
    /// silence. Deterministic planning over identical state keeps the
    /// replicas in lockstep; the canonical replica's outcome and events
    /// are the authoritative copies.
    pub fn drain_server(&mut self, server: ServerId, now: SimTime) -> RecoveryOutcome {
        let canonical = self.canonical();
        let mut result = RecoveryOutcome::default();
        for i in 0..self.workers.len() {
            if !self.workers[i].alive {
                continue;
            }
            let outcome = self.workers[i]
                .supervisor
                .report_server_failure(server, now);
            let events = self.workers[i].supervisor.drain_events();
            if i == canonical {
                result = outcome;
                self.controller_events.extend(events);
            }
        }
        result
    }

    /// Broadcast a restart retry for a lost instance to every live replica
    /// (deterministic planning over identical state picks the same host on
    /// each). Returns the canonical replica's result.
    pub fn retry_restart(
        &mut self,
        service: ServiceId,
        old_instance: InstanceId,
        now: SimTime,
    ) -> Option<(InstanceId, ServerId)> {
        let canonical = self.canonical();
        let mut result = None;
        for i in 0..self.workers.len() {
            if !self.workers[i].alive {
                continue;
            }
            let outcome = self.workers[i]
                .supervisor
                .retry_restart(service, old_instance, now);
            let events = self.workers[i].supervisor.drain_events();
            if i == canonical {
                result = outcome;
                self.controller_events.extend(events);
            } else {
                debug_assert_eq!(outcome, result, "replicas diverged on a restart retry");
            }
        }
        result
    }

    /// Drain the authoritative controller-event stream (owner-side planning
    /// and failure events, one copy each, in plane order).
    pub fn drain_controller_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.controller_events)
    }

    /// Drain every replica's execution-substrate log, dead replicas
    /// included, tagged with the replica index — the fencing property tests
    /// audit this for double applies.
    pub fn drain_all_execution_events(&mut self) -> Vec<(usize, ExecutionEvent)> {
        let mut out = Vec::new();
        for (i, w) in self.workers.iter_mut().enumerate() {
            for event in w.supervisor.drain_execution_events() {
                out.push((i, event));
            }
        }
        out
    }

    fn advance_clock(&mut self, now: SimTime) -> Result<(), SupervisorError> {
        if let Some(last) = self.last_now {
            if now < last {
                return Err(SupervisorError::NonMonotonicTime { now, last });
            }
        }
        self.last_now = Some(now);
        Ok(())
    }

    /// Indices of the live replicas, ascending.
    fn live(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].alive)
            .collect()
    }

    /// Apply `record` to every live replica except `source`.
    fn replicate(&mut self, record: &ActionRecord, source: usize) {
        for i in 0..self.workers.len() {
            if i != source && self.workers[i].alive {
                self.workers[i]
                    .supervisor
                    .apply_remote(record)
                    .expect("replicas apply owner-executed actions in lockstep");
            }
        }
    }

    /// One plane tick (see the module docs): owner liveness + succession,
    /// the parallel per-replica interval close, settle/recovery
    /// replication, and the canonical trigger stream brokered through the
    /// lease table.
    pub fn tick(&mut self, now: SimTime) -> Result<PlaneTickReport, SupervisorError> {
        self.advance_clock(now)?;
        let mut report = PlaneTickReport::default();

        // ---- 1. Supervisor liveness: every live replica beats the plane
        // monitor; confirmed silence triggers deterministic succession.
        for i in 0..self.workers.len() {
            if self.workers[i].alive {
                self.liveness
                    .beat(Subject::Server(ServerId::new(i as u32)), now);
            }
        }
        for event in self.liveness.tick(now) {
            let (subject, time) = (event.subject(), event.time());
            let Subject::Server(id) = subject else {
                continue;
            };
            let supervisor = id.index();
            match event {
                HeartbeatEvent::Suspected { .. } => {
                    report
                        .events
                        .push(PlaneEvent::OwnerSuspected { supervisor, time });
                }
                HeartbeatEvent::Confirmed { .. } => {
                    report
                        .events
                        .push(PlaneEvent::OwnerConfirmed { supervisor, time });
                    let fenced = self.succeed(supervisor, now, &mut report);
                    report.fenced += fenced;
                }
                HeartbeatEvent::Reconciled { .. } => {}
            }
        }

        // ---- 2. Measurement fan-in. Full mode: every live replica applies
        // the complete buffered stream. Delta mode: the plane routes each
        // measurement to its owner and publishes per-shard deltas. Replicas
        // are independent inside the parallel regions, so any fan-out width
        // produces identical results.
        self.ingest.buffered += self.measurements.len() as u64;
        match self.replication {
            ReplicationMode::Full => {
                let live_count = self.workers.iter().filter(|w| w.alive).count() as u64;
                self.ingest.ingested += live_count * self.measurements.len() as u64;
                let measurements = &self.measurements;
                pool::parallel_chunks_mut(self.jobs, &mut self.workers, |_, chunk| {
                    for w in chunk.iter_mut().filter(|w| w.alive) {
                        for &(subject, time, cpu, mem) in measurements {
                            match subject {
                                Subject::Server(s) => w.supervisor.record_server(s, time, cpu, mem),
                                Subject::Service(s) => w.supervisor.record_service(s, time, cpu),
                                Subject::Instance(i) => w.supervisor.record_instance(i, time, cpu),
                            }
                        }
                        for idx in 0..w.inbox_beats.len() {
                            let (subject, time) = w.inbox_beats[idx];
                            w.supervisor
                                .beat(subject, time)
                                .expect("the plane routes monotonic beats");
                        }
                        w.inbox_beats.clear();
                    }
                });
                self.measurements.clear();
            }
            ReplicationMode::Delta => self.ingest_deltas(now),
        }

        // ---- 3/4. Sequential interval close, ascending replica order:
        // close replica i's monitoring interval (which settles its earlier
        // dispatches and runs its heartbeat self-healing), then immediately
        // replicate those mutations — settled actions via `apply_remote`,
        // confirmed failures via `replay_failure` — to every other live
        // replica before the next replica closes its own interval. The
        // strict order matters for more than tidiness: landscape mutations
        // allocate instance ids sequentially, so all replicas must apply
        // the same tick's mutations in one global order. Were each owner
        // to close in parallel, two owners mutating in the same tick would
        // each apply their own mutation first and the other's second,
        // swapping the allocation order and forking the replicas' id
        // spaces.
        let live = self.live();
        for &i in &live {
            let (completed, triggers) = self.workers[i]
                .supervisor
                .tick_collect(now)
                .expect("the plane clock is monotonic");
            self.workers[i].scratch_triggers = triggers;
            for record in completed {
                self.replicate(&record, i);
                report.executed.push(record);
            }
            let events = self.workers[i].supervisor.drain_events();
            self.controller_events.extend(events);
            // Replay owner-confirmed subject failures on the other replicas
            // (deterministic recovery over identical state), draining and
            // discarding the replicas' duplicate event copies.
            for rec in self.workers[i].supervisor.drain_recoveries() {
                for &j in &live {
                    if j != i {
                        self.workers[j]
                            .supervisor
                            .replay_failure(rec.subject, rec.time);
                        self.workers[j].supervisor.drain_recoveries();
                        self.workers[j].supervisor.drain_events();
                    }
                }
                if self.replication == ReplicationMode::Delta {
                    if let Some(shard) = self.shard_of_subject(rec.subject) {
                        self.deltas[shard]
                            .recoveries
                            .push((to_delta(rec.subject), rec.time.as_secs()));
                    }
                }
                report.recoveries.push(rec);
            }
        }

        // ---- 5. The global trigger stream, brokered through the lease
        // table. Full mode: the canonical replica's stream (all replicas
        // derive identical copies). Delta mode: the owners' streams merged
        // back into that same global order. The owner stamps the lease
        // epoch, plans, dispatches; every completion is replicated.
        // Headless shards drop (and count) their triggers — monitoring
        // re-raises them under the next owner.
        let triggers: Vec<PendingTrigger> = match self.replication {
            ReplicationMode::Full => {
                let canonical = self.canonical();
                let triggers = std::mem::take(&mut self.workers[canonical].scratch_triggers);
                for &i in &live {
                    self.workers[i].scratch_triggers.clear();
                    self.workers[i].trigger_tags.clear();
                }
                triggers
            }
            ReplicationMode::Delta => self.merge_triggers(&live),
        };
        for trigger in triggers {
            let Some(shard) = self.shard_of_subject(trigger.event.subject) else {
                continue;
            };
            let lease = self.leases[shard];
            if !self.workers[lease.owner].alive {
                report.dropped_triggers += 1;
                report.events.push(PlaneEvent::TriggerDropped {
                    shard,
                    subject: trigger.event.subject,
                    time: now,
                });
                continue;
            }
            let owner = lease.owner;
            self.workers[owner]
                .supervisor
                .set_execution_epoch(lease.epoch);
            let records = self.workers[owner]
                .supervisor
                .dispatch_trigger(trigger, now)
                .expect("the plane clock is monotonic");
            for record in records {
                self.replicate(&record, owner);
                report.executed.push(record);
            }
            let events = self.workers[owner].supervisor.drain_events();
            self.controller_events.extend(events);
        }

        Ok(report)
    }

    /// Settle in-flight operations on every live replica's substrate and
    /// replicate whatever completed (only shard owners ever have in-flight
    /// work). Returns the completed actions in ascending-replica order.
    pub fn poll(&mut self, now: SimTime) -> Result<Vec<ActionRecord>, SupervisorError> {
        self.advance_clock(now)?;
        let mut executed = Vec::new();
        for i in self.live() {
            let records = self.workers[i]
                .supervisor
                .poll(now)
                .expect("the plane clock is monotonic");
            for record in records {
                self.replicate(&record, i);
                executed.push(record);
            }
            let events = self.workers[i].supervisor.drain_events();
            self.controller_events.extend(events);
        }
        Ok(executed)
    }

    /// Deterministic succession for a confirmed-dead supervisor: bump the
    /// global epoch, move every lease it held to the lowest live replica,
    /// watch-adopt the shard's heartbeating subjects, rebuild the shard's
    /// monitoring from the sample ring (delta mode), and fence the dead
    /// owner's in-flight work below the new epoch. Returns the number of
    /// fenced operations.
    fn succeed(&mut self, dead: usize, now: SimTime, report: &mut PlaneTickReport) -> usize {
        let orphaned: Vec<ShardId> = (0..self.leases.len())
            .filter(|&s| self.leases[s].owner == dead)
            .collect();
        if orphaned.is_empty() {
            return 0;
        }
        self.epoch += 1;
        let successor = self.canonical();
        for &shard in &orphaned {
            self.leases[shard] = Lease {
                owner: successor,
                epoch: self.epoch,
            };
            report.events.push(PlaneEvent::ShardReadopted {
                shard,
                from: dead,
                to: successor,
                epoch: self.epoch,
                time: now,
            });
            let adopt: Vec<Subject> = self
                .beated
                .iter()
                .copied()
                .filter(|&s| self.shard_of_subject(s) == Some(shard))
                .collect();
            for subject in adopt {
                self.workers[successor].supervisor.watch(subject);
            }
            if self.replication == ReplicationMode::Delta {
                self.workers[successor].supervisor.adopt_shard(shard);
                self.rebuild_shard_monitoring(shard, successor, report);
            }
        }
        self.workers[dead]
            .supervisor
            .fence_stale_epochs(self.epoch, now)
            .len()
    }

    /// Delta-mode phase 2: route the buffered stream (owner inboxes, the
    /// sample ring, per-shard delta loads), let owners ingest their
    /// inboxes in parallel, then publish the deltas — watch snapshots into
    /// the ring, foreign loads onto every other live replica — in
    /// ascending live-replica order. Headless shards have no publisher;
    /// the plane itself applies their loads to every live replica so
    /// cross-shard planning never reads a stale view.
    fn ingest_deltas(&mut self, now: SimTime) {
        let now_secs = now.as_secs();
        for shard in 0..self.deltas.len() {
            let epoch = self.leases[shard].epoch;
            let delta = &mut self.deltas[shard];
            delta.shard = shard;
            delta.epoch = epoch;
            delta.now_secs = now_secs;
            delta.loads.clear();
            delta.watches.clear();
            delta.recoveries.clear();
        }

        // Hoist subject routing out of the arrival loop: server and service
        // shards come from bounds checks plus [`ShardMap`], and one instance
        // walk flattens the tree into a dense id → shard table — the loop
        // below must not pay a canonical-landscape resolve and a tree
        // lookup per instance measurement. The table reproduces
        // [`Self::shard_of_subject`] exactly: a departed instance id maps
        // to the `u32::MAX` sentinel, i.e. `None`.
        let mut instance_shard = std::mem::take(&mut self.route_scratch);
        let (num_servers, num_services) = {
            let landscape = self.landscape();
            instance_shard.clear();
            instance_shard.resize(landscape.instance_id_bound() as usize, u32::MAX);
            for inst in landscape.instances() {
                instance_shard[inst.id.index()] = self.map.shard_of(inst.server) as u32;
            }
            (landscape.num_servers(), landscape.num_services())
        };

        // Route in global arrival order, tagging each measurement with its
        // arrival sequence. Subjects that departed since recording drop
        // here — the supervisors' own `record` fences them identically.
        for seq in 0..self.measurements.len() {
            let (subject, time, cpu, mem) = self.measurements[seq];
            let shard = match subject {
                Subject::Server(s) if s.index() < num_servers => self.map.shard_of(s),
                Subject::Service(s) if s.index() < num_services => self.map.shard_of_service(s),
                Subject::Instance(i) => match instance_shard.get(i.index()).copied() {
                    Some(shard) if shard != u32::MAX => shard as ShardId,
                    _ => continue,
                },
                _ => continue,
            };
            match subject {
                Subject::Server(_) | Subject::Service(_) => {
                    self.ring.push(to_delta(subject), time.as_secs(), cpu, mem);
                }
                Subject::Instance(_) => {}
            }
            self.deltas[shard].loads.push((to_delta(subject), cpu, mem));
            let owner = self.leases[shard].owner;
            if self.workers[owner].alive {
                self.workers[owner]
                    .inbox_measurements
                    .push((seq as u64, subject, time, cpu, mem));
            }
        }
        self.measurements.clear();
        self.route_scratch = instance_shard;

        // Owners ingest their own shards only — O(landscape/shards) per
        // replica — noting the arrival tag of every ingestion that raised
        // a trigger, so phase 5 can restore the global order.
        self.ingest.ingested += self
            .workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.inbox_measurements.len() as u64)
            .sum::<u64>();
        pool::parallel_chunks_mut(self.jobs, &mut self.workers, |_, chunk| {
            for w in chunk.iter_mut().filter(|w| w.alive) {
                for idx in 0..w.inbox_measurements.len() {
                    let (seq, subject, time, cpu, mem) = w.inbox_measurements[idx];
                    let before = w.supervisor.pending_trigger_count();
                    match subject {
                        Subject::Server(s) => w.supervisor.record_server(s, time, cpu, mem),
                        Subject::Service(s) => w.supervisor.record_service(s, time, cpu),
                        Subject::Instance(i) => w.supervisor.record_instance(i, time, cpu),
                    }
                    if w.supervisor.pending_trigger_count() > before {
                        w.trigger_tags.push((seq, subject));
                    }
                }
                w.inbox_measurements.clear();
                for idx in 0..w.inbox_beats.len() {
                    let (subject, time) = w.inbox_beats[idx];
                    w.supervisor
                        .beat(subject, time)
                        .expect("the plane routes monotonic beats");
                }
                w.inbox_beats.clear();
            }
        });

        // Collect each live owner's end-of-ingestion watch states into its
        // shards' deltas — the snapshots a successor restores from.
        {
            let Self {
                ref workers,
                ref mut deltas,
                ref map,
                ref leases,
                ..
            } = *self;
            let canonical = workers
                .iter()
                .position(|w| w.alive)
                .expect("at least one supervisor is always live");
            let landscape = workers[canonical].supervisor.landscape();
            for server in landscape.server_ids() {
                let shard = map.shard_of(server);
                let owner = leases[shard].owner;
                if !workers[owner].alive {
                    continue;
                }
                if let Some(advisor) = workers[owner].supervisor.advisor(Subject::Server(server)) {
                    deltas[shard].watches.push((
                        DeltaSubject::Server(server),
                        snapshot_of(advisor.watch_state()),
                    ));
                }
            }
            for service in landscape.service_ids() {
                let shard = map.shard_of_service(service);
                let owner = leases[shard].owner;
                if !workers[owner].alive {
                    continue;
                }
                if let Some(advisor) = workers[owner].supervisor.advisor(Subject::Service(service))
                {
                    deltas[shard].watches.push((
                        DeltaSubject::Service(service),
                        snapshot_of(advisor.watch_state()),
                    ));
                }
            }
        }

        // Publish in ascending live-replica order: each publisher's shard
        // deltas absorb into the ring and land on every other live
        // replica's loads view.
        let live = self.live();
        for &publisher in &live {
            for shard in 0..self.deltas.len() {
                if self.leases[shard].owner != publisher {
                    continue;
                }
                self.ring.absorb(&self.deltas[shard]);
                for &replica in &live {
                    if replica != publisher {
                        self.apply_delta_loads(shard, replica);
                    }
                }
            }
        }
        for shard in 0..self.deltas.len() {
            if self.workers[self.leases[shard].owner].alive {
                continue;
            }
            for &replica in &live {
                self.apply_delta_loads(shard, replica);
            }
        }
    }

    /// Apply one shard delta's loads to `replica`'s latest-value view.
    fn apply_delta_loads(&mut self, shard: ShardId, replica: usize) {
        let Self {
            ref deltas,
            ref mut workers,
            ..
        } = *self;
        for &(subject, cpu, mem) in &deltas[shard].loads {
            workers[replica]
                .supervisor
                .apply_remote_load(from_delta(subject), cpu, mem);
        }
    }

    /// Delta-mode phase 5: interleave the owners' trigger streams back into
    /// the global order full replication derives. Measured triggers carry
    /// the arrival sequence of the measurement that raised them (the
    /// tandem `trigger_tags`); proactive triggers sort by subject. A tag
    /// whose trigger was pruned before the interval closed (its subject
    /// departed) is skipped by the tandem walk — a departed subject can
    /// never collide with a live proactive subject, so the walk stays
    /// aligned.
    fn merge_triggers(&mut self, live: &[usize]) -> Vec<PendingTrigger> {
        let mut keyed: Vec<(TriggerKey, PendingTrigger)> = Vec::new();
        for &i in live {
            let triggers = std::mem::take(&mut self.workers[i].scratch_triggers);
            let tags = &mut self.workers[i].trigger_tags;
            let mut cursor = 0;
            for trigger in triggers {
                let subject = trigger.event.subject;
                let mut matched = None;
                let mut probe = cursor;
                while probe < tags.len() {
                    if tags[probe].1 == subject {
                        matched = Some(tags[probe].0);
                        cursor = probe + 1;
                        break;
                    }
                    probe += 1;
                }
                let key = match matched {
                    Some(seq) => TriggerKey::Measured(seq),
                    None => TriggerKey::Proactive(subject),
                };
                keyed.push((key, trigger));
            }
            tags.clear();
        }
        keyed.sort_by_key(|&(key, _)| key);
        keyed.into_iter().map(|(_, trigger)| trigger).collect()
    }

    /// Delta-mode adoption: rebuild the successor's monitoring for an
    /// adopted shard from the plane's sample ring. Each server/service of
    /// the shard restores from the dead owner's last published watch
    /// snapshot, then replays the samples that arrived after it. Any
    /// trigger the replay re-derives is one full replication would have
    /// dropped at dispatch while the shard was headless, so it is counted
    /// and evented identically, stamped with the trigger's own
    /// confirmation time. (The owner's load *archive* is not rebuilt: it
    /// only feeds proactive control, which restarts cold for the adopted
    /// shard — a documented limitation.)
    fn rebuild_shard_monitoring(
        &mut self,
        shard: ShardId,
        successor: usize,
        report: &mut PlaneTickReport,
    ) {
        let subjects: Vec<(Subject, SubjectConfig)> = {
            let landscape = self.workers[successor].supervisor.landscape();
            let servers = landscape
                .server_ids()
                .filter(|&s| self.map.shard_of(s) == shard)
                .map(|s| {
                    let idx = landscape
                        .server(s)
                        .map(|spec| spec.performance_index)
                        .unwrap_or(1.0);
                    (Subject::Server(s), SubjectConfig::paper_defaults(idx))
                });
            let services = landscape
                .service_ids()
                .filter(|&s| self.map.shard_of_service(s) == shard)
                .map(|s| (Subject::Service(s), SubjectConfig::service_defaults()));
            servers.chain(services).collect()
        };
        for (subject, config) in subjects {
            let key = to_delta(subject);
            let snapshot = self.ring.watch_of(key);
            let mut advisor = match snapshot {
                Some((state, at)) => Advisor::restore(
                    subject,
                    config,
                    state_of(state),
                    self.ring
                        .samples_of(key)
                        .filter(move |&(t, _, _)| t <= at)
                        .map(|(t, cpu, mem)| LoadSample::new(SimTime::from_secs(t), cpu, mem)),
                ),
                // The owner died before publishing any delta: no snapshot,
                // so the whole retained window replays through a fresh
                // advisor.
                None => Advisor::restore(subject, config, WatchState::Quiet, std::iter::empty()),
            };
            let split = snapshot.map(|(_, at)| at);
            let mut replays: Vec<SimTime> = Vec::new();
            for (t, cpu, mem) in self.ring.samples_of(key) {
                if split.map(|at| t > at).unwrap_or(true) {
                    if let Some(trigger) =
                        advisor.observe(LoadSample::new(SimTime::from_secs(t), cpu, mem))
                    {
                        replays.push(trigger.time);
                    }
                }
            }
            for time in replays {
                report.dropped_triggers += 1;
                report.events.push(PlaneEvent::TriggerDropped {
                    shard,
                    subject,
                    time,
                });
            }
            self.workers[successor].supervisor.install_advisor(advisor);
        }
    }
}

/// Chaos-injection knobs for a [`ShardedRun`]: ground-truth server failures
/// plus a schedule of shard-owner kills.
#[derive(Debug, Clone)]
pub struct ShardChaos {
    /// Probability of a host failing, per server per simulated hour.
    pub server_failure_per_hour: f64,
    /// How long a failed host stays down before it is repaired.
    pub repair_after: SimDuration,
    /// Fractions of the horizon at which the lowest live supervisor is
    /// killed (e.g. `[0.35, 0.65]` kills two owners mid-run). Kills that
    /// would leave the plane headless are refused and simply don't happen.
    pub kill_fracs: Vec<f64>,
}

impl ShardChaos {
    /// No failures, no kills — the plane under ideal paper conditions.
    pub fn none() -> Self {
        ShardChaos {
            server_failure_per_hour: 0.0,
            repair_after: SimDuration::from_hours(1),
            kill_fracs: Vec::new(),
        }
    }
}

/// Recovery metrics of one [`ShardedRun`] — the `shard_recovery.csv`
/// columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRecoveryStats {
    /// Ground-truth server failures injected.
    pub failures_injected: usize,
    /// Server failures confirmed through an owner's heartbeat path.
    pub detections: usize,
    /// Total seconds from injection to confirmation, over all detections.
    pub detection_secs: u64,
    /// Shard owners killed.
    pub owner_kills: usize,
    /// Owner kills the plane confirmed.
    pub owner_detections: usize,
    /// Total seconds from kill to plane confirmation.
    pub owner_detection_secs: u64,
    /// Shards re-adopted by a successor.
    pub readoptions: usize,
    /// Total seconds from the owner's kill to each shard's re-adoption.
    pub readoption_secs: u64,
    /// In-flight operations fenced with a stale epoch.
    pub fenced_ops: usize,
    /// Triggers dropped while their shard was headless.
    pub dropped_triggers: usize,
    /// Instances the self-healing path restarted elsewhere.
    pub recovered_instances: usize,
    /// Instances lost for lack of capacity (queued for retry).
    pub lost_instances: usize,
    /// Lost restarts later satisfied by a retry.
    pub retried_restarts: usize,
    /// Hosts repaired and returned to the pool.
    pub repairs: usize,
    /// Sessions severed by host failures.
    pub lost_sessions: f64,
}

impl ShardRecoveryStats {
    /// Mean seconds from server-failure injection to confirmation.
    pub fn mean_detection_secs(&self) -> f64 {
        if self.detections == 0 {
            0.0
        } else {
            self.detection_secs as f64 / self.detections as f64
        }
    }

    /// Mean seconds from an owner kill to the plane confirming it.
    pub fn mean_owner_detection_secs(&self) -> f64 {
        if self.owner_detections == 0 {
            0.0
        } else {
            self.owner_detection_secs as f64 / self.owner_detections as f64
        }
    }

    /// Mean seconds from an owner kill to each of its shards being
    /// re-adopted (the plane re-adopts in the same tick it confirms, so
    /// this equals the detection latency under the default protocol).
    pub fn mean_readoption_secs(&self) -> f64 {
        if self.readoptions == 0 {
            0.0
        } else {
            self.readoption_secs as f64 / self.readoptions as f64
        }
    }
}

/// The paper's SAP workload driven through a [`ShardedControlPlane`], with
/// optional ground-truth chaos: host failures detected through the owners'
/// heartbeat paths, and shard-owner kills that exercise lease succession
/// and epoch fencing. With [`ShardChaos::none`] and one shard this is
/// bit-identical to [`SupervisedRun`](crate::harness::SupervisedRun)
/// (test-enforced).
pub struct ShardedRun {
    plane: ShardedControlPlane,
    engine: WorkloadEngine,
    rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
    chaos: ShardChaos,
    fail_per_tick: f64,
    down: BTreeSet<ServerId>,
    dead_instances: BTreeSet<InstanceId>,
    repairs_due: Vec<(SimTime, ServerId)>,
    restart_queue: Vec<(ServiceId, InstanceId)>,
    failed_at: BTreeMap<ServerId, SimTime>,
    kill_times: Vec<SimTime>,
    killed_at: BTreeMap<usize, SimTime>,
    /// Scenario-scheduled correlated kills `(at, server, down_for)`,
    /// ascending, drained as they come due (no RNG draws — composing a
    /// schedule never perturbs the failure dice).
    scheduled_kills: Vec<(SimTime, ServerId, SimDuration)>,
    /// Scenario-scheduled maintenance drains `(from, to, server)`.
    scheduled_drains: Vec<(SimTime, SimTime, ServerId)>,
    /// Servers currently drained (alive but out of rotation), with their
    /// rejoin time.
    draining: BTreeMap<ServerId, SimTime>,
    /// Recovery metrics accumulated so far.
    pub stats: ShardRecoveryStats,
}

impl ShardedRun {
    /// Wire `env` to a `shards`-way control plane built from `supervisor`
    /// config, with `jobs` capping the plane's scoped-thread fan-out.
    ///
    /// # Panics
    /// Panics when `sim` fails validation or `shards` is zero.
    #[deprecated(note = "use RunBuilder::new(..).shards(n).sharded()")]
    pub fn new(
        env: SapEnvironment,
        sim: &SimConfig,
        supervisor: SupervisorConfig,
        shards: usize,
        jobs: usize,
        chaos: ShardChaos,
    ) -> Self {
        Self::assemble(
            env,
            sim,
            supervisor,
            shards,
            jobs,
            chaos,
            None,
            ScenarioSchedule::default(),
        )
    }

    /// The real constructor behind both [`ShardedRun::new`] and
    /// [`crate::RunBuilder::sharded`]: with no modulation and an empty
    /// schedule it is the seed path, bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        env: SapEnvironment,
        sim: &SimConfig,
        supervisor: SupervisorConfig,
        shards: usize,
        jobs: usize,
        chaos: ShardChaos,
        modulation: Option<LoadModulation>,
        schedule: ScenarioSchedule,
    ) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let mut engine = WorkloadEngine::new(&landscape, workloads, sim);
        engine.set_modulation(modulation);
        let metrics = metrics_shell(sim, &landscape);
        let (scheduled_kills, scheduled_drains) = resolve_schedule(&schedule, &landscape);
        let fail_per_tick = chaos.server_failure_per_hour * sim.tick.as_secs() as f64 / 3600.0;
        let kill_times: Vec<SimTime> = chaos
            .kill_fracs
            .iter()
            .map(|f| {
                SimTime::ZERO + SimDuration::from_secs((sim.duration.as_secs() as f64 * f) as u64)
            })
            .collect();
        ShardedRun {
            plane: ShardedControlPlane::new(landscape, shards, supervisor).with_jobs(jobs),
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
            chaos,
            fail_per_tick,
            down: BTreeSet::new(),
            dead_instances: BTreeSet::new(),
            repairs_due: Vec::new(),
            restart_queue: Vec::new(),
            failed_at: BTreeMap::new(),
            kill_times,
            killed_at: BTreeMap::new(),
            scheduled_kills,
            scheduled_drains,
            draining: BTreeMap::new(),
            stats: ShardRecoveryStats::default(),
        }
    }

    /// Choose the plane's [`ReplicationMode`] (builder form; apply before
    /// the first step).
    pub fn with_replication(mut self, mode: ReplicationMode) -> Self {
        self.plane.set_replication(mode);
        self
    }

    /// The plane (to inspect leases, epochs, replicas).
    pub fn plane(&self) -> &ShardedControlPlane {
        &self.plane
    }

    /// Mutable plane access (tests: kill owners directly, drain logs).
    pub fn plane_mut(&mut self) -> &mut ShardedControlPlane {
        &mut self.plane
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload model → measurement broadcast → chaos
    /// injection → heartbeats → plane tick → session mirroring and recovery
    /// accounting.
    pub fn step(&mut self) {
        self.time += self.tick;
        let time = self.time;

        // Workload model against the canonical replica's landscape;
        // instances on failed-but-undetected hosts serve nothing.
        let loads = self.engine.advance(
            self.plane.landscape(),
            &self.dead_instances,
            time,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — a dead box reports nothing. Each entry goes
        // straight into the plane's reused buffer; no per-tick staging
        // vector (test-enforced by the allocation assertions).
        for (server, cpu, mem) in loads.server_entries() {
            if !self.down.contains(&server) {
                self.plane.record_server(server, time, cpu, mem);
            }
        }
        for (service, cpu) in loads.service_entries() {
            self.plane.record_service(service, time, cpu);
        }
        for (instance, cpu) in loads.instance_entries() {
            if !self.dead_instances.contains(&instance) {
                self.plane.record_instance(instance, time, cpu);
            }
        }

        // Due repairs return hosts to the pool on every replica.
        let due: Vec<ServerId> = self
            .repairs_due
            .iter()
            .filter(|(at, _)| *at <= time)
            .map(|&(_, s)| s)
            .collect();
        self.repairs_due.retain(|(at, _)| *at > time);
        for server in due {
            self.down.remove(&server);
            self.failed_at.remove(&server);
            self.plane.report_server_repaired(server, time);
            self.stats.repairs += 1;
        }

        // Scenario-scheduled maintenance drains and correlated kills — a
        // fixed timetable replayed through the plane's public API, drawing
        // nothing from the RNG. Drain ends come first: a host rejoining
        // this tick is back in the pool before any new event resolves.
        let rejoining: Vec<ServerId> = self
            .draining
            .iter()
            .filter(|&(_, &to)| time >= to)
            .map(|(&server, _)| server)
            .collect();
        for server in rejoining {
            self.draining.remove(&server);
            self.plane.report_server_repaired(server, time);
        }
        while let Some(&(from, to, server)) = self.scheduled_drains.first() {
            if time < from {
                break;
            }
            self.scheduled_drains.remove(0);
            if self.down.contains(&server) || !self.plane.landscape().is_available(server) {
                continue;
            }
            let outcome = self.plane.drain_server(server, time);
            self.stats.recovered_instances += outcome.recovered.len();
            self.metrics.recoveries += outcome.recovered.len();
            self.stats.lost_instances += outcome.lost.len();
            for (instance, service) in outcome.lost {
                self.restart_queue.push((service, instance));
            }
            self.draining.insert(server, to);
        }
        while let Some(&(at, server, down_for)) = self.scheduled_kills.first() {
            if time < at {
                break;
            }
            self.scheduled_kills.remove(0);
            if self.down.contains(&server) || !self.plane.landscape().is_available(server) {
                continue;
            }
            self.stats.failures_injected += 1;
            self.metrics.failures += 1;
            self.down.insert(server);
            self.failed_at.insert(server, time);
            self.repairs_due.push((time + down_for, server));
            let residents = self.plane.landscape().instances_on(server);
            for instance in residents {
                let severed = self.engine.sever_sessions(self.plane.landscape(), instance);
                self.stats.lost_sessions += severed;
                self.metrics.lost_sessions += severed;
                self.dead_instances.insert(instance);
            }
            self.plane.set_server_available(server, false);
        }

        // Ground-truth host failures (ascending server ids, one die each —
        // the draw order is pinned so runs reproduce bit for bit).
        if self.fail_per_tick > 0.0 {
            let servers: Vec<ServerId> = self.plane.landscape().server_ids().collect();
            for server in servers {
                if self.down.contains(&server) {
                    continue;
                }
                if self.rng.random_bool(self.fail_per_tick) {
                    self.stats.failures_injected += 1;
                    self.down.insert(server);
                    self.failed_at.insert(server, time);
                    self.repairs_due
                        .push((time + self.chaos.repair_after, server));
                    let residents = self.plane.landscape().instances_on(server);
                    for instance in residents {
                        let severed = self.engine.sever_sessions(self.plane.landscape(), instance);
                        self.stats.lost_sessions += severed;
                        self.metrics.lost_sessions += severed;
                        self.dead_instances.insert(instance);
                    }
                    self.plane.set_server_available(server, false);
                }
            }
        }

        // The kill schedule takes down the lowest live supervisor — the
        // canonical replica itself, the hardest owner to lose.
        while self
            .kill_times
            .first()
            .map(|&at| at <= time)
            .unwrap_or(false)
        {
            self.kill_times.remove(0);
            let victim = self.plane.canonical();
            if self.plane.kill(victim) {
                self.stats.owner_kills += 1;
                self.killed_at.insert(victim, time);
            }
        }

        // Liveness: every healthy host beats its shard owner.
        let servers: Vec<ServerId> = self.plane.landscape().server_ids().collect();
        for server in servers {
            if !self.down.contains(&server) {
                self.plane.beat(Subject::Server(server), time);
            }
        }

        // One plane tick; then mirror and account for what it did.
        let report = self
            .plane
            .tick(time)
            .expect("the harness clock advances monotonically");
        for record in report.executed {
            self.engine
                .note_action(&record.outcome, self.plane.landscape(), time);
            self.metrics.actions.push(record);
        }
        for rec in report.recoveries {
            if let Subject::Server(server) = rec.subject {
                if let Some(at) = self.failed_at.remove(&server) {
                    self.stats.detections += 1;
                    self.stats.detection_secs += time.since(at).as_secs();
                    self.metrics.detections += 1;
                    self.metrics.detection_latency_secs += time.since(at).as_secs();
                    self.metrics.recovery_time_secs +=
                        time.since(at).as_secs() * rec.outcome.recovered.len() as u64;
                }
            }
            self.stats.recovered_instances += rec.outcome.recovered.len();
            self.metrics.recoveries += rec.outcome.recovered.len();
            self.stats.lost_instances += rec.outcome.lost.len();
            for &(instance, service) in &rec.outcome.lost {
                self.restart_queue.push((service, instance));
            }
        }
        for event in report.events {
            match event {
                PlaneEvent::OwnerConfirmed {
                    supervisor,
                    time: at,
                } => {
                    if let Some(&killed) = self.killed_at.get(&supervisor) {
                        self.stats.owner_detections += 1;
                        self.stats.owner_detection_secs += at.since(killed).as_secs();
                    }
                }
                PlaneEvent::ShardReadopted { from, time: at, .. } => {
                    self.stats.readoptions += 1;
                    if let Some(&killed) = self.killed_at.get(&from) {
                        self.stats.readoption_secs += at.since(killed).as_secs();
                    }
                }
                _ => {}
            }
        }
        self.stats.fenced_ops += report.fenced;
        self.stats.dropped_triggers += report.dropped_triggers;

        // Lost instances retry once capacity may have returned.
        for (service, instance) in std::mem::take(&mut self.restart_queue) {
            if self.plane.retry_restart(service, instance, time).is_some() {
                self.stats.retried_restarts += 1;
            } else {
                self.restart_queue.push((service, instance));
            }
        }

        // Dead instances that recovery replaced are gone from the
        // landscape; stop tracking them.
        let landscape = self.plane.landscape();
        self.dead_instances
            .retain(|&i| landscape.instance(i).is_ok());

        for event in self.plane.drain_controller_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }
    }

    /// Run to completion; returns the workload metrics and the recovery
    /// stats.
    pub fn run(mut self) -> (Metrics, ShardRecoveryStats) {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        (self.metrics, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RunBuilder;
    use autoglobe_controller::ExecutorConfig;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};
    use autoglobe_simulator::Scenario;

    fn fig13_config(hours: u64) -> SimConfig {
        SimConfig::paper(Scenario::ConstrainedMobility, 1.15)
            .with_duration(SimDuration::from_hours(hours))
    }

    /// A printable fingerprint of a landscape's observable state, for
    /// replica-lockstep assertions (the type has no `PartialEq`).
    fn landscape_digest(l: &Landscape) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for server in l.server_ids() {
            writeln!(out, "server {} avail={}", server, l.is_available(server)).unwrap();
        }
        for inst in l.instances() {
            writeln!(
                out,
                "instance {} service={} server={} ip={}",
                inst.id, inst.service, inst.server, inst.ip
            )
            .unwrap();
        }
        out
    }

    #[test]
    fn one_shard_reproduces_the_supervised_run_bit_for_bit() {
        let hours = 12;
        let sim = fig13_config(hours);
        let reference = RunBuilder::new(Scenario::ConstrainedMobility)
            .sim(sim.clone())
            .supervised()
            .run();
        // Both replication modes must reproduce the unsharded run: delta is
        // the default, full is the reference path — pinned twins.
        for mode in [ReplicationMode::Delta, ReplicationMode::Full] {
            let (sharded, stats) = RunBuilder::new(Scenario::ConstrainedMobility)
                .sim(sim.clone())
                .replication(mode)
                .sharded()
                .run();
            assert_eq!(reference.actions, sharded.actions, "{mode:?}");
            assert_eq!(reference.alerts, sharded.alerts, "{mode:?}");
            assert_eq!(reference.overload_secs, sharded.overload_secs, "{mode:?}");
            assert_eq!(
                reference.total_demand.to_bits(),
                sharded.total_demand.to_bits(),
                "{mode:?}"
            );
            assert_eq!(
                stats,
                ShardRecoveryStats::default(),
                "no chaos, no recovery ({mode:?})"
            );
        }
    }

    #[test]
    fn delta_and_full_replication_agree_bit_for_bit_under_chaos() {
        // The tentpole contract: owner-scoped ingestion with compact delta
        // replication produces the same actions, workload metrics and
        // recovery statistics as full state machine replication — through
        // owner kills, epoch changes and monitoring rebuilds.
        let sim = fig13_config(16);
        let run = |mode: ReplicationMode| {
            let executor = ExecutorConfig {
                min_latency: SimDuration::from_minutes(2),
                max_latency: SimDuration::from_minutes(8),
                timeout: SimDuration::from_minutes(6),
                failure_probability: 0.1,
                ..ExecutorConfig::reliable()
            };
            let sup = SupervisorConfig {
                controller: sim.controller,
                executor,
                executor_seed: 99,
                ..SupervisorConfig::default()
            };
            let chaos = ShardChaos {
                server_failure_per_hour: 0.05,
                repair_after: SimDuration::from_hours(1),
                kill_fracs: vec![0.4, 0.7],
            };
            RunBuilder::new(Scenario::ConstrainedMobility)
                .sim(sim.clone())
                .supervisor(sup)
                .shards(4)
                .plane_jobs(2)
                .shard_chaos(chaos)
                .replication(mode)
                .sharded()
                .run()
        };
        let (full, full_stats) = run(ReplicationMode::Full);
        let (delta, delta_stats) = run(ReplicationMode::Delta);
        assert_eq!(full.actions, delta.actions);
        assert_eq!(full.alerts, delta.alerts);
        assert_eq!(full.overload_secs, delta.overload_secs);
        assert_eq!(full.total_demand.to_bits(), delta.total_demand.to_bits());
        assert_eq!(full_stats, delta_stats);
    }

    #[test]
    fn plane_buffers_are_reused_and_delta_ingests_each_measurement_once() {
        let minute = SimDuration::from_minutes(1);
        // Delta (the default): one supervisor-side ingestion per
        // measurement across the whole plane, and the measurement buffer
        // settles at its first-tick capacity — drained in place, never
        // handed off or reallocated.
        let (mut plane, servers) = tiny_plane(2, ExecutorConfig::reliable());
        let mut t = SimTime::ZERO;
        let mut cap = None;
        for tick in 0..120 {
            t += minute;
            for &s in &servers {
                plane.record_server(s, t, 0.3, 0.3);
                plane.beat(Subject::Server(s), t);
            }
            plane.tick(t).unwrap();
            if tick == 0 {
                cap = Some(plane.measurement_buffer_capacity());
            }
        }
        assert_eq!(
            Some(plane.measurement_buffer_capacity()),
            cap,
            "the measurement buffer must be reused, not reallocated per tick"
        );
        let stats = plane.ingest_stats();
        assert_eq!(stats.buffered, 120 * servers.len() as u64);
        assert_eq!(
            stats.ingested, stats.buffered,
            "delta routes each measurement to exactly one owner"
        );

        // Full replication ingests the stream on every live replica.
        let (plane, servers) = tiny_plane(2, ExecutorConfig::reliable());
        let mut plane = plane.with_replication(ReplicationMode::Full);
        let mut t = SimTime::ZERO;
        for _ in 0..10 {
            t += minute;
            for &s in &servers {
                plane.record_server(s, t, 0.3, 0.3);
                plane.beat(Subject::Server(s), t);
            }
            plane.tick(t).unwrap();
        }
        let stats = plane.ingest_stats();
        assert_eq!(stats.buffered, 10 * servers.len() as u64);
        assert_eq!(stats.ingested, stats.buffered * 2);
    }

    #[test]
    fn shard_count_is_invisible_to_paper_scenarios() {
        let hours = 12;
        let sim = fig13_config(hours);
        let run = |shards: usize, jobs: usize| {
            RunBuilder::new(Scenario::ConstrainedMobility)
                .sim(sim.clone())
                .shards(shards)
                .plane_jobs(jobs)
                .sharded()
                .run()
        };
        let (one, _) = run(1, 1);
        let (four, _) = run(4, 2);
        assert_eq!(one.actions, four.actions);
        assert_eq!(one.alerts, four.alerts);
        assert_eq!(one.overload_secs, four.overload_secs);
        assert_eq!(one.total_demand.to_bits(), four.total_demand.to_bits());
    }

    /// A tiny landscape the plane tests drive by hand.
    fn tiny_plane(shards: usize, executor: ExecutorConfig) -> (ShardedControlPlane, Vec<ServerId>) {
        let mut landscape = Landscape::new();
        let servers: Vec<ServerId> = (0..6)
            .map(|i| {
                landscape
                    .add_server(ServerSpec::fsc_bx300(format!("srv{i}")))
                    .unwrap()
            })
            .collect();
        let fi = landscape
            .add_service(
                ServiceSpec::new("FI", ServiceKind::ApplicationServer).with_instances(1, Some(6)),
            )
            .unwrap();
        landscape.start_instance(fi, servers[0]).unwrap();
        let config = SupervisorConfig {
            executor,
            executor_seed: 7,
            ..SupervisorConfig::default()
        };
        (ShardedControlPlane::new(landscape, shards, config), servers)
    }

    #[test]
    fn killed_owner_is_confirmed_and_its_shards_readopted_under_a_new_epoch() {
        let (mut plane, servers) = tiny_plane(3, ExecutorConfig::reliable());
        let minute = SimDuration::from_minutes(1);
        let mut t = SimTime::ZERO;

        // A couple of healthy ticks so everything is enrolled.
        for _ in 0..2 {
            t += minute;
            for &s in &servers {
                plane.beat(Subject::Server(s), t);
            }
            plane.tick(t).unwrap();
        }
        let victim = plane.canonical();
        let orphaned: Vec<ShardId> = (0..plane.shards())
            .filter(|&s| plane.lease(s).owner == victim)
            .collect();
        assert!(!orphaned.is_empty());
        assert!(plane.kill(victim));
        assert!(!plane.is_alive(victim));
        let successor_expected = plane.canonical();
        assert_ne!(victim, successor_expected);

        // Default protocol: 3 misses to suspect + 2 to confirm.
        let mut confirmed = false;
        let mut readopted = 0;
        for _ in 0..6 {
            t += minute;
            for &s in &servers {
                plane.beat(Subject::Server(s), t);
            }
            let report = plane.tick(t).unwrap();
            for event in report.events {
                match event {
                    PlaneEvent::OwnerConfirmed { supervisor, .. } => {
                        assert_eq!(supervisor, victim);
                        confirmed = true;
                    }
                    PlaneEvent::ShardReadopted {
                        shard,
                        from,
                        to,
                        epoch,
                        ..
                    } => {
                        assert_eq!(from, victim);
                        assert_eq!(to, successor_expected);
                        assert_eq!(epoch, 1);
                        assert!(orphaned.contains(&shard));
                        readopted += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(confirmed, "the plane must confirm the killed owner");
        assert_eq!(readopted, orphaned.len(), "every orphaned shard re-adopts");
        assert_eq!(plane.epoch(), 1);
        for shard in orphaned {
            assert_eq!(
                plane.lease(shard),
                Lease {
                    owner: successor_expected,
                    epoch: 1
                }
            );
        }
        // Killing everyone but the last is allowed; the last is refused.
        let mut live: Vec<usize> = (0..3).filter(|&i| plane.is_alive(i)).collect();
        while live.len() > 1 {
            assert!(plane.kill(live[0]));
            live.remove(0);
        }
        assert!(!plane.kill(live[0]), "the last live supervisor is immortal");
    }

    #[test]
    fn subject_failures_during_the_headless_window_are_detected_by_the_successor() {
        let (mut plane, servers) = tiny_plane(2, ExecutorConfig::reliable());
        let minute = SimDuration::from_minutes(1);
        let mut t = SimTime::ZERO;
        for _ in 0..2 {
            t += minute;
            for &s in &servers {
                plane.beat(Subject::Server(s), t);
            }
            plane.tick(t).unwrap();
        }
        // Pick a server owned by the canonical replica, then kill that
        // replica AND the server in the same breath: its silence must be
        // confirmed by the successor after watch adoption.
        let victim = plane.canonical();
        let dying = *servers
            .iter()
            .find(|&&s| {
                plane
                    .lease(plane.shard_of_subject(Subject::Server(s)).unwrap())
                    .owner
                    == victim
            })
            .expect("the canonical replica owns at least one beated server");
        assert!(plane.kill(victim));
        plane.set_server_available(dying, false);

        let mut server_confirmed_at = None;
        for _ in 0..14 {
            t += minute;
            for &s in &servers {
                if s != dying {
                    plane.beat(Subject::Server(s), t);
                }
            }
            let report = plane.tick(t).unwrap();
            for rec in report.recoveries {
                if rec.subject == Subject::Server(dying) {
                    server_confirmed_at = Some(rec.time);
                }
            }
        }
        assert!(
            server_confirmed_at.is_some(),
            "the successor must confirm the server that died while its shard was headless"
        );
        // All live replicas agree on the resulting landscape.
        let canonical = landscape_digest(plane.landscape());
        for i in 0..plane.shards() {
            if plane.is_alive(i) {
                assert_eq!(
                    canonical,
                    landscape_digest(plane.supervisor(i).landscape()),
                    "replica {i} diverged"
                );
            }
        }
    }

    #[test]
    fn no_action_is_applied_twice_across_an_epoch_change() {
        // A latent, fallible substrate so owners carry in-flight work when
        // they are killed — the fencing path must discard it exactly once
        // and never complete it.
        let executor = ExecutorConfig {
            min_latency: SimDuration::from_minutes(2),
            max_latency: SimDuration::from_minutes(8),
            timeout: SimDuration::from_minutes(6),
            failure_probability: 0.1,
            ..ExecutorConfig::reliable()
        };
        let sim = fig13_config(16);
        let sup = SupervisorConfig {
            controller: sim.controller,
            executor,
            executor_seed: 99,
            ..SupervisorConfig::default()
        };
        let chaos = ShardChaos {
            server_failure_per_hour: 0.05,
            repair_after: SimDuration::from_hours(1),
            kill_fracs: vec![0.4, 0.7],
        };
        let mut run = RunBuilder::new(Scenario::ConstrainedMobility)
            .sim(sim)
            .supervisor(sup)
            .shards(4)
            .plane_jobs(2)
            .shard_chaos(chaos)
            .sharded();
        let ticks = 16 * 60; // one-minute ticks
        for _ in 0..ticks {
            run.step();
        }
        assert!(run.stats.owner_kills >= 1, "the schedule must kill owners");
        assert!(run.stats.owner_detections >= 1, "kills must be confirmed");
        assert!(run.stats.readoptions >= 1, "shards must be re-adopted");

        // Audit every replica's execution log: a dispatch id completes at
        // most once, and never both completes and gets fenced.
        let mut completed: BTreeSet<(usize, u64)> = BTreeSet::new();
        let mut fenced: BTreeSet<(usize, u64)> = BTreeSet::new();
        for (replica, event) in run.plane_mut().drain_all_execution_events() {
            match event {
                ExecutionEvent::Completed { id, .. } => {
                    assert!(
                        completed.insert((replica, id)),
                        "op {id} on replica {replica} completed twice"
                    );
                }
                ExecutionEvent::FencedStaleEpoch { id, .. } => {
                    fenced.insert((replica, id));
                }
                _ => {}
            }
        }
        for key in &fenced {
            assert!(
                !completed.contains(key),
                "op {key:?} was both fenced and applied — a ghost move"
            );
        }

        // And the live replicas' landscapes are still in lockstep.
        let canonical = landscape_digest(run.plane().landscape());
        for i in 0..run.plane().shards() {
            if run.plane().is_alive(i) {
                assert_eq!(
                    canonical,
                    landscape_digest(run.plane().supervisor(i).landscape()),
                    "replica {i} diverged"
                );
            }
        }
    }
}
