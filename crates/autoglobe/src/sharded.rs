//! The sharded, self-healing control plane: N [`Supervisor`] replicas, a
//! lease table with epoch fencing, and deterministic failover.
//!
//! # Model
//!
//! The landscape is partitioned into `shards` by the explicit, deterministic
//! [`ShardMap`] (hash-by-id, see `autoglobe-landscape`). Each shard has an
//! *owner*: one of N supervisor replicas, recorded in a [`Lease`] carrying a
//! monotonically increasing epoch. Every replica receives **all**
//! measurements and applies them to its own full copy of the landscape —
//! state machine replication, not state partitioning — so each replica's
//! monitoring derives the identical confirmed-trigger stream. The plane
//! takes that stream from the lowest live replica (the *canonical* one) and
//! brokers each dispatch through the lease table: only the shard's current
//! lease holder plans and executes the trigger, stamped with the lease
//! epoch, and every resulting [`ActionRecord`] is replayed onto the other
//! replicas ([`Supervisor::apply_remote`]) to keep them in lockstep.
//!
//! # Failure of a shard owner
//!
//! Supervisors heartbeat each other through the existing
//! [`HeartbeatMonitor`]: every plane tick each live supervisor beats a
//! plane-private monitor, and a supervisor that falls silent goes through
//! the same suspect → confirm protocol as any watched server. When an owner
//! is *confirmed* dead:
//!
//! 1. the global epoch increments, and every shard the dead supervisor
//!    owned is re-adopted by the deterministic successor — the lowest live
//!    supervisor id — under a fresh [`Lease`] at the new epoch;
//! 2. the dead owner's execution substrate is fenced below the new epoch
//!    ([`Supervisor::fence_stale_epochs`]): its in-flight actions are
//!    discarded as [`ExecutionEvent::FencedStaleEpoch`], and even a
//!    *revived* old owner that later tries to settle work finds every
//!    operation stamped with a stale epoch refused at poll time — no ghost
//!    moves;
//! 3. the successor watch-adopts every subject of the shard that has ever
//!    heartbeated the plane, so a server that was already silent when the
//!    old owner died still accrues misses with the new owner and its
//!    failure is confirmed after the usual detection window.
//!
//! Triggers for a shard whose lease still points at a dead-but-unconfirmed
//! owner are dropped (and counted): the shard is headless for the detection
//! window, and monitoring re-raises the trigger once a live owner holds the
//! lease — the paper's watch-time confirmation makes the re-raise cheap.
//!
//! With `shards = 1` the plane is a single supervisor driven through the
//! same code path, bit-identical to [`SupervisedRun`](crate::harness)
//! (test-enforced); at any shard count the paper scenarios (reliable
//! executor, no failures) produce byte-identical results because planning
//! is deterministic over replicated state.

use crate::supervisor::{PendingTrigger, RecoveryRecord, Supervisor, SupervisorConfig};
use autoglobe_controller::{ActionRecord, ControllerEvent, ExecutionEvent};
use autoglobe_landscape::{InstanceId, Landscape, ServerId, ServiceId, ShardId, ShardMap};
use autoglobe_monitor::{
    HeartbeatConfig, HeartbeatEvent, HeartbeatMonitor, SimDuration, SimTime, Subject,
};
use autoglobe_pool as pool;
use autoglobe_rng::{splitmix64, Rng};
use autoglobe_simulator::sap::SapEnvironment;
use autoglobe_simulator::{Metrics, SimConfig, WorkloadEngine};
use std::collections::{BTreeMap, BTreeSet};

use crate::supervisor::SupervisorError;

/// Seed domain separating the derived executor streams of secondary
/// replicas from the primary's configured seed.
const REPLICA_SEED_DOMAIN: u64 = 0x5EED_5A4D_0003;

/// A shard ownership lease: who may act for the shard, and under which
/// coordination epoch. Epochs only ever increase; an action stamped with an
/// older epoch than the shard's current lease is stale by definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// Index of the supervisor replica holding the lease.
    pub owner: usize,
    /// The epoch the lease was issued under.
    pub epoch: u64,
}

/// Coordination-layer events: owner liveness transitions and shard
/// re-adoptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaneEvent {
    /// A shard owner missed enough plane heartbeats to be suspected.
    OwnerSuspected {
        /// The silent supervisor's index.
        supervisor: usize,
        /// When the suspicion was raised.
        time: SimTime,
    },
    /// A shard owner's silence survived the confirmation window; its leases
    /// are revoked and its shards re-adopted.
    OwnerConfirmed {
        /// The confirmed-dead supervisor's index.
        supervisor: usize,
        /// When the failure was confirmed.
        time: SimTime,
    },
    /// A shard moved to its deterministic successor under a fresh epoch.
    ShardReadopted {
        /// The re-adopted shard.
        shard: ShardId,
        /// The dead previous owner.
        from: usize,
        /// The successor (lowest live supervisor index).
        to: usize,
        /// The new lease epoch.
        epoch: u64,
        /// When the re-adoption happened.
        time: SimTime,
    },
    /// A confirmed trigger addressed a shard whose lease still points at a
    /// dead-but-unconfirmed owner; it was dropped and will be re-raised by
    /// monitoring once the shard has a live owner.
    TriggerDropped {
        /// The headless shard.
        shard: ShardId,
        /// The trigger's subject.
        subject: Subject,
        /// When the trigger was dropped.
        time: SimTime,
    },
}

/// One supervisor replica plus its plane-side bookkeeping.
#[derive(Debug)]
struct ShardWorker {
    supervisor: Supervisor,
    alive: bool,
    inbox_beats: Vec<(Subject, SimTime)>,
    scratch_triggers: Vec<PendingTrigger>,
}

/// Everything one [`ShardedControlPlane::tick`] produced.
#[derive(Debug, Default)]
pub struct PlaneTickReport {
    /// Actions completed this tick, in canonical dispatch order (already
    /// applied to every live replica).
    pub executed: Vec<ActionRecord>,
    /// Coordination events (suspicions, confirmations, re-adoptions,
    /// dropped triggers).
    pub events: Vec<PlaneEvent>,
    /// Self-healing outcomes of subject failures confirmed by shard owners
    /// this tick (already replayed onto every live replica).
    pub recoveries: Vec<RecoveryRecord>,
    /// In-flight operations of deposed owners fenced this tick.
    pub fenced: usize,
    /// Triggers dropped because their shard was headless.
    pub dropped_triggers: usize,
}

/// The sharded control plane (see the module docs for the model).
#[derive(Debug)]
pub struct ShardedControlPlane {
    workers: Vec<ShardWorker>,
    map: ShardMap,
    leases: Vec<Lease>,
    epoch: u64,
    /// Plane-private liveness monitor; supervisor `i` appears as
    /// `Subject::Server(ServerId::new(i))` (the ids are unrelated to the
    /// landscape's servers — this monitor watches supervisors).
    liveness: HeartbeatMonitor,
    /// Every subject that has ever heartbeated through the plane, so a
    /// successor knows what to watch-adopt.
    beated: BTreeSet<Subject>,
    /// Measurements buffered since the last tick, in arrival order; every
    /// live replica applies the full stream at the next tick.
    measurements: Vec<(Subject, SimTime, f64, f64)>,
    /// The authoritative controller-event stream (one copy per event, in
    /// plane order — replica replays are drained and discarded).
    controller_events: Vec<ControllerEvent>,
    jobs: usize,
    last_now: Option<SimTime>,
}

impl ShardedControlPlane {
    /// Shard `landscape` into `shards` partitions, each owned by its own
    /// supervisor replica built from `config`. Replica 0 keeps
    /// `config.executor_seed`; the others derive disjoint executor streams
    /// via splitmix64, so a fallible substrate stays deterministic per
    /// replica without the streams colliding.
    ///
    /// # Panics
    /// Panics when `shards` is zero or `config` fails validation.
    pub fn new(landscape: Landscape, shards: usize, config: SupervisorConfig) -> Self {
        let map = ShardMap::new(&landscape, shards);
        let workers: Vec<ShardWorker> = (0..shards)
            .map(|i| {
                let mut worker_config = config.clone();
                if i > 0 {
                    let mut state = config.executor_seed ^ REPLICA_SEED_DOMAIN ^ (i as u64);
                    worker_config.executor_seed = splitmix64(&mut state);
                }
                ShardWorker {
                    supervisor: Supervisor::with_config(landscape.clone(), worker_config),
                    alive: true,
                    inbox_beats: Vec::new(),
                    scratch_triggers: Vec::new(),
                }
            })
            .collect();
        let mut liveness = HeartbeatMonitor::new(HeartbeatConfig::default());
        for i in 0..shards {
            liveness.watch(Subject::Server(ServerId::new(i as u32)));
        }
        ShardedControlPlane {
            workers,
            leases: (0..shards).map(|i| Lease { owner: i, epoch: 0 }).collect(),
            map,
            epoch: 0,
            liveness,
            beated: BTreeSet::new(),
            measurements: Vec::new(),
            controller_events: Vec::new(),
            jobs: shards,
            last_now: None,
        }
    }

    /// Cap the scoped-thread fan-out of the per-replica interval close.
    /// Output-neutral: replicas are independent, so any width produces
    /// bit-identical results (CI-enforced).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Number of shards (== number of supervisor replicas).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The current global coordination epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The lease currently covering `shard`.
    pub fn lease(&self, shard: ShardId) -> Lease {
        self.leases[shard]
    }

    /// Whether supervisor `i` is live.
    pub fn is_alive(&self, i: usize) -> bool {
        self.workers.get(i).map(|w| w.alive).unwrap_or(false)
    }

    /// Index of the canonical replica: the lowest live supervisor. Its
    /// trigger stream is the global one (all replicas derive identical
    /// streams), and it is the deterministic successor for orphaned shards.
    pub fn canonical(&self) -> usize {
        self.workers
            .iter()
            .position(|w| w.alive)
            .expect("at least one supervisor is always live")
    }

    /// The canonical replica's landscape (all live replicas are identical).
    pub fn landscape(&self) -> &Landscape {
        self.workers[self.canonical()].supervisor.landscape()
    }

    /// Direct access to replica `i`'s supervisor (inspection / tests).
    pub fn supervisor(&self, i: usize) -> &Supervisor {
        &self.workers[i].supervisor
    }

    /// Kill supervisor `i` (crash-stop: it stops heartbeating the plane and
    /// is excluded from all future work). Its leases stay in place until
    /// the plane *confirms* the death — that window is exactly the
    /// detection latency the shardchaos experiment measures. Refuses to
    /// kill the last live supervisor (the plane would be headless forever)
    /// and returns whether the kill took effect.
    pub fn kill(&mut self, i: usize) -> bool {
        let live = self.workers.iter().filter(|w| w.alive).count();
        match self.workers.get_mut(i) {
            Some(w) if w.alive && live > 1 => {
                w.alive = false;
                w.inbox_beats.clear();
                true
            }
            _ => false,
        }
    }

    /// Buffer a server measurement for every live replica.
    pub fn record_server(&mut self, server: ServerId, time: SimTime, cpu: f64, mem: f64) {
        self.measurements
            .push((Subject::Server(server), time, cpu, mem));
    }

    /// Buffer a service measurement for every live replica.
    pub fn record_service(&mut self, service: ServiceId, time: SimTime, cpu: f64) {
        self.measurements
            .push((Subject::Service(service), time, cpu, 0.0));
    }

    /// Buffer an instance measurement for every live replica.
    pub fn record_instance(&mut self, instance: InstanceId, time: SimTime, cpu: f64) {
        self.measurements
            .push((Subject::Instance(instance), time, cpu, 0.0));
    }

    /// Route a liveness signal to the owner of the subject's shard. A beat
    /// whose owner is dead-but-unconfirmed is lost — exactly like a
    /// heartbeat sent to a crashed coordinator — until the shard's
    /// successor adopts the watch. Returns false for a subject the
    /// landscape does not know (the beat is fenced).
    pub fn beat(&mut self, subject: Subject, now: SimTime) -> bool {
        let Some(shard) = self.shard_of_subject(subject) else {
            return false;
        };
        self.beated.insert(subject);
        let owner = self.leases[shard].owner;
        if self.workers[owner].alive {
            self.workers[owner].inbox_beats.push((subject, now));
        }
        true
    }

    /// The shard responsible for `subject`. Instances belong to their host
    /// server's shard; `None` when the subject has left the landscape.
    pub fn shard_of_subject(&self, subject: Subject) -> Option<ShardId> {
        let landscape = self.landscape();
        match subject {
            Subject::Server(s) => landscape.server(s).ok().map(|_| self.map.shard_of(s)),
            Subject::Service(s) => landscape
                .service(s)
                .ok()
                .map(|_| self.map.shard_of_service(s)),
            Subject::Instance(i) => landscape
                .instance(i)
                .ok()
                .map(|inst| self.map.shard_of(inst.server)),
        }
    }

    /// Mark a server (un)available on every live replica — the harness's
    /// failure-injection hook, mirroring the simulator's oracle.
    pub fn set_server_available(&mut self, server: ServerId, available: bool) {
        for w in self.workers.iter_mut().filter(|w| w.alive) {
            w.supervisor
                .landscape_mut()
                .set_available(server, available)
                .expect("replicas agree on the server set");
        }
    }

    /// Broadcast a repair to every live replica; the canonical replica's
    /// `Repaired` event (if any) is kept as the authoritative copy.
    pub fn report_server_repaired(&mut self, server: ServerId, now: SimTime) -> bool {
        let canonical = self.canonical();
        let mut repaired = false;
        for i in 0..self.workers.len() {
            if !self.workers[i].alive {
                continue;
            }
            let outcome = self.workers[i]
                .supervisor
                .report_server_repaired(server, now)
                .expect("replicas agree on the server set");
            let events = self.workers[i].supervisor.drain_events();
            if i == canonical {
                repaired = outcome.is_some();
                self.controller_events.extend(events);
            }
        }
        repaired
    }

    /// Broadcast a restart retry for a lost instance to every live replica
    /// (deterministic planning over identical state picks the same host on
    /// each). Returns the canonical replica's result.
    pub fn retry_restart(
        &mut self,
        service: ServiceId,
        old_instance: InstanceId,
        now: SimTime,
    ) -> Option<(InstanceId, ServerId)> {
        let canonical = self.canonical();
        let mut result = None;
        for i in 0..self.workers.len() {
            if !self.workers[i].alive {
                continue;
            }
            let outcome = self.workers[i]
                .supervisor
                .retry_restart(service, old_instance, now);
            let events = self.workers[i].supervisor.drain_events();
            if i == canonical {
                result = outcome;
                self.controller_events.extend(events);
            } else {
                debug_assert_eq!(outcome, result, "replicas diverged on a restart retry");
            }
        }
        result
    }

    /// Drain the authoritative controller-event stream (owner-side planning
    /// and failure events, one copy each, in plane order).
    pub fn drain_controller_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.controller_events)
    }

    /// Drain every replica's execution-substrate log, dead replicas
    /// included, tagged with the replica index — the fencing property tests
    /// audit this for double applies.
    pub fn drain_all_execution_events(&mut self) -> Vec<(usize, ExecutionEvent)> {
        let mut out = Vec::new();
        for (i, w) in self.workers.iter_mut().enumerate() {
            for event in w.supervisor.drain_execution_events() {
                out.push((i, event));
            }
        }
        out
    }

    fn advance_clock(&mut self, now: SimTime) -> Result<(), SupervisorError> {
        if let Some(last) = self.last_now {
            if now < last {
                return Err(SupervisorError::NonMonotonicTime { now, last });
            }
        }
        self.last_now = Some(now);
        Ok(())
    }

    /// Indices of the live replicas, ascending.
    fn live(&self) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].alive)
            .collect()
    }

    /// Apply `record` to every live replica except `source`.
    fn replicate(&mut self, record: &ActionRecord, source: usize) {
        for i in 0..self.workers.len() {
            if i != source && self.workers[i].alive {
                self.workers[i]
                    .supervisor
                    .apply_remote(record)
                    .expect("replicas apply owner-executed actions in lockstep");
            }
        }
    }

    /// One plane tick (see the module docs): owner liveness + succession,
    /// the parallel per-replica interval close, settle/recovery
    /// replication, and the canonical trigger stream brokered through the
    /// lease table.
    pub fn tick(&mut self, now: SimTime) -> Result<PlaneTickReport, SupervisorError> {
        self.advance_clock(now)?;
        let mut report = PlaneTickReport::default();

        // ---- 1. Supervisor liveness: every live replica beats the plane
        // monitor; confirmed silence triggers deterministic succession.
        for i in 0..self.workers.len() {
            if self.workers[i].alive {
                self.liveness
                    .beat(Subject::Server(ServerId::new(i as u32)), now);
            }
        }
        for event in self.liveness.tick(now) {
            let (subject, time) = (event.subject(), event.time());
            let Subject::Server(id) = subject else {
                continue;
            };
            let supervisor = id.index();
            match event {
                HeartbeatEvent::Suspected { .. } => {
                    report
                        .events
                        .push(PlaneEvent::OwnerSuspected { supervisor, time });
                }
                HeartbeatEvent::Confirmed { .. } => {
                    report
                        .events
                        .push(PlaneEvent::OwnerConfirmed { supervisor, time });
                    report.fenced += self.succeed(supervisor, now, &mut report.events);
                }
                HeartbeatEvent::Reconciled { .. } => {}
            }
        }

        // ---- 2. Parallel measurement fan-in: every live replica applies
        // the full buffered measurement stream and its routed beats.
        // Replicas are independent here, so any fan-out width produces
        // identical results.
        let measurements = std::mem::take(&mut self.measurements);
        pool::parallel_chunks_mut(self.jobs, &mut self.workers, |_, chunk| {
            for w in chunk.iter_mut().filter(|w| w.alive) {
                for &(subject, time, cpu, mem) in &measurements {
                    match subject {
                        Subject::Server(s) => w.supervisor.record_server(s, time, cpu, mem),
                        Subject::Service(s) => w.supervisor.record_service(s, time, cpu),
                        Subject::Instance(i) => w.supervisor.record_instance(i, time, cpu),
                    }
                }
                for (subject, time) in std::mem::take(&mut w.inbox_beats) {
                    w.supervisor
                        .beat(subject, time)
                        .expect("the plane routes monotonic beats");
                }
            }
        });

        // ---- 3/4. Sequential interval close, ascending replica order:
        // close replica i's monitoring interval (which settles its earlier
        // dispatches and runs its heartbeat self-healing), then immediately
        // replicate those mutations — settled actions via `apply_remote`,
        // confirmed failures via `replay_failure` — to every other live
        // replica before the next replica closes its own interval. The
        // strict order matters for more than tidiness: landscape mutations
        // allocate instance ids sequentially, so all replicas must apply
        // the same tick's mutations in one global order. Were each owner
        // to close in parallel, two owners mutating in the same tick would
        // each apply their own mutation first and the other's second,
        // swapping the allocation order and forking the replicas' id
        // spaces.
        let live = self.live();
        for &i in &live {
            let (completed, triggers) = self.workers[i]
                .supervisor
                .tick_collect(now)
                .expect("the plane clock is monotonic");
            self.workers[i].scratch_triggers = triggers;
            for record in completed {
                self.replicate(&record, i);
                report.executed.push(record);
            }
            let events = self.workers[i].supervisor.drain_events();
            self.controller_events.extend(events);
            // Replay owner-confirmed subject failures on the other replicas
            // (deterministic recovery over identical state), draining and
            // discarding the replicas' duplicate event copies.
            for rec in self.workers[i].supervisor.drain_recoveries() {
                for &j in &live {
                    if j != i {
                        self.workers[j]
                            .supervisor
                            .replay_failure(rec.subject, rec.time);
                        self.workers[j].supervisor.drain_recoveries();
                        self.workers[j].supervisor.drain_events();
                    }
                }
                report.recoveries.push(rec);
            }
        }

        // ---- 5. The canonical trigger stream, brokered through the lease
        // table: the owner stamps the lease epoch, plans, dispatches; every
        // completion is replicated. Headless shards drop (and count) their
        // triggers — monitoring re-raises them under the next owner.
        let canonical = self.canonical();
        let triggers = std::mem::take(&mut self.workers[canonical].scratch_triggers);
        for &i in &live {
            self.workers[i].scratch_triggers.clear();
        }
        for trigger in triggers {
            let Some(shard) = self.shard_of_subject(trigger.event.subject) else {
                continue;
            };
            let lease = self.leases[shard];
            if !self.workers[lease.owner].alive {
                report.dropped_triggers += 1;
                report.events.push(PlaneEvent::TriggerDropped {
                    shard,
                    subject: trigger.event.subject,
                    time: now,
                });
                continue;
            }
            let owner = lease.owner;
            self.workers[owner]
                .supervisor
                .set_execution_epoch(lease.epoch);
            let records = self.workers[owner]
                .supervisor
                .dispatch_trigger(trigger, now)
                .expect("the plane clock is monotonic");
            for record in records {
                self.replicate(&record, owner);
                report.executed.push(record);
            }
            let events = self.workers[owner].supervisor.drain_events();
            self.controller_events.extend(events);
        }

        Ok(report)
    }

    /// Settle in-flight operations on every live replica's substrate and
    /// replicate whatever completed (only shard owners ever have in-flight
    /// work). Returns the completed actions in ascending-replica order.
    pub fn poll(&mut self, now: SimTime) -> Result<Vec<ActionRecord>, SupervisorError> {
        self.advance_clock(now)?;
        let mut executed = Vec::new();
        for i in self.live() {
            let records = self.workers[i]
                .supervisor
                .poll(now)
                .expect("the plane clock is monotonic");
            for record in records {
                self.replicate(&record, i);
                executed.push(record);
            }
            let events = self.workers[i].supervisor.drain_events();
            self.controller_events.extend(events);
        }
        Ok(executed)
    }

    /// Deterministic succession for a confirmed-dead supervisor: bump the
    /// global epoch, move every lease it held to the lowest live replica,
    /// watch-adopt the shard's heartbeating subjects, and fence the dead
    /// owner's in-flight work below the new epoch. Returns the number of
    /// fenced operations.
    fn succeed(&mut self, dead: usize, now: SimTime, events: &mut Vec<PlaneEvent>) -> usize {
        let orphaned: Vec<ShardId> = (0..self.leases.len())
            .filter(|&s| self.leases[s].owner == dead)
            .collect();
        if orphaned.is_empty() {
            return 0;
        }
        self.epoch += 1;
        let successor = self.canonical();
        for &shard in &orphaned {
            self.leases[shard] = Lease {
                owner: successor,
                epoch: self.epoch,
            };
            events.push(PlaneEvent::ShardReadopted {
                shard,
                from: dead,
                to: successor,
                epoch: self.epoch,
                time: now,
            });
            let adopt: Vec<Subject> = self
                .beated
                .iter()
                .copied()
                .filter(|&s| self.shard_of_subject(s) == Some(shard))
                .collect();
            for subject in adopt {
                self.workers[successor].supervisor.watch(subject);
            }
        }
        self.workers[dead]
            .supervisor
            .fence_stale_epochs(self.epoch, now)
            .len()
    }
}

/// Chaos-injection knobs for a [`ShardedRun`]: ground-truth server failures
/// plus a schedule of shard-owner kills.
#[derive(Debug, Clone)]
pub struct ShardChaos {
    /// Probability of a host failing, per server per simulated hour.
    pub server_failure_per_hour: f64,
    /// How long a failed host stays down before it is repaired.
    pub repair_after: SimDuration,
    /// Fractions of the horizon at which the lowest live supervisor is
    /// killed (e.g. `[0.35, 0.65]` kills two owners mid-run). Kills that
    /// would leave the plane headless are refused and simply don't happen.
    pub kill_fracs: Vec<f64>,
}

impl ShardChaos {
    /// No failures, no kills — the plane under ideal paper conditions.
    pub fn none() -> Self {
        ShardChaos {
            server_failure_per_hour: 0.0,
            repair_after: SimDuration::from_hours(1),
            kill_fracs: Vec::new(),
        }
    }
}

/// Recovery metrics of one [`ShardedRun`] — the `shard_recovery.csv`
/// columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRecoveryStats {
    /// Ground-truth server failures injected.
    pub failures_injected: usize,
    /// Server failures confirmed through an owner's heartbeat path.
    pub detections: usize,
    /// Total seconds from injection to confirmation, over all detections.
    pub detection_secs: u64,
    /// Shard owners killed.
    pub owner_kills: usize,
    /// Owner kills the plane confirmed.
    pub owner_detections: usize,
    /// Total seconds from kill to plane confirmation.
    pub owner_detection_secs: u64,
    /// Shards re-adopted by a successor.
    pub readoptions: usize,
    /// Total seconds from the owner's kill to each shard's re-adoption.
    pub readoption_secs: u64,
    /// In-flight operations fenced with a stale epoch.
    pub fenced_ops: usize,
    /// Triggers dropped while their shard was headless.
    pub dropped_triggers: usize,
    /// Instances the self-healing path restarted elsewhere.
    pub recovered_instances: usize,
    /// Instances lost for lack of capacity (queued for retry).
    pub lost_instances: usize,
    /// Lost restarts later satisfied by a retry.
    pub retried_restarts: usize,
    /// Hosts repaired and returned to the pool.
    pub repairs: usize,
    /// Sessions severed by host failures.
    pub lost_sessions: f64,
}

impl ShardRecoveryStats {
    /// Mean seconds from server-failure injection to confirmation.
    pub fn mean_detection_secs(&self) -> f64 {
        if self.detections == 0 {
            0.0
        } else {
            self.detection_secs as f64 / self.detections as f64
        }
    }

    /// Mean seconds from an owner kill to the plane confirming it.
    pub fn mean_owner_detection_secs(&self) -> f64 {
        if self.owner_detections == 0 {
            0.0
        } else {
            self.owner_detection_secs as f64 / self.owner_detections as f64
        }
    }

    /// Mean seconds from an owner kill to each of its shards being
    /// re-adopted (the plane re-adopts in the same tick it confirms, so
    /// this equals the detection latency under the default protocol).
    pub fn mean_readoption_secs(&self) -> f64 {
        if self.readoptions == 0 {
            0.0
        } else {
            self.readoption_secs as f64 / self.readoptions as f64
        }
    }
}

/// The paper's SAP workload driven through a [`ShardedControlPlane`], with
/// optional ground-truth chaos: host failures detected through the owners'
/// heartbeat paths, and shard-owner kills that exercise lease succession
/// and epoch fencing. With [`ShardChaos::none`] and one shard this is
/// bit-identical to [`SupervisedRun`](crate::harness::SupervisedRun)
/// (test-enforced).
pub struct ShardedRun {
    plane: ShardedControlPlane,
    engine: WorkloadEngine,
    rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
    chaos: ShardChaos,
    fail_per_tick: f64,
    down: BTreeSet<ServerId>,
    dead_instances: BTreeSet<InstanceId>,
    repairs_due: Vec<(SimTime, ServerId)>,
    restart_queue: Vec<(ServiceId, InstanceId)>,
    failed_at: BTreeMap<ServerId, SimTime>,
    kill_times: Vec<SimTime>,
    killed_at: BTreeMap<usize, SimTime>,
    /// Recovery metrics accumulated so far.
    pub stats: ShardRecoveryStats,
}

impl ShardedRun {
    /// Wire `env` to a `shards`-way control plane built from `supervisor`
    /// config, with `jobs` capping the plane's scoped-thread fan-out.
    ///
    /// # Panics
    /// Panics when `sim` fails validation or `shards` is zero.
    pub fn new(
        env: SapEnvironment,
        sim: &SimConfig,
        supervisor: SupervisorConfig,
        shards: usize,
        jobs: usize,
        chaos: ShardChaos,
    ) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let engine = WorkloadEngine::new(&landscape, workloads, sim);
        let metrics = Metrics {
            scenario: Some(sim.scenario),
            server_names: landscape
                .server_ids()
                .map(|id| landscape.server(id).unwrap().name.clone())
                .collect(),
            service_names: landscape
                .service_ids()
                .map(|id| landscape.service(id).unwrap().name.clone())
                .collect(),
            ..Metrics::default()
        };
        let fail_per_tick = chaos.server_failure_per_hour * sim.tick.as_secs() as f64 / 3600.0;
        let kill_times: Vec<SimTime> = chaos
            .kill_fracs
            .iter()
            .map(|f| {
                SimTime::ZERO + SimDuration::from_secs((sim.duration.as_secs() as f64 * f) as u64)
            })
            .collect();
        ShardedRun {
            plane: ShardedControlPlane::new(landscape, shards, supervisor).with_jobs(jobs),
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
            chaos,
            fail_per_tick,
            down: BTreeSet::new(),
            dead_instances: BTreeSet::new(),
            repairs_due: Vec::new(),
            restart_queue: Vec::new(),
            failed_at: BTreeMap::new(),
            kill_times,
            killed_at: BTreeMap::new(),
            stats: ShardRecoveryStats::default(),
        }
    }

    /// The plane (to inspect leases, epochs, replicas).
    pub fn plane(&self) -> &ShardedControlPlane {
        &self.plane
    }

    /// Mutable plane access (tests: kill owners directly, drain logs).
    pub fn plane_mut(&mut self) -> &mut ShardedControlPlane {
        &mut self.plane
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload model → measurement broadcast → chaos
    /// injection → heartbeats → plane tick → session mirroring and recovery
    /// accounting.
    pub fn step(&mut self) {
        self.time += self.tick;
        let time = self.time;

        // Workload model against the canonical replica's landscape;
        // instances on failed-but-undetected hosts serve nothing.
        let loads = self.engine.advance(
            self.plane.landscape(),
            &self.dead_instances,
            time,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — a dead box reports nothing.
        let mut records: Vec<(Subject, f64, f64)> = Vec::new();
        for (server, cpu, mem) in loads.server_entries() {
            if !self.down.contains(&server) {
                records.push((Subject::Server(server), cpu, mem));
            }
        }
        for (service, cpu) in loads.service_entries() {
            records.push((Subject::Service(service), cpu, 0.0));
        }
        for (instance, cpu) in loads.instance_entries() {
            if !self.dead_instances.contains(&instance) {
                records.push((Subject::Instance(instance), cpu, 0.0));
            }
        }
        for (subject, cpu, mem) in records {
            match subject {
                Subject::Server(s) => self.plane.record_server(s, time, cpu, mem),
                Subject::Service(s) => self.plane.record_service(s, time, cpu),
                Subject::Instance(i) => self.plane.record_instance(i, time, cpu),
            }
        }

        // Due repairs return hosts to the pool on every replica.
        let due: Vec<ServerId> = self
            .repairs_due
            .iter()
            .filter(|(at, _)| *at <= time)
            .map(|&(_, s)| s)
            .collect();
        self.repairs_due.retain(|(at, _)| *at > time);
        for server in due {
            self.down.remove(&server);
            self.failed_at.remove(&server);
            self.plane.report_server_repaired(server, time);
            self.stats.repairs += 1;
        }

        // Ground-truth host failures (ascending server ids, one die each —
        // the draw order is pinned so runs reproduce bit for bit).
        if self.fail_per_tick > 0.0 {
            let servers: Vec<ServerId> = self.plane.landscape().server_ids().collect();
            for server in servers {
                if self.down.contains(&server) {
                    continue;
                }
                if self.rng.random_bool(self.fail_per_tick) {
                    self.stats.failures_injected += 1;
                    self.down.insert(server);
                    self.failed_at.insert(server, time);
                    self.repairs_due
                        .push((time + self.chaos.repair_after, server));
                    let residents = self.plane.landscape().instances_on(server);
                    for instance in residents {
                        let severed = self.engine.sever_sessions(self.plane.landscape(), instance);
                        self.stats.lost_sessions += severed;
                        self.metrics.lost_sessions += severed;
                        self.dead_instances.insert(instance);
                    }
                    self.plane.set_server_available(server, false);
                }
            }
        }

        // The kill schedule takes down the lowest live supervisor — the
        // canonical replica itself, the hardest owner to lose.
        while self
            .kill_times
            .first()
            .map(|&at| at <= time)
            .unwrap_or(false)
        {
            self.kill_times.remove(0);
            let victim = self.plane.canonical();
            if self.plane.kill(victim) {
                self.stats.owner_kills += 1;
                self.killed_at.insert(victim, time);
            }
        }

        // Liveness: every healthy host beats its shard owner.
        let servers: Vec<ServerId> = self.plane.landscape().server_ids().collect();
        for server in servers {
            if !self.down.contains(&server) {
                self.plane.beat(Subject::Server(server), time);
            }
        }

        // One plane tick; then mirror and account for what it did.
        let report = self
            .plane
            .tick(time)
            .expect("the harness clock advances monotonically");
        for record in report.executed {
            self.engine
                .note_action(&record.outcome, self.plane.landscape(), time);
            self.metrics.actions.push(record);
        }
        for rec in report.recoveries {
            if let Subject::Server(server) = rec.subject {
                if let Some(at) = self.failed_at.remove(&server) {
                    self.stats.detections += 1;
                    self.stats.detection_secs += time.since(at).as_secs();
                    self.metrics.detections += 1;
                }
            }
            self.stats.recovered_instances += rec.outcome.recovered.len();
            self.stats.lost_instances += rec.outcome.lost.len();
            for &(instance, service) in &rec.outcome.lost {
                self.restart_queue.push((service, instance));
            }
        }
        for event in report.events {
            match event {
                PlaneEvent::OwnerConfirmed {
                    supervisor,
                    time: at,
                } => {
                    if let Some(&killed) = self.killed_at.get(&supervisor) {
                        self.stats.owner_detections += 1;
                        self.stats.owner_detection_secs += at.since(killed).as_secs();
                    }
                }
                PlaneEvent::ShardReadopted { from, time: at, .. } => {
                    self.stats.readoptions += 1;
                    if let Some(&killed) = self.killed_at.get(&from) {
                        self.stats.readoption_secs += at.since(killed).as_secs();
                    }
                }
                _ => {}
            }
        }
        self.stats.fenced_ops += report.fenced;
        self.stats.dropped_triggers += report.dropped_triggers;

        // Lost instances retry once capacity may have returned.
        for (service, instance) in std::mem::take(&mut self.restart_queue) {
            if self.plane.retry_restart(service, instance, time).is_some() {
                self.stats.retried_restarts += 1;
            } else {
                self.restart_queue.push((service, instance));
            }
        }

        // Dead instances that recovery replaced are gone from the
        // landscape; stop tracking them.
        let landscape = self.plane.landscape();
        self.dead_instances
            .retain(|&i| landscape.instance(i).is_ok());

        for event in self.plane.drain_controller_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }
    }

    /// Run to completion; returns the workload metrics and the recovery
    /// stats.
    pub fn run(mut self) -> (Metrics, ShardRecoveryStats) {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        (self.metrics, self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::SupervisedRun;
    use autoglobe_controller::ExecutorConfig;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};
    use autoglobe_simulator::{build_environment, Scenario};

    fn fig13_config(hours: u64) -> SimConfig {
        SimConfig::paper(Scenario::ConstrainedMobility, 1.15)
            .with_duration(SimDuration::from_hours(hours))
    }

    /// A printable fingerprint of a landscape's observable state, for
    /// replica-lockstep assertions (the type has no `PartialEq`).
    fn landscape_digest(l: &Landscape) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for server in l.server_ids() {
            writeln!(out, "server {} avail={}", server, l.is_available(server)).unwrap();
        }
        for inst in l.instances() {
            writeln!(
                out,
                "instance {} service={} server={} ip={}",
                inst.id, inst.service, inst.server, inst.ip
            )
            .unwrap();
        }
        out
    }

    #[test]
    fn one_shard_reproduces_the_supervised_run_bit_for_bit() {
        let hours = 12;
        let sim = fig13_config(hours);
        let sup = || SupervisorConfig {
            controller: sim.controller,
            ..SupervisorConfig::default()
        };
        let reference = SupervisedRun::new(
            build_environment(Scenario::ConstrainedMobility),
            &sim,
            sup(),
        )
        .run();
        let (sharded, stats) = ShardedRun::new(
            build_environment(Scenario::ConstrainedMobility),
            &sim,
            sup(),
            1,
            1,
            ShardChaos::none(),
        )
        .run();
        assert_eq!(reference.actions, sharded.actions);
        assert_eq!(reference.alerts, sharded.alerts);
        assert_eq!(reference.overload_secs, sharded.overload_secs);
        assert_eq!(
            reference.total_demand.to_bits(),
            sharded.total_demand.to_bits()
        );
        assert_eq!(
            stats,
            ShardRecoveryStats::default(),
            "no chaos, no recovery"
        );
    }

    #[test]
    fn shard_count_is_invisible_to_paper_scenarios() {
        let hours = 12;
        let sim = fig13_config(hours);
        let run = |shards: usize, jobs: usize| {
            let sup = SupervisorConfig {
                controller: sim.controller,
                ..SupervisorConfig::default()
            };
            ShardedRun::new(
                build_environment(Scenario::ConstrainedMobility),
                &sim,
                sup,
                shards,
                jobs,
                ShardChaos::none(),
            )
            .run()
        };
        let (one, _) = run(1, 1);
        let (four, _) = run(4, 2);
        assert_eq!(one.actions, four.actions);
        assert_eq!(one.alerts, four.alerts);
        assert_eq!(one.overload_secs, four.overload_secs);
        assert_eq!(one.total_demand.to_bits(), four.total_demand.to_bits());
    }

    /// A tiny landscape the plane tests drive by hand.
    fn tiny_plane(shards: usize, executor: ExecutorConfig) -> (ShardedControlPlane, Vec<ServerId>) {
        let mut landscape = Landscape::new();
        let servers: Vec<ServerId> = (0..6)
            .map(|i| {
                landscape
                    .add_server(ServerSpec::fsc_bx300(format!("srv{i}")))
                    .unwrap()
            })
            .collect();
        let fi = landscape
            .add_service(
                ServiceSpec::new("FI", ServiceKind::ApplicationServer).with_instances(1, Some(6)),
            )
            .unwrap();
        landscape.start_instance(fi, servers[0]).unwrap();
        let config = SupervisorConfig {
            executor,
            executor_seed: 7,
            ..SupervisorConfig::default()
        };
        (ShardedControlPlane::new(landscape, shards, config), servers)
    }

    #[test]
    fn killed_owner_is_confirmed_and_its_shards_readopted_under_a_new_epoch() {
        let (mut plane, servers) = tiny_plane(3, ExecutorConfig::reliable());
        let minute = SimDuration::from_minutes(1);
        let mut t = SimTime::ZERO;

        // A couple of healthy ticks so everything is enrolled.
        for _ in 0..2 {
            t += minute;
            for &s in &servers {
                plane.beat(Subject::Server(s), t);
            }
            plane.tick(t).unwrap();
        }
        let victim = plane.canonical();
        let orphaned: Vec<ShardId> = (0..plane.shards())
            .filter(|&s| plane.lease(s).owner == victim)
            .collect();
        assert!(!orphaned.is_empty());
        assert!(plane.kill(victim));
        assert!(!plane.is_alive(victim));
        let successor_expected = plane.canonical();
        assert_ne!(victim, successor_expected);

        // Default protocol: 3 misses to suspect + 2 to confirm.
        let mut confirmed = false;
        let mut readopted = 0;
        for _ in 0..6 {
            t += minute;
            for &s in &servers {
                plane.beat(Subject::Server(s), t);
            }
            let report = plane.tick(t).unwrap();
            for event in report.events {
                match event {
                    PlaneEvent::OwnerConfirmed { supervisor, .. } => {
                        assert_eq!(supervisor, victim);
                        confirmed = true;
                    }
                    PlaneEvent::ShardReadopted {
                        shard,
                        from,
                        to,
                        epoch,
                        ..
                    } => {
                        assert_eq!(from, victim);
                        assert_eq!(to, successor_expected);
                        assert_eq!(epoch, 1);
                        assert!(orphaned.contains(&shard));
                        readopted += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(confirmed, "the plane must confirm the killed owner");
        assert_eq!(readopted, orphaned.len(), "every orphaned shard re-adopts");
        assert_eq!(plane.epoch(), 1);
        for shard in orphaned {
            assert_eq!(
                plane.lease(shard),
                Lease {
                    owner: successor_expected,
                    epoch: 1
                }
            );
        }
        // Killing everyone but the last is allowed; the last is refused.
        let mut live: Vec<usize> = (0..3).filter(|&i| plane.is_alive(i)).collect();
        while live.len() > 1 {
            assert!(plane.kill(live[0]));
            live.remove(0);
        }
        assert!(!plane.kill(live[0]), "the last live supervisor is immortal");
    }

    #[test]
    fn subject_failures_during_the_headless_window_are_detected_by_the_successor() {
        let (mut plane, servers) = tiny_plane(2, ExecutorConfig::reliable());
        let minute = SimDuration::from_minutes(1);
        let mut t = SimTime::ZERO;
        for _ in 0..2 {
            t += minute;
            for &s in &servers {
                plane.beat(Subject::Server(s), t);
            }
            plane.tick(t).unwrap();
        }
        // Pick a server owned by the canonical replica, then kill that
        // replica AND the server in the same breath: its silence must be
        // confirmed by the successor after watch adoption.
        let victim = plane.canonical();
        let dying = *servers
            .iter()
            .find(|&&s| {
                plane
                    .lease(plane.shard_of_subject(Subject::Server(s)).unwrap())
                    .owner
                    == victim
            })
            .expect("the canonical replica owns at least one beated server");
        assert!(plane.kill(victim));
        plane.set_server_available(dying, false);

        let mut server_confirmed_at = None;
        for _ in 0..14 {
            t += minute;
            for &s in &servers {
                if s != dying {
                    plane.beat(Subject::Server(s), t);
                }
            }
            let report = plane.tick(t).unwrap();
            for rec in report.recoveries {
                if rec.subject == Subject::Server(dying) {
                    server_confirmed_at = Some(rec.time);
                }
            }
        }
        assert!(
            server_confirmed_at.is_some(),
            "the successor must confirm the server that died while its shard was headless"
        );
        // All live replicas agree on the resulting landscape.
        let canonical = landscape_digest(plane.landscape());
        for i in 0..plane.shards() {
            if plane.is_alive(i) {
                assert_eq!(
                    canonical,
                    landscape_digest(plane.supervisor(i).landscape()),
                    "replica {i} diverged"
                );
            }
        }
    }

    #[test]
    fn no_action_is_applied_twice_across_an_epoch_change() {
        // A latent, fallible substrate so owners carry in-flight work when
        // they are killed — the fencing path must discard it exactly once
        // and never complete it.
        let executor = ExecutorConfig {
            min_latency: SimDuration::from_minutes(2),
            max_latency: SimDuration::from_minutes(8),
            timeout: SimDuration::from_minutes(6),
            failure_probability: 0.1,
            ..ExecutorConfig::reliable()
        };
        let sim = fig13_config(16);
        let sup = SupervisorConfig {
            controller: sim.controller,
            executor,
            executor_seed: 99,
            ..SupervisorConfig::default()
        };
        let chaos = ShardChaos {
            server_failure_per_hour: 0.05,
            repair_after: SimDuration::from_hours(1),
            kill_fracs: vec![0.4, 0.7],
        };
        let mut run = ShardedRun::new(
            build_environment(Scenario::ConstrainedMobility),
            &sim,
            sup,
            4,
            2,
            chaos,
        );
        let ticks = 16 * 60; // one-minute ticks
        for _ in 0..ticks {
            run.step();
        }
        assert!(run.stats.owner_kills >= 1, "the schedule must kill owners");
        assert!(run.stats.owner_detections >= 1, "kills must be confirmed");
        assert!(run.stats.readoptions >= 1, "shards must be re-adopted");

        // Audit every replica's execution log: a dispatch id completes at
        // most once, and never both completes and gets fenced.
        let mut completed: BTreeSet<(usize, u64)> = BTreeSet::new();
        let mut fenced: BTreeSet<(usize, u64)> = BTreeSet::new();
        for (replica, event) in run.plane_mut().drain_all_execution_events() {
            match event {
                ExecutionEvent::Completed { id, .. } => {
                    assert!(
                        completed.insert((replica, id)),
                        "op {id} on replica {replica} completed twice"
                    );
                }
                ExecutionEvent::FencedStaleEpoch { id, .. } => {
                    fenced.insert((replica, id));
                }
                _ => {}
            }
        }
        for key in &fenced {
            assert!(
                !completed.contains(key),
                "op {key:?} was both fenced and applied — a ghost move"
            );
        }

        // And the live replicas' landscapes are still in lockstep.
        let canonical = landscape_digest(run.plane().landscape());
        for i in 0..run.plane().shards() {
            if run.plane().is_alive(i) {
                assert_eq!(
                    canonical,
                    landscape_digest(run.plane().supervisor(i).landscape()),
                    "replica {i} diverged"
                );
            }
        }
    }
}
