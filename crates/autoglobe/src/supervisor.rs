//! The production control plane: measurements and heartbeats in, actions
//! out.
//!
//! [`Supervisor`] bundles the pieces an integrator would otherwise wire by
//! hand — a [`LoadMonitoringSystem`] with the paper's thresholds, a
//! [`LoadArchive`], a [`HeartbeatMonitor`], an [`ActionExecutor`] and the
//! [`AutoGlobeController`] — around a [`Landscape`], behind three calls:
//!
//! * [`Supervisor::beat`] — a liveness signal from a server or instance.
//!   Subjects enroll on their first beat; `miss_threshold` silent ticks
//!   suspect them, `confirm_after` more confirm the failure and run the
//!   self-healing path. A beat during suspicion reconciles (no
//!   double-start).
//! * [`Supervisor::tick`] — close one monitoring interval: settle in-flight
//!   operations, evaluate heartbeats, run proactive forecast checks, and
//!   dispatch confirmed triggers through the fuzzy controller.
//! * [`Supervisor::poll`] — settle in-flight operations between ticks (only
//!   relevant with a fallible/latent [`ExecutorConfig`]; the default
//!   reliable substrate completes everything inside `tick`).
//!
//! With [`SupervisorConfig::default`] — reliable executor, no proactive
//! triggering, heartbeats dormant until the first beat — the supervisor
//! reproduces the original synchronous facade bit for bit (test-enforced).

use autoglobe_controller::RecoveryOutcome;
use autoglobe_controller::{
    ActionExecutor, ActionRecord, AutoGlobeController, ControllerConfig, ControllerEvent,
    ExecutionEvent, ExecutionMode, ExecutorConfig, LoadView, RuleBases,
};
use autoglobe_forecast::{HintBook, ProactiveConfig, ProactiveFiring, ProactiveTrigger};
use autoglobe_landscape::{
    InstanceId, Landscape, LandscapeError, ServerId, ServiceId, ShardId, ShardMap,
};
use autoglobe_monitor::{
    Advisor, FailureEvent, FailureKind, HeartbeatConfig, HeartbeatEvent, HeartbeatMonitor,
    LoadArchive, LoadMonitoringSystem, LoadSample, SimDuration, SimTime, Subject, SubjectConfig,
    TriggerEvent,
};
use std::collections::{BTreeMap, BTreeSet};

/// Latest-value load view fed by the supervisor's recorded measurements.
///
/// Stored as dense per-kind arenas indexed by the raw id (ids are dense in
/// this system), with presence flags distinguishing "never recorded /
/// pruned" from a recorded 0.0 — the per-tick record path writes three
/// array slots instead of rebalancing two `BTreeMap`s per measurement.
#[derive(Debug, Clone, Default)]
struct RecordedLoads {
    server_cpu: Vec<f64>,
    server_mem: Vec<f64>,
    server_set: Vec<bool>,
    service_cpu: Vec<f64>,
    service_set: Vec<bool>,
    instance_cpu: Vec<f64>,
    instance_mem: Vec<f64>,
    instance_set: Vec<bool>,
}

/// Grow a dense lane so `idx` is addressable.
fn grow_to<T: Clone + Default>(lane: &mut Vec<T>, idx: usize) {
    if lane.len() <= idx {
        lane.resize(idx + 1, T::default());
    }
}

impl RecordedLoads {
    /// Record the latest measurement for `subject`.
    fn set(&mut self, subject: Subject, cpu: f64, mem: f64) {
        match subject {
            Subject::Server(id) => {
                let idx = id.index();
                grow_to(&mut self.server_cpu, idx);
                grow_to(&mut self.server_mem, idx);
                grow_to(&mut self.server_set, idx);
                self.server_cpu[idx] = cpu;
                self.server_mem[idx] = mem;
                self.server_set[idx] = true;
            }
            Subject::Service(id) => {
                let idx = id.index();
                grow_to(&mut self.service_cpu, idx);
                grow_to(&mut self.service_set, idx);
                self.service_cpu[idx] = cpu;
                self.service_set[idx] = true;
            }
            Subject::Instance(id) => {
                let idx = id.index();
                grow_to(&mut self.instance_cpu, idx);
                grow_to(&mut self.instance_mem, idx);
                grow_to(&mut self.instance_set, idx);
                self.instance_cpu[idx] = cpu;
                self.instance_mem[idx] = mem;
                self.instance_set[idx] = true;
            }
        }
    }

    /// Forget `subject` (it departed the landscape).
    fn remove(&mut self, subject: Subject) {
        let (lane, idx) = match subject {
            Subject::Server(id) => (&mut self.server_set, id.index()),
            Subject::Service(id) => (&mut self.service_set, id.index()),
            Subject::Instance(id) => (&mut self.instance_set, id.index()),
        };
        if let Some(set) = lane.get_mut(idx) {
            *set = false;
        }
    }

    /// All recorded subjects: servers, then services, then instances, each
    /// ascending — the same order as [`Subject`]'s derived `Ord` gave the
    /// old map-backed storage.
    fn subjects(&self) -> impl Iterator<Item = Subject> + '_ {
        let servers = self
            .server_set
            .iter()
            .enumerate()
            .filter(|(_, &set)| set)
            .map(|(i, _)| Subject::Server(ServerId::new(i as u32)));
        let services = self
            .service_set
            .iter()
            .enumerate()
            .filter(|(_, &set)| set)
            .map(|(i, _)| Subject::Service(ServiceId::new(i as u32)));
        let instances = self
            .instance_set
            .iter()
            .enumerate()
            .filter(|(_, &set)| set)
            .map(|(i, _)| Subject::Instance(InstanceId::new(i as u32)));
        servers.chain(services).chain(instances)
    }
}

impl LoadView for RecordedLoads {
    fn cpu(&self, subject: Subject) -> f64 {
        let (set, cpu, idx) = match subject {
            Subject::Server(id) => (&self.server_set, &self.server_cpu, id.index()),
            Subject::Service(id) => (&self.service_set, &self.service_cpu, id.index()),
            Subject::Instance(id) => (&self.instance_set, &self.instance_cpu, id.index()),
        };
        if set.get(idx).copied().unwrap_or(false) {
            cpu[idx]
        } else {
            0.0
        }
    }
    fn mem(&self, subject: Subject) -> f64 {
        let (set, mem, idx) = match subject {
            Subject::Server(id) => (&self.server_set, &self.server_mem, id.index()),
            Subject::Service(_) => return 0.0,
            Subject::Instance(id) => (&self.instance_set, &self.instance_mem, id.index()),
        };
        if set.get(idx).copied().unwrap_or(false) {
            mem[idx]
        } else {
            0.0
        }
    }
}

/// A confirmed trigger awaiting dispatch, tagged with its provenance: a
/// forecast-driven (proactive) trigger carries the predicted load so the
/// controller can plan against the *predicted* situation rather than the
/// still-calm present.
///
/// Public so a sharded control plane can take a supervisor's confirmed
/// triggers ([`Supervisor::tick_collect`]) and broker dispatch through the
/// lease table instead of letting each supervisor act unilaterally.
#[derive(Debug, Clone)]
pub struct PendingTrigger {
    /// The confirmed trigger.
    pub event: TriggerEvent,
    /// Predicted CPU load of the trigger subject, for proactive triggers.
    pub forecast: Option<f64>,
}

/// Load view for planning a proactive trigger: the fired subject's load is
/// replaced by the forecast, and the loads of its co-located instances and
/// services are scaled by the same factor (the forecast is a uniform demand
/// multiplier on the subject — the instance mix does not change between now
/// and the predicted overload). Every other subject — in particular the
/// candidate target hosts of a scale-out or move — keeps its current,
/// measured load.
struct ForecastView<'a> {
    inner: &'a RecordedLoads,
    cpu_overrides: BTreeMap<Subject, f64>,
}

impl<'a> ForecastView<'a> {
    fn new(
        inner: &'a RecordedLoads,
        landscape: &Landscape,
        subject: Subject,
        predicted: f64,
    ) -> Self {
        let current = inner.cpu(subject);
        // With a meaningful current load the co-located subjects scale by
        // the same demand ratio; from a near-idle baseline the best
        // projection available is the predicted level itself.
        let ratio = if current > 0.05 {
            predicted / current
        } else {
            f64::INFINITY
        };
        let scale = |load: f64| {
            if ratio.is_finite() {
                (load * ratio).min(1.0)
            } else {
                predicted.min(1.0)
            }
        };
        let mut cpu_overrides = BTreeMap::new();
        cpu_overrides.insert(subject, predicted.min(1.0));
        match subject {
            Subject::Server(server) => {
                for instance_id in landscape.instances_on(server) {
                    let Ok(inst) = landscape.instance(instance_id) else {
                        continue;
                    };
                    cpu_overrides.insert(
                        Subject::Instance(instance_id),
                        scale(inner.cpu(Subject::Instance(instance_id))),
                    );
                    cpu_overrides
                        .entry(Subject::Service(inst.service))
                        .or_insert_with(|| scale(inner.cpu(Subject::Service(inst.service))));
                }
            }
            Subject::Service(service) => {
                for instance_id in landscape.instances_of(service) {
                    cpu_overrides.insert(
                        Subject::Instance(instance_id),
                        scale(inner.cpu(Subject::Instance(instance_id))),
                    );
                }
            }
            Subject::Instance(_) => {}
        }
        ForecastView {
            inner,
            cpu_overrides,
        }
    }
}

impl LoadView for ForecastView<'_> {
    fn cpu(&self, subject: Subject) -> f64 {
        self.cpu_overrides
            .get(&subject)
            .copied()
            .unwrap_or_else(|| self.inner.cpu(subject))
    }
    fn mem(&self, subject: Subject) -> f64 {
        self.inner.mem(subject)
    }
}

/// A rejected call into the [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorError {
    /// `now` ran backwards relative to an earlier `beat`/`tick`/`poll`.
    /// Accepting it would silently corrupt the heartbeat miss windows
    /// (a stale beat could reconcile a genuinely dead subject) and the
    /// protection registry's expiry arithmetic, so the call is refused
    /// before any state changes.
    NonMonotonicTime {
        /// The rejected timestamp.
        now: SimTime,
        /// The latest timestamp the supervisor has already processed.
        last: SimTime,
    },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::NonMonotonicTime { now, last } => write!(
                f,
                "time ran backwards: {}s is earlier than the already-processed {}s",
                now.as_secs(),
                last.as_secs()
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Everything configurable about a [`Supervisor`]. The default reproduces
/// the paper's synchronous facade exactly: paper rule bases and thresholds,
/// an instant infallible execution substrate, heartbeat detection that stays
/// dormant until the first [`Supervisor::beat`], and no proactive
/// triggering.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Fuzzy rule bases for action and server selection.
    pub rule_bases: RuleBases,
    /// Controller thresholds, protection time, execution mode defaults.
    pub controller: ControllerConfig,
    /// The action-execution substrate. [`ExecutorConfig::reliable`] (the
    /// default) completes every dispatch instantly and infallibly,
    /// reproducing synchronous execution bit for bit.
    pub executor: ExecutorConfig,
    /// Seed of the executor's own RNG stream (only drawn from when the
    /// substrate has non-zero latency span or failure probability).
    pub executor_seed: u64,
    /// Heartbeat suspect/confirm protocol parameters.
    pub heartbeats: HeartbeatConfig,
    /// Enable forecast-driven proactive triggers over the built-in load
    /// archive. `None` (the default) keeps the control plane purely
    /// reactive.
    pub proactive: Option<ProactiveConfig>,
    /// Minimum spacing between proactive firings for the same subject — a
    /// hot forecast must not storm the controller every tick.
    pub proactive_cooldown: SimDuration,
    /// How often the (comparatively expensive) proactive forecast checks
    /// run; triggers still dispatch on the next tick after a check fires.
    pub proactive_every: SimDuration,
}

impl SupervisorConfig {
    /// Check the configuration for values and combinations that cannot
    /// work, mirroring [`ExecutorConfig::validate`] and
    /// [`HeartbeatConfig::validate`] (both of which this delegates to).
    ///
    /// `executor_seed` itself has no invalid values — any `u64` seeds a
    /// valid stream, and a zero-draw substrate (the default
    /// [`ExecutorConfig::reliable`]) never consults it — but the proactive
    /// cadence/cooldown pair is checked as a combination: a zero check
    /// cadence would re-run the forecast scan every tick, and a cooldown
    /// shorter than the cadence is unenforceable (firings cannot be spaced
    /// more finely than checks run), so both are almost certainly a
    /// misconfigured unit rather than an intent.
    pub fn validate(&self) -> Result<(), String> {
        self.executor.validate()?;
        self.heartbeats.validate()?;
        if self.proactive.is_some() {
            if self.proactive_every == SimDuration::ZERO {
                return Err("proactive_every must be positive — a zero cadence re-runs \
                     the forecast scan every tick"
                    .into());
            }
            if self.proactive_cooldown < self.proactive_every {
                return Err(format!(
                    "proactive_cooldown ({}s) shorter than proactive_every ({}s) is \
                     unenforceable: firings cannot be spaced more finely than checks run",
                    self.proactive_cooldown.as_secs(),
                    self.proactive_every.as_secs()
                ));
            }
        }
        Ok(())
    }
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            rule_bases: RuleBases::paper_defaults(),
            controller: ControllerConfig::default(),
            executor: ExecutorConfig::reliable(),
            executor_seed: 0,
            heartbeats: HeartbeatConfig::default(),
            proactive: None,
            proactive_cooldown: SimDuration::from_minutes(30),
            proactive_every: SimDuration::from_minutes(10),
        }
    }
}

/// Owner-scoped ingestion: the shards this replica runs monitoring and
/// archive state for. Subjects outside the scope only update the
/// replicated latest-value load view ([`Supervisor::apply_remote_load`]).
#[derive(Debug, Clone)]
struct MonitorScope {
    map: ShardMap,
    owned: BTreeSet<ShardId>,
}

/// The ready-wired AutoGlobe control plane.
#[derive(Debug)]
pub struct Supervisor {
    landscape: Landscape,
    controller: AutoGlobeController,
    monitoring: LoadMonitoringSystem,
    archive: LoadArchive,
    loads: RecordedLoads,
    scope: Option<MonitorScope>,
    /// Landscape revision at the last registration/prune pass. Quiet
    /// intervals (no landscape mutation, no scope change) skip both
    /// landscape walks entirely.
    seen_revision: Option<u64>,
    pending_triggers: Vec<PendingTrigger>,
    executed: Vec<ActionRecord>,
    executor: ActionExecutor,
    heartbeats: HeartbeatMonitor,
    heartbeat_log: Vec<HeartbeatEvent>,
    proactive: Option<ProactiveTrigger>,
    proactive_cooldown: SimDuration,
    proactive_every: SimDuration,
    last_proactive_check: Option<SimTime>,
    last_proactive: BTreeMap<Subject, SimTime>,
    proactive_firings: Vec<ProactiveFiring>,
    hints: HintBook,
    execution_log: Vec<ExecutionEvent>,
    recovery_log: Vec<RecoveryRecord>,
    last_now: Option<SimTime>,
}

/// A self-healing outcome from a heartbeat-confirmed failure, recorded so
/// harnesses and the sharded control plane can account for (and replicate)
/// recoveries that [`Supervisor::tick`] performed internally.
#[derive(Debug, Clone)]
pub struct RecoveryRecord {
    /// The confirmed-dead subject the self-healing path ran for.
    pub subject: Subject,
    /// When the failure was confirmed (= when recovery ran).
    pub time: SimTime,
    /// What the controller recovered and what it had to give up on.
    pub outcome: RecoveryOutcome,
}

impl Supervisor {
    /// Supervise `landscape` with the paper's default configuration.
    pub fn new(landscape: Landscape) -> Self {
        Self::with_config(landscape, SupervisorConfig::default())
    }

    /// Supervise with an explicit configuration.
    ///
    /// # Panics
    /// Panics when the configuration fails [`SupervisorConfig::validate`]
    /// (invalid executor/heartbeat settings or an unenforceable proactive
    /// cadence/cooldown combination).
    pub fn with_config(landscape: Landscape, config: SupervisorConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid supervisor config: {e}");
        }
        let mut monitoring = LoadMonitoringSystem::new();
        for server in landscape.server_ids() {
            let idx = landscape
                .server(server)
                .map(|s| s.performance_index)
                .unwrap_or(1.0);
            monitoring.register(Subject::Server(server), SubjectConfig::paper_defaults(idx));
        }
        for service in landscape.service_ids() {
            monitoring.register(Subject::Service(service), SubjectConfig::service_defaults());
        }
        Supervisor {
            landscape,
            controller: AutoGlobeController::with_rule_bases(config.rule_bases, config.controller),
            monitoring,
            archive: LoadArchive::new(SimDuration::from_minutes(1)),
            loads: RecordedLoads::default(),
            scope: None,
            seen_revision: None,
            pending_triggers: Vec::new(),
            executed: Vec::new(),
            executor: ActionExecutor::new(config.executor, config.executor_seed),
            heartbeats: HeartbeatMonitor::new(config.heartbeats),
            heartbeat_log: Vec::new(),
            proactive: config
                .proactive
                .map(|p| ProactiveTrigger::with_config(p, Default::default())),
            proactive_cooldown: config.proactive_cooldown,
            proactive_every: config.proactive_every,
            last_proactive_check: None,
            last_proactive: BTreeMap::new(),
            proactive_firings: Vec::new(),
            hints: HintBook::new(),
            execution_log: Vec::new(),
            recovery_log: Vec::new(),
            last_now: None,
        }
    }

    /// The supervised landscape.
    pub fn landscape(&self) -> &Landscape {
        &self.landscape
    }

    /// Mutable access for administrative changes (registering servers and
    /// services). Newly added entities are picked up by monitoring on the
    /// next [`Supervisor::tick`]; departed ones (stopped instances) are
    /// pruned from monitoring, the load view and the heartbeat watch set.
    pub fn landscape_mut(&mut self) -> &mut Landscape {
        &mut self.landscape
    }

    /// The controller (to switch execution modes, confirm pending actions,
    /// or inspect the protection registry).
    pub fn controller(&self) -> &AutoGlobeController {
        &self.controller
    }

    /// Mutable controller access.
    pub fn controller_mut(&mut self) -> &mut AutoGlobeController {
        &mut self.controller
    }

    /// The historic load archive.
    pub fn archive(&self) -> &LoadArchive {
        &self.archive
    }

    /// Administrator reservations merged into proactive forecasts
    /// ("mission-critical batch run at 22:00 needs 2 CPU units").
    pub fn hints(&self) -> &HintBook {
        &self.hints
    }

    /// Mutable access to the reservation book.
    pub fn hints_mut(&mut self) -> &mut HintBook {
        &mut self.hints
    }

    /// Every action executed so far.
    pub fn executed(&self) -> &[ActionRecord] {
        &self.executed
    }

    /// Every proactive firing so far (trigger + predicted crossing time;
    /// [`ProactiveFiring::lead`] is the head start the forecast bought).
    pub fn proactive_firings(&self) -> &[ProactiveFiring] {
        &self.proactive_firings
    }

    /// Number of operations currently in flight on the execution substrate.
    pub fn in_flight(&self) -> usize {
        self.executor.in_flight()
    }

    /// True when no operation is in flight and nothing is fenced.
    pub fn is_idle(&self) -> bool {
        self.executor.is_idle()
    }

    /// Subjects currently under heartbeat suspicion.
    pub fn suspected(&self) -> Vec<Subject> {
        self.heartbeats.suspected().collect()
    }

    /// Subjects currently enrolled in the heartbeat watch set — a harness
    /// that emits liveness signals iterates this rather than guessing who
    /// the detector cares about (a falsely confirmed host, for example, is
    /// quarantined out of the watch set until it is re-certified).
    pub fn watched(&self) -> Vec<Subject> {
        self.heartbeats.watched().collect()
    }

    /// Drain and return the controller's event log.
    pub fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.controller.drain_log()
    }

    /// Drain and return the heartbeat detector's event log
    /// (suspected / reconciled / confirmed).
    pub fn drain_heartbeat_events(&mut self) -> Vec<HeartbeatEvent> {
        std::mem::take(&mut self.heartbeat_log)
    }

    /// Drain and return the execution substrate's event log (completions,
    /// retries, timeouts, fenced late successes, abandonments).
    pub fn drain_execution_events(&mut self) -> Vec<ExecutionEvent> {
        std::mem::take(&mut self.execution_log)
    }

    /// Drain and return the self-healing outcomes of heartbeat-confirmed
    /// failures handled inside [`Supervisor::tick`] — the restarts a
    /// harness must account for (and a replica must replay) even though
    /// they are not dispatched through the execution substrate.
    pub fn drain_recoveries(&mut self) -> Vec<RecoveryRecord> {
        std::mem::take(&mut self.recovery_log)
    }

    /// Refuse clocks that run backwards; equal timestamps are fine (`tick`
    /// then `poll` at the same instant is the documented idiom).
    fn advance_clock(&mut self, now: SimTime) -> Result<(), SupervisorError> {
        if let Some(last) = self.last_now {
            if now < last {
                return Err(SupervisorError::NonMonotonicTime { now, last });
            }
        }
        self.last_now = Some(now);
        Ok(())
    }

    /// Record a server measurement.
    pub fn record_server(&mut self, server: ServerId, time: SimTime, cpu: f64, mem: f64) {
        self.record(Subject::Server(server), time, cpu, mem);
    }

    /// Record a service (aggregate) measurement.
    pub fn record_service(&mut self, service: ServiceId, time: SimTime, cpu: f64) {
        self.record(Subject::Service(service), time, cpu, 0.0);
    }

    /// Record an instance measurement.
    pub fn record_instance(&mut self, instance: InstanceId, time: SimTime, cpu: f64) {
        self.record(Subject::Instance(instance), time, cpu, 0.0);
    }

    fn record(&mut self, subject: Subject, time: SimTime, cpu: f64, mem: f64) {
        self.loads.set(subject, cpu, mem);
        // Outside the owner scope only the replicated load view is kept —
        // no foreign monitoring or archive state at all.
        if !self.owns_subject(subject) {
            return;
        }
        self.archive.record(subject, time, cpu, mem);
        // Instances are not registered as monitored subjects by default
        // (triggers come from servers and services), but measurements for
        // registered ones flow through.
        if self.monitoring.is_registered(subject) {
            if let Some(trigger) = self
                .monitoring
                .observe(subject, LoadSample::new(time, cpu, mem))
            {
                self.pending_triggers.push(PendingTrigger {
                    event: trigger,
                    forecast: None,
                });
            }
        }
    }

    /// Record a liveness signal. A subject's first beat enrolls it in the
    /// watch set; from then on every [`Supervisor::tick`] it must either
    /// beat or accrue a miss. Returns `Ok(false)` when the beat was fenced:
    /// the subject does not exist in the landscape (e.g. a zombie process
    /// of an already-stopped instance). Returns
    /// [`SupervisorError::NonMonotonicTime`] for a beat stamped earlier
    /// than already-processed time — accepting it would corrupt the miss
    /// windows the failure detector counts on.
    pub fn beat(&mut self, subject: Subject, now: SimTime) -> Result<bool, SupervisorError> {
        self.advance_clock(now)?;
        Ok(self.beat_inner(subject, now))
    }

    fn beat_inner(&mut self, subject: Subject, now: SimTime) -> bool {
        if !self.heartbeats.is_watched(subject) {
            let exists = match subject {
                Subject::Server(s) => self.landscape.server(s).is_ok(),
                Subject::Service(s) => self.landscape.service(s).is_ok(),
                Subject::Instance(i) => self.landscape.instance(i).is_ok(),
            };
            if !exists {
                return false;
            }
            self.heartbeats.watch(subject);
        }
        self.heartbeats.beat(subject, now)
    }

    /// Report a crashed instance; the self-healing path restarts it
    /// immediately (no watch time — the process is already gone).
    pub fn report_instance_crash(&mut self, instance: InstanceId, now: SimTime) -> RecoveryOutcome {
        self.heartbeats.unwatch(Subject::Instance(instance));
        let event = FailureEvent {
            kind: FailureKind::InstanceCrashed(instance),
            time: now,
        };
        self.controller
            .handle_failure(&event, &mut self.landscape, &self.loads, now)
    }

    /// Report a failed host; it is marked unavailable and all its instances
    /// restart elsewhere.
    pub fn report_server_failure(&mut self, server: ServerId, now: SimTime) -> RecoveryOutcome {
        self.heartbeats.unwatch(Subject::Server(server));
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(server),
            time: now,
        };
        self.controller
            .handle_failure(&event, &mut self.landscape, &self.loads, now)
    }

    /// Mark a previously failed host repaired: it rejoins the pool and the
    /// controller logs a [`ControllerEvent::Repaired`] for the event view.
    ///
    /// Returns `Err` for a server the landscape does not know, and
    /// `Ok(None)` for a server that never failed (it is already available —
    /// nothing is logged, no `Repaired` event is fabricated).
    pub fn report_server_repaired(
        &mut self,
        server: ServerId,
        now: SimTime,
    ) -> Result<Option<ControllerEvent>, LandscapeError> {
        self.landscape.server(server)?;
        if self.landscape.is_available(server) {
            return Ok(None);
        }
        self.landscape.set_available(server, true)?;
        Ok(Some(self.controller.note_repaired(server, now)))
    }

    /// Enroll `subject` in the heartbeat watch set without waiting for its
    /// first beat — the sharded control plane calls this when a successor
    /// adopts a shard, so subjects that were already silent when the old
    /// owner died still accrue misses (a dead server that never beats the
    /// new owner must not be invisible to it). Returns false (and watches
    /// nothing) for a subject the landscape does not know.
    pub fn watch(&mut self, subject: Subject) -> bool {
        let exists = match subject {
            Subject::Server(s) => self.landscape.server(s).is_ok(),
            Subject::Service(s) => self.landscape.service(s).is_ok(),
            Subject::Instance(i) => self.landscape.instance(i).is_ok(),
        };
        if exists {
            self.heartbeats.watch(subject);
        }
        exists
    }

    /// Remove `subject` from the heartbeat watch set (e.g. a deployment
    /// agent decommissioning a host: silence is expected, not a failure).
    /// Returns whether it was watched.
    pub fn unwatch(&mut self, subject: Subject) -> bool {
        self.heartbeats.unwatch(subject)
    }

    /// Retry the restart of an instance the self-healing path had to give
    /// up on ([`RecoveryOutcome::lost`]) — capacity may have returned
    /// since. Returns the replacement and its host when a feasible host
    /// exists now.
    pub fn retry_restart(
        &mut self,
        service: ServiceId,
        old_instance: InstanceId,
        now: SimTime,
    ) -> Option<(InstanceId, ServerId)> {
        self.controller
            .retry_restart(service, old_instance, &mut self.landscape, &self.loads, now)
    }

    /// Apply an action decided, executed and recorded by *another*
    /// supervisor replica. Replicas of the same landscape that record the
    /// same measurements stay in lockstep by replaying each owner-executed
    /// record: the action applies to this replica's landscape and the
    /// involved entities are protected exactly as the owner protected
    /// them. The record is not re-logged — the owner's log is the
    /// authoritative one.
    pub fn apply_remote(&mut self, record: &ActionRecord) -> Result<(), LandscapeError> {
        self.landscape.apply(&record.action)?;
        self.controller
            .protect_involved(&record.action, &self.landscape, record.time);
        Ok(())
    }

    /// Replay a failure confirmation another replica's self-healing path
    /// already handled ([`Supervisor::drain_recoveries`] on the owner).
    /// Deterministic planning over identical state yields the identical
    /// recovery, keeping the replicas' landscapes in lockstep.
    pub fn replay_failure(&mut self, subject: Subject, time: SimTime) -> Option<RecoveryOutcome> {
        let kind = match subject {
            Subject::Server(server) => FailureKind::ServerFailed(server),
            Subject::Instance(instance) => FailureKind::InstanceCrashed(instance),
            Subject::Service(_) => return None,
        };
        self.heartbeats.unwatch(subject);
        let failure = FailureEvent { kind, time };
        Some(
            self.controller
                .handle_failure(&failure, &mut self.landscape, &self.loads, time),
        )
    }

    /// Restrict monitoring and archive ingestion to `owned` shards of
    /// `map` (delta replication's owner scope). Advisors for subjects
    /// outside the scope are unregistered; from here on, foreign
    /// measurements flow only into the replicated latest-value load view
    /// (via [`Supervisor::apply_remote_load`] or a gated
    /// [`Supervisor::record_server`]-family call), never into
    /// monitoring or the archive. Call right after construction, before
    /// any measurements are recorded — existing archive state is not
    /// rolled back.
    pub fn set_monitor_scope(&mut self, map: ShardMap, owned: BTreeSet<ShardId>) {
        self.scope = Some(MonitorScope { map, owned });
        self.seen_revision = None;
        let foreign: Vec<Subject> = self
            .landscape
            .server_ids()
            .map(Subject::Server)
            .chain(self.landscape.service_ids().map(Subject::Service))
            .filter(|&s| !self.owns_subject(s))
            .collect();
        for subject in foreign {
            self.monitoring.unregister(subject);
        }
    }

    /// Drop the monitor scope and register fresh advisors for every
    /// landscape subject — the inverse of
    /// [`Supervisor::set_monitor_scope`], under the same contract: call
    /// before any measurements are recorded, so "fresh" and "never scoped"
    /// are the same state.
    pub fn clear_monitor_scope(&mut self) {
        self.scope = None;
        self.seen_revision = None;
        self.register_new_subjects();
    }

    /// Extend the monitor scope with a re-adopted shard. No advisors are
    /// created here — the adopter installs restored ones via
    /// [`Supervisor::install_advisor`] (or lets the next tick register
    /// fresh ones for never-measured subjects). No-op without a scope.
    pub fn adopt_shard(&mut self, shard: ShardId) {
        if let Some(scope) = &mut self.scope {
            scope.owned.insert(shard);
            self.seen_revision = None;
        }
    }

    /// True when this replica runs monitoring for `subject`: always,
    /// without a scope; with one, when the subject's shard is owned.
    /// Instances follow their host server's shard; an instance the
    /// landscape no longer knows is nobody's.
    fn owns_subject(&self, subject: Subject) -> bool {
        let Some(scope) = &self.scope else {
            return true;
        };
        let shard = match subject {
            Subject::Server(s) => scope.map.shard_of(s),
            Subject::Service(s) => scope.map.shard_of_service(s),
            Subject::Instance(i) => match self.landscape.instance(i) {
                Ok(inst) => scope.map.shard_of(inst.server),
                Err(_) => return false,
            },
        };
        scope.owned.contains(&shard)
    }

    /// Apply a measurement another replica's owner ingested: update only
    /// the replicated latest-value load view — the read-only planning
    /// input for cross-shard candidate hosts — without touching
    /// monitoring or archive state. This is the load section of a shard
    /// delta, applied exactly where `apply_remote` applies the mutation
    /// section.
    pub fn apply_remote_load(&mut self, subject: Subject, cpu: f64, mem: f64) {
        self.loads.set(subject, cpu, mem);
    }

    /// Install a pre-built advisor (the sharded plane's re-adoption path
    /// restores the dead owner's advisors from replicated deltas and
    /// installs them here).
    pub fn install_advisor(&mut self, advisor: Advisor) {
        self.monitoring.install(advisor);
    }

    /// The advisor currently monitoring `subject`, if any (delta
    /// publication snapshots its watch state).
    pub fn advisor(&self, subject: Subject) -> Option<&Advisor> {
        self.monitoring.advisor(subject)
    }

    /// Number of triggers confirmed but not yet dispatched — the sharded
    /// plane samples this around each routed measurement to tag triggers
    /// with their global arrival sequence.
    pub(crate) fn pending_trigger_count(&self) -> usize {
        self.pending_triggers.len()
    }

    /// Stamp subsequent dispatches with the issuing lease epoch (see
    /// [`ActionExecutor::set_epoch`]). The pre-sharded default is epoch 0.
    pub fn set_execution_epoch(&mut self, epoch: u64) {
        self.executor.set_epoch(epoch);
    }

    /// Fence every in-flight operation issued under a lease epoch older
    /// than `min_epoch` (see [`ActionExecutor::fence_below`]); the fenced
    /// events are also appended to the execution log. The coordination
    /// layer calls this on a deposed shard owner so its in-flight work is
    /// reconciled instead of applied.
    pub fn fence_stale_epochs(&mut self, min_epoch: u64, now: SimTime) -> Vec<ExecutionEvent> {
        let events = self.executor.fence_below(min_epoch, now);
        self.execution_log.extend(events.iter().cloned());
        events
    }

    /// Settle in-flight operations on the execution substrate: apply
    /// completed attempts, schedule retries, fence timeouts. Returns the
    /// actions that completed. With the default reliable substrate
    /// everything completes inside [`Supervisor::tick`], so `poll` is a
    /// no-op between ticks. Rejects a `now` earlier than already-processed
    /// time with [`SupervisorError::NonMonotonicTime`].
    pub fn poll(&mut self, now: SimTime) -> Result<Vec<ActionRecord>, SupervisorError> {
        self.advance_clock(now)?;
        let completed = self.settle(now);
        self.executed.extend(completed.iter().cloned());
        Ok(completed)
    }

    /// Close one monitoring interval: register monitors for new
    /// servers/services, prune state for departed entities, settle
    /// in-flight operations, evaluate heartbeats (confirmed failures run
    /// the self-healing path), run proactive forecast checks, and dispatch
    /// confirmed triggers through the fuzzy controller. Returns the actions
    /// that completed this tick. Rejects a `now` earlier than
    /// already-processed time with [`SupervisorError::NonMonotonicTime`].
    pub fn tick(&mut self, now: SimTime) -> Result<Vec<ActionRecord>, SupervisorError> {
        self.advance_clock(now)?;
        let mut completed = self.prepare_interval(now);
        // Proactive and reactive triggers flow through the same dispatch
        // path — protection mode treats them uniformly.
        for trigger in std::mem::take(&mut self.pending_triggers) {
            completed.extend(self.dispatch_inner(trigger, now));
        }
        Ok(completed)
    }

    /// The first half of [`Supervisor::tick`]: close the monitoring
    /// interval but *return* the confirmed triggers instead of dispatching
    /// them. A sharded control plane uses this to merge the trigger
    /// streams of all shards and broker each dispatch through the lease
    /// table ([`Supervisor::dispatch_trigger`]); a standalone supervisor
    /// has no reason to call it.
    pub fn tick_collect(
        &mut self,
        now: SimTime,
    ) -> Result<(Vec<ActionRecord>, Vec<PendingTrigger>), SupervisorError> {
        self.advance_clock(now)?;
        let completed = self.prepare_interval(now);
        Ok((completed, std::mem::take(&mut self.pending_triggers)))
    }

    /// The second half of [`Supervisor::tick`]: plan and dispatch one
    /// confirmed trigger. `tick(now)` is equivalent to `tick_collect(now)`
    /// followed by `dispatch_trigger` over every returned trigger, in
    /// order.
    pub fn dispatch_trigger(
        &mut self,
        trigger: PendingTrigger,
        now: SimTime,
    ) -> Result<Vec<ActionRecord>, SupervisorError> {
        self.advance_clock(now)?;
        Ok(self.dispatch_inner(trigger, now))
    }

    /// Register/prune subjects, settle earlier dispatches, evaluate
    /// heartbeats and proactive checks — everything [`Supervisor::tick`]
    /// does before dispatching this interval's triggers.
    fn prepare_interval(&mut self, now: SimTime) -> Vec<ActionRecord> {
        // Registration and pruning only have work to do when the landscape
        // (or the monitor scope) changed since the last pass; the revision
        // gate makes quiet intervals O(1) instead of a landscape walk.
        let revision = self.landscape.revision();
        if self.seen_revision != Some(revision) {
            self.register_new_subjects();
            self.prune_departed();
            self.seen_revision = Some(revision);
        }

        // Settle operations dispatched on earlier ticks first, so a freed
        // host is visible to this tick's planning.
        let completed = self.settle(now);
        self.executed.extend(completed.iter().cloned());

        self.run_heartbeats(now);
        self.run_proactive(now);
        completed
    }

    /// Plan one confirmed trigger and (in automatic mode) dispatch it on
    /// the execution substrate; returns whatever completed.
    fn dispatch_inner(&mut self, trigger: PendingTrigger, now: SimTime) -> Vec<ActionRecord> {
        let PendingTrigger { event, forecast } = trigger;
        let mut completed = Vec::new();
        match self.controller.mode() {
            ExecutionMode::SemiAutomatic => {
                // Queueing for administrator confirmation lives in the
                // synchronous path; nothing is dispatched to the substrate.
                let outcome = match forecast {
                    // A forecast-driven trigger is planned against the
                    // predicted loads — the present ones are exactly
                    // what the forecaster says will not last.
                    Some(predicted) => {
                        let view = ForecastView::new(
                            &self.loads,
                            &self.landscape,
                            event.subject,
                            predicted,
                        );
                        self.controller
                            .handle_trigger(&event, &mut self.landscape, &view, now)
                    }
                    None => self.controller.handle_trigger(
                        &event,
                        &mut self.landscape,
                        &self.loads,
                        now,
                    ),
                };
                completed.extend(outcome.executed);
            }
            ExecutionMode::Automatic => {
                let planned = match forecast {
                    Some(predicted) => {
                        let view = ForecastView::new(
                            &self.loads,
                            &self.landscape,
                            event.subject,
                            predicted,
                        );
                        self.controller
                            .plan_trigger(&event, &self.landscape, &view, now)
                    }
                    None => self
                        .controller
                        .plan_trigger(&event, &self.landscape, &self.loads, now),
                };
                if let Some(decided) = planned.decided {
                    self.executor.dispatch(decided, now);
                    completed.extend(self.settle(now));
                }
            }
        }
        self.executed.extend(completed.iter().cloned());
        completed
    }

    /// Register monitors for servers/services added since construction
    /// (owned shards only, when a monitor scope is set).
    fn register_new_subjects(&mut self) {
        for server in self.landscape.server_ids() {
            let subject = Subject::Server(server);
            if !self.monitoring.is_registered(subject) && self.owns_subject(subject) {
                let idx = self
                    .landscape
                    .server(server)
                    .map(|s| s.performance_index)
                    .unwrap_or(1.0);
                self.monitoring
                    .register(subject, SubjectConfig::paper_defaults(idx));
            }
        }
        for service in self.landscape.service_ids() {
            let subject = Subject::Service(service);
            if !self.monitoring.is_registered(subject) && self.owns_subject(subject) {
                self.monitoring
                    .register(subject, SubjectConfig::service_defaults());
            }
        }
    }

    /// Drop recorded loads, monitors, heartbeat watches and proactive state
    /// for entities that left the landscape — a stopped instance must not
    /// keep feeding stale CPU into server selection.
    fn prune_departed(&mut self) {
        let candidates: Vec<Subject> = self
            .loads
            .subjects()
            .chain(self.heartbeats.watched())
            .collect();
        for subject in candidates {
            let departed = match subject {
                Subject::Server(s) => self.landscape.server(s).is_err(),
                Subject::Service(s) => self.landscape.service(s).is_err(),
                Subject::Instance(i) => self.landscape.instance(i).is_err(),
            };
            if departed {
                self.loads.remove(subject);
                self.monitoring.unregister(subject);
                self.heartbeats.unwatch(subject);
                self.last_proactive.remove(&subject);
            }
        }
        // Pending triggers from a departed subject are stale too.
        let landscape = &self.landscape;
        self.pending_triggers.retain(|t| match t.event.subject {
            Subject::Server(s) => landscape.server(s).is_ok(),
            Subject::Service(s) => landscape.service(s).is_ok(),
            Subject::Instance(i) => landscape.instance(i).is_ok(),
        });
    }

    /// One poll of the execution substrate; non-completion events land in
    /// the execution log, completed records are returned.
    fn settle(&mut self, now: SimTime) -> Vec<ActionRecord> {
        if self.executor.is_idle() {
            return Vec::new();
        }
        let events = self
            .executor
            .poll(now, &mut self.landscape, &mut self.controller);
        let mut completed = Vec::new();
        for event in events {
            if let ExecutionEvent::Completed { record, .. } = &event {
                completed.push(record.clone());
            }
            self.execution_log.push(event);
        }
        completed
    }

    /// Evaluate the heartbeat watch set; confirmed failures flow into the
    /// self-healing path exactly like reported ones.
    fn run_heartbeats(&mut self, now: SimTime) {
        let events = self.heartbeats.tick(now);
        for event in &events {
            if let HeartbeatEvent::Confirmed { subject, time, .. } = event {
                let kind = match *subject {
                    Subject::Server(server) => Some(FailureKind::ServerFailed(server)),
                    Subject::Instance(instance) => Some(FailureKind::InstanceCrashed(instance)),
                    // Services have no single process to fail; their
                    // instances are watched individually.
                    Subject::Service(_) => None,
                };
                if let Some(kind) = kind {
                    let failure = FailureEvent { kind, time: *time };
                    let outcome = self.controller.handle_failure(
                        &failure,
                        &mut self.landscape,
                        &self.loads,
                        now,
                    );
                    self.recovery_log.push(RecoveryRecord {
                        subject: *subject,
                        time: *time,
                        outcome,
                    });
                }
            }
        }
        self.heartbeat_log.extend(events);
    }

    /// Run proactive forecast checks over the archive (when enabled and the
    /// check cadence is due); firings become pending triggers.
    fn run_proactive(&mut self, now: SimTime) {
        let Some(proactive) = &self.proactive else {
            return;
        };
        if let Some(last) = self.last_proactive_check {
            if now.since(last) < self.proactive_every {
                return;
            }
        }
        self.last_proactive_check = Some(now);
        self.hints.expire(now);

        // Servers first, then services — deterministic check order. A
        // monitor scope restricts checks to owned subjects (foreign
        // archives are empty under delta replication and could never
        // fire anyway).
        let mut subjects: Vec<(Subject, f64)> = Vec::new();
        for server in self.landscape.server_ids() {
            if !self.landscape.is_available(server) || !self.owns_subject(Subject::Server(server)) {
                continue;
            }
            let idx = self
                .landscape
                .server(server)
                .map(|s| s.performance_index)
                .unwrap_or(1.0);
            subjects.push((Subject::Server(server), idx));
        }
        for service in self.landscape.service_ids() {
            if !self.owns_subject(Subject::Service(service)) {
                continue;
            }
            // Reserved demand converts to load against the total capacity
            // currently hosting the service.
            let capacity: f64 = self
                .landscape
                .instances_of(service)
                .iter()
                .filter_map(|&i| self.landscape.instance(i).ok())
                .filter_map(|inst| self.landscape.server(inst.server).ok())
                .map(|s| s.performance_index)
                .sum();
            let capacity = if capacity > 0.0 { capacity } else { 1.0 };
            subjects.push((Subject::Service(service), capacity));
        }

        let mut firings = Vec::new();
        for (subject, capacity) in subjects {
            if let Some(&last) = self.last_proactive.get(&subject) {
                if now.since(last) < self.proactive_cooldown {
                    continue;
                }
            }
            if let Some(firing) =
                proactive.check(&self.archive, &self.hints, subject, capacity, now)
            {
                firings.push(firing);
            }
        }
        for firing in firings {
            self.last_proactive.insert(firing.event.subject, now);
            self.pending_triggers.push(PendingTrigger {
                event: firing.event,
                forecast: Some(firing.event.average_cpu),
            });
            self.proactive_firings.push(firing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_controller::ExecutionMode;
    use autoglobe_landscape::{ActionKind, ServerSpec, ServiceKind, ServiceSpec};

    fn minimal() -> (Supervisor, ServerId, ServerId, ServiceId, InstanceId) {
        let mut landscape = Landscape::new();
        let blade = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let fi = landscape
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let instance = landscape.start_instance(fi, blade).unwrap();
        (Supervisor::new(landscape), blade, big, fi, instance)
    }

    #[test]
    fn sustained_overload_leads_to_action() {
        let (mut sup, blade, big, fi, instance) = minimal();
        let mut t = SimTime::ZERO;
        let mut all_executed = Vec::new();
        for _ in 0..15 {
            t += SimDuration::from_minutes(1);
            sup.record_server(blade, t, 0.95, 0.5);
            sup.record_instance(instance, t, 0.95);
            sup.record_service(fi, t, 0.95);
            all_executed.extend(sup.tick(t).unwrap());
        }
        assert!(
            !all_executed.is_empty(),
            "controller must act on sustained overload"
        );
        // Capacity arrived on the idle big host: either the hot instance
        // was scaled up to it, or (single-instance service) a redundant
        // instance was scaled out onto it.
        assert!(
            sup.landscape().instance(instance).unwrap().server == big
                || sup.landscape().instances_on(big).len() == 1,
            "expected capacity on the big host"
        );
        assert_eq!(sup.executed().len(), all_executed.len());
        assert!(sup.is_idle(), "reliable substrate completes inside tick");
    }

    #[test]
    fn short_peak_does_not_act() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        let mut t = SimTime::ZERO;
        // Three hot minutes, then calm.
        for minute in 0..30 {
            t += SimDuration::from_minutes(1);
            let cpu = if minute < 3 { 0.95 } else { 0.3 };
            sup.record_server(blade, t, cpu, 0.3);
            sup.record_instance(instance, t, cpu);
            sup.record_service(fi, t, cpu);
            let executed = sup.tick(t).unwrap();
            assert!(executed.is_empty(), "no action on a short peak");
        }
    }

    #[test]
    fn new_services_are_picked_up_by_monitoring() {
        let (mut sup, blade, _big, _fi, _instance) = minimal();
        let hr = sup
            .landscape_mut()
            .add_service(ServiceSpec::new("HR", ServiceKind::ApplicationServer))
            .unwrap();
        let hr_inst = sup.landscape_mut().start_instance(hr, blade).unwrap();
        sup.tick(SimTime::ZERO).unwrap(); // registers the monitor
        let mut t = SimTime::ZERO;
        let mut acted = false;
        for _ in 0..15 {
            t += SimDuration::from_minutes(1);
            sup.record_service(hr, t, 0.9);
            sup.record_instance(hr_inst, t, 0.9);
            sup.record_server(blade, t, 0.9, 0.3);
            acted |= !sup.tick(t).unwrap().is_empty();
        }
        assert!(acted, "the dynamically added service is supervised");
    }

    #[test]
    fn semi_automatic_mode_queues_through_supervisor() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        sup.controller_mut().set_mode(ExecutionMode::SemiAutomatic);
        let mut t = SimTime::ZERO;
        for _ in 0..15 {
            t += SimDuration::from_minutes(1);
            sup.record_server(blade, t, 0.95, 0.5);
            sup.record_instance(instance, t, 0.95);
            sup.record_service(fi, t, 0.95);
            sup.tick(t).unwrap();
        }
        assert!(sup.executed().is_empty());
        assert!(!sup.controller().pending().is_empty());
        let id = sup.controller().pending()[0].id;
        // Split borrow: confirm needs controller + landscape.
        let Supervisor {
            landscape,
            controller,
            ..
        } = &mut sup;
        let record = controller.confirm_pending(id, landscape, t).unwrap();
        assert!(matches!(
            record.action.kind(),
            ActionKind::ScaleUp | ActionKind::ScaleOut | ActionKind::Move
        ));
    }

    #[test]
    fn archive_accumulates_history() {
        let (mut sup, blade, _big, _fi, _instance) = minimal();
        for minute in 0..60 {
            sup.record_server(blade, SimTime::from_minutes(minute), 0.5, 0.2);
        }
        let avg = sup
            .archive()
            .average_cpu(
                Subject::Server(blade),
                SimTime::ZERO,
                SimTime::from_minutes(60),
            )
            .unwrap();
        assert!((avg - 0.5).abs() < 1e-9);
    }

    /// The default configuration must reproduce the original synchronous
    /// facade bit for bit: identical executed records, identical landscape,
    /// identical controller log against a hand-wired monitoring →
    /// `handle_trigger` reference loop over the same trace.
    #[test]
    fn default_config_matches_synchronous_reference() {
        // --- reference: hand-wired monitoring + synchronous controller ----
        let mut landscape = Landscape::new();
        let blade = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let _big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let fi = landscape
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let instance = landscape.start_instance(fi, blade).unwrap();

        let mut monitoring = LoadMonitoringSystem::new();
        for server in landscape.server_ids() {
            let idx = landscape.server(server).unwrap().performance_index;
            monitoring.register(Subject::Server(server), SubjectConfig::paper_defaults(idx));
        }
        for service in landscape.service_ids() {
            monitoring.register(Subject::Service(service), SubjectConfig::service_defaults());
        }
        let mut controller = AutoGlobeController::new();
        let mut loads = RecordedLoads::default();
        let mut ref_executed = Vec::new();

        // --- candidate: the supervisor with the default config ------------
        let (mut sup, s_blade, _s_big, s_fi, s_instance) = minimal();
        assert_eq!((blade, fi), (s_blade, s_fi));

        let trace = |minute: u64| -> (f64, f64) {
            // Overload for 20 minutes, calm for 10, hot again.
            if !(20..30).contains(&minute) {
                (0.95, 0.5)
            } else {
                (0.25, 0.2)
            }
        };
        let mut t = SimTime::ZERO;
        for minute in 0..45 {
            t += SimDuration::from_minutes(1);
            let (cpu, mem) = trace(minute);

            // Reference loop.
            let mut triggers = Vec::new();
            for (subject, scpu, smem) in [
                (Subject::Server(blade), cpu, mem),
                (Subject::Instance(instance), cpu, 0.0),
                (Subject::Service(fi), cpu, 0.0),
            ] {
                loads.set(subject, scpu, smem);
                if monitoring.is_registered(subject) {
                    if let Some(trigger) =
                        monitoring.observe(subject, LoadSample::new(t, scpu, smem))
                    {
                        triggers.push(trigger);
                    }
                }
            }
            for trigger in triggers {
                let outcome = controller.handle_trigger(&trigger, &mut landscape, &loads, t);
                ref_executed.extend(outcome.executed);
            }

            // Supervisor.
            sup.record_server(s_blade, t, cpu, mem);
            sup.record_instance(s_instance, t, cpu);
            sup.record_service(s_fi, t, cpu);
            sup.tick(t).unwrap();
        }

        assert_eq!(sup.executed(), &ref_executed[..], "identical records");
        assert_eq!(
            sup.landscape().instance(s_instance).unwrap().server,
            landscape.instance(instance).unwrap().server,
            "identical final allocation"
        );
        assert_eq!(
            sup.landscape().num_instances(),
            landscape.num_instances(),
            "identical instance count"
        );
        let ref_log: Vec<String> = controller
            .drain_log()
            .iter()
            .map(|e| e.to_string())
            .collect();
        let sup_log: Vec<String> = sup.drain_events().iter().map(|e| e.to_string()).collect();
        assert_eq!(sup_log, ref_log, "identical controller event log");
    }

    #[test]
    fn stopped_instance_is_pruned_from_loads_and_watches() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        let t = SimTime::from_minutes(1);
        sup.record_instance(instance, t, 0.97);
        sup.beat(Subject::Instance(instance), t).unwrap();
        assert!(sup.heartbeats.is_watched(Subject::Instance(instance)));
        assert!((sup.loads.cpu(Subject::Instance(instance)) - 0.97).abs() < 1e-12);

        // Keep a second instance so the service stays alive, then stop the
        // first deliberately.
        let other = sup.landscape_mut().start_instance(fi, blade).unwrap();
        sup.landscape_mut().stop_instance(instance).unwrap();
        sup.tick(SimTime::from_minutes(2)).unwrap();

        assert_eq!(
            sup.loads.cpu(Subject::Instance(instance)),
            0.0,
            "stale instance load must not feed server selection"
        );
        assert!(
            !sup.heartbeats.is_watched(Subject::Instance(instance)),
            "stopped instance must not accrue heartbeat misses"
        );
        assert!(!sup.monitoring.is_registered(Subject::Instance(instance)));
        // The survivor is untouched.
        assert!(sup.landscape().instance(other).is_ok());
    }

    #[test]
    fn repairing_unknown_or_healthy_server_fabricates_nothing() {
        let (mut sup, blade, _big, _fi, _instance) = minimal();
        let t = SimTime::from_minutes(5);

        // Unknown server: an error, not a Repaired event.
        let unknown = ServerId::new(99);
        assert!(sup.report_server_repaired(unknown, t).is_err());

        // Never-failed server: skipped, nothing logged.
        assert!(sup.landscape().is_available(blade));
        let outcome = sup.report_server_repaired(blade, t).unwrap();
        assert!(outcome.is_none(), "healthy server needs no repair");
        assert!(
            sup.drain_events().is_empty(),
            "no fabricated Repaired event"
        );

        // A genuinely failed server still produces the event.
        sup.report_server_failure(blade, t);
        let repaired = sup
            .report_server_repaired(blade, SimTime::from_minutes(30))
            .unwrap();
        assert!(matches!(repaired, Some(ControllerEvent::Repaired { .. })));
        assert!(sup.landscape().is_available(blade));
    }

    #[test]
    fn missed_beats_confirm_failure_through_the_self_healing_path() {
        let (mut sup, blade, big, fi, instance) = minimal();
        let subject = Subject::Server(blade);
        let mut t = SimTime::ZERO;
        // Healthy beats for 5 minutes.
        for _ in 0..5 {
            t += SimDuration::from_minutes(1);
            assert!(sup.beat(subject, t).unwrap());
            sup.record_server(blade, t, 0.4, 0.3);
            sup.record_instance(instance, t, 0.4);
            sup.record_service(fi, t, 0.4);
            sup.tick(t).unwrap();
        }
        assert!(sup.drain_heartbeat_events().is_empty());

        // Silence: 3 misses suspect, 2 more confirm (defaults).
        let mut confirmed_at = None;
        for _ in 0..6 {
            t += SimDuration::from_minutes(1);
            sup.tick(t).unwrap();
            for e in sup.drain_heartbeat_events() {
                if let HeartbeatEvent::Confirmed { time, .. } = e {
                    confirmed_at = Some(time);
                }
            }
        }
        let confirmed_at = confirmed_at.expect("failure must be confirmed");
        // Beats stopped after minute 5; first missed tick is minute 6;
        // confirmation lands (3 + 2 − 1) ticks later, at minute 10.
        assert_eq!(confirmed_at, SimTime::from_minutes(10));
        // The self-healing path ran: host out of the pool, instance
        // restarted on the big server.
        assert!(!sup.landscape().is_available(blade));
        assert!(sup.landscape().instance(instance).is_err());
        assert_eq!(sup.landscape().instances_on(big).len(), 1);
    }

    #[test]
    fn reconciled_suspect_causes_no_double_start() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        let subject = Subject::Server(blade);
        let mut t = SimTime::ZERO;
        for _ in 0..5 {
            t += SimDuration::from_minutes(1);
            sup.beat(subject, t).unwrap();
            sup.record_server(blade, t, 0.4, 0.3);
            sup.record_instance(instance, t, 0.4);
            sup.record_service(fi, t, 0.4);
            sup.tick(t).unwrap();
        }
        let before = sup.landscape().num_instances();
        // Three silent ticks raise the suspicion…
        for _ in 0..3 {
            t += SimDuration::from_minutes(1);
            sup.tick(t).unwrap();
        }
        assert_eq!(sup.suspected(), vec![subject]);
        // …then heartbeats resume inside the confirmation window.
        t += SimDuration::from_minutes(1);
        sup.beat(subject, t).unwrap();
        sup.tick(t).unwrap();
        let events = sup.drain_heartbeat_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, HeartbeatEvent::Reconciled { .. })));
        assert!(!events
            .iter()
            .any(|e| matches!(e, HeartbeatEvent::Confirmed { .. })));
        assert!(sup.suspected().is_empty());
        assert_eq!(
            sup.landscape().num_instances(),
            before,
            "no double-start after a false alarm"
        );
        assert!(sup.landscape().is_available(blade));
    }

    #[test]
    fn zombie_beat_for_departed_instance_is_fenced() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        let _other = sup.landscape_mut().start_instance(fi, blade).unwrap();
        sup.landscape_mut().stop_instance(instance).unwrap();
        assert!(
            !sup.beat(Subject::Instance(instance), SimTime::from_minutes(1))
                .unwrap(),
            "a beat from a stopped instance must be fenced"
        );
    }

    #[test]
    fn proactive_forecast_fires_ahead_of_the_daily_surge() {
        let mut landscape = Landscape::new();
        let blade = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let _big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let fi = landscape
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let _instance = landscape.start_instance(fi, blade).unwrap();
        let mut sup = Supervisor::with_config(
            landscape,
            SupervisorConfig {
                proactive: Some(ProactiveConfig::default()),
                ..SupervisorConfig::default()
            },
        );

        // Four days of a hard daily step (hot 09:00–17:00) so confidence is
        // established, then check the morning of day 5 at 08:30: the surge
        // is an hour away, load is still cold — only a forecast can fire.
        for minute in 0..4 * 24 * 60 {
            let t = SimTime::from_minutes(minute);
            let load = if (9.0..17.0).contains(&t.hour_of_day()) {
                0.9
            } else {
                0.2
            };
            sup.record_server(blade, t, load, 0.2);
        }
        let now = SimTime::from_hours(4 * 24 + 8) + SimDuration::from_minutes(30);
        sup.tick(now).unwrap();
        // The firing is queued this tick and dispatched on the next.
        assert!(
            !sup.proactive_firings().is_empty(),
            "forecast must fire before the surge"
        );
        let firing = sup.proactive_firings()[0];
        assert_eq!(firing.event.subject, Subject::Server(blade));
        assert!(firing.lead() > SimDuration::ZERO, "positive lead time");

        // Cooldown: an immediate re-check must not fire again for the same
        // subject.
        let count = sup.proactive_firings().len();
        sup.tick(now + SimDuration::from_minutes(10)).unwrap();
        assert_eq!(
            sup.proactive_firings()
                .iter()
                .filter(|f| f.event.subject == Subject::Server(blade))
                .count(),
            count,
            "cooldown suppresses repeat firings"
        );
    }

    #[test]
    fn time_running_backwards_is_a_typed_error() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        let t = SimTime::from_minutes(10);
        sup.record_server(blade, t, 0.5, 0.3);
        sup.tick(t).unwrap();
        // Equal timestamps are fine (beat + tick inside one interval) …
        assert!(sup.tick(t).is_ok());
        assert!(sup.beat(Subject::Instance(instance), t).is_ok());
        assert!(sup.poll(t).is_ok());
        // … but every entry point rejects a clock that ran backwards.
        let early = SimTime::from_minutes(9);
        let err = SupervisorError::NonMonotonicTime {
            now: early,
            last: t,
        };
        assert_eq!(sup.tick(early).unwrap_err(), err);
        assert_eq!(sup.poll(early).unwrap_err(), err);
        assert_eq!(
            sup.beat(Subject::Instance(instance), early).unwrap_err(),
            err
        );
        assert_eq!(sup.dispatch_trigger_error(early), err);
        // The rejected call mutated nothing: the clock still reads `t`, and
        // the supervisor keeps working from there.
        assert!(sup.tick(t).is_ok());
        let _ = fi;
    }

    impl Supervisor {
        /// Test helper: a stale `dispatch_trigger` must fail the same way.
        fn dispatch_trigger_error(&mut self, now: SimTime) -> SupervisorError {
            let trigger = PendingTrigger {
                event: TriggerEvent {
                    subject: Subject::Server(ServerId::new(0)),
                    kind: autoglobe_monitor::TriggerKind::ServerOverloaded,
                    time: now,
                    average_cpu: 0.9,
                    average_mem: 0.5,
                },
                forecast: None,
            };
            self.dispatch_trigger(trigger, now).unwrap_err()
        }
    }

    #[test]
    fn invalid_supervisor_configs_are_rejected() {
        // The defaults are valid.
        assert!(SupervisorConfig::default().validate().is_ok());

        // Proactive cadence of zero would re-run the forecaster every tick
        // with no interval semantics.
        let cfg = SupervisorConfig {
            proactive: Some(ProactiveConfig::default()),
            proactive_every: SimDuration::ZERO,
            ..SupervisorConfig::default()
        };
        assert!(cfg.validate().is_err());

        // A cooldown shorter than the cadence is unenforceable.
        let cfg = SupervisorConfig {
            proactive: Some(ProactiveConfig::default()),
            proactive_every: SimDuration::from_minutes(30),
            proactive_cooldown: SimDuration::from_minutes(10),
            ..SupervisorConfig::default()
        };
        assert!(cfg.validate().is_err());

        // Invalid nested executor / heartbeat configs surface too.
        let cfg = SupervisorConfig {
            executor: ExecutorConfig {
                failure_probability: 1.5,
                ..ExecutorConfig::default()
            },
            ..SupervisorConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid supervisor config")]
    fn with_config_panics_on_invalid_config() {
        let cfg = SupervisorConfig {
            proactive: Some(ProactiveConfig::default()),
            proactive_every: SimDuration::ZERO,
            ..SupervisorConfig::default()
        };
        let _ = Supervisor::with_config(Landscape::new(), cfg);
    }
}
