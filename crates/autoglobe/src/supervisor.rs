//! A ready-wired supervision loop: measurements in, actions out.
//!
//! [`Supervisor`] bundles the pieces an integrator would otherwise wire by
//! hand — a [`LoadMonitoringSystem`] with the paper's thresholds, a
//! [`LoadArchive`], and the [`AutoGlobeController`] — around a
//! [`Landscape`]. Feed it measurements with the `record_*` methods and call
//! [`Supervisor::tick`] periodically; confirmed triggers flow into the fuzzy
//! controller, whose actions mutate the landscape.

use autoglobe_controller::RecoveryOutcome;
use autoglobe_controller::{
    ActionRecord, AutoGlobeController, ControllerConfig, ControllerEvent, LoadView, RuleBases,
};
use autoglobe_landscape::{InstanceId, Landscape, ServerId, ServiceId};
use autoglobe_monitor::{
    FailureEvent, FailureKind, LoadArchive, LoadMonitoringSystem, LoadSample, SimDuration, SimTime,
    Subject, SubjectConfig, TriggerEvent,
};
use std::collections::BTreeMap;

/// Latest-value load view fed by the supervisor's recorded measurements.
#[derive(Debug, Clone, Default)]
struct RecordedLoads {
    cpu: BTreeMap<Subject, f64>,
    mem: BTreeMap<Subject, f64>,
}

impl LoadView for RecordedLoads {
    fn cpu(&self, subject: Subject) -> f64 {
        self.cpu.get(&subject).copied().unwrap_or(0.0)
    }
    fn mem(&self, subject: Subject) -> f64 {
        self.mem.get(&subject).copied().unwrap_or(0.0)
    }
}

/// The ready-wired AutoGlobe supervision loop.
#[derive(Debug)]
pub struct Supervisor {
    landscape: Landscape,
    controller: AutoGlobeController,
    monitoring: LoadMonitoringSystem,
    archive: LoadArchive,
    loads: RecordedLoads,
    pending_triggers: Vec<TriggerEvent>,
    executed: Vec<ActionRecord>,
}

impl Supervisor {
    /// Supervise `landscape` with the paper's default rule bases, monitor
    /// thresholds and controller configuration.
    pub fn new(landscape: Landscape) -> Self {
        Self::with_config(
            landscape,
            RuleBases::paper_defaults(),
            ControllerConfig::default(),
        )
    }

    /// Supervise with explicit rule bases and controller configuration.
    pub fn with_config(
        landscape: Landscape,
        rule_bases: RuleBases,
        config: ControllerConfig,
    ) -> Self {
        let mut monitoring = LoadMonitoringSystem::new();
        for server in landscape.server_ids() {
            let idx = landscape
                .server(server)
                .map(|s| s.performance_index)
                .unwrap_or(1.0);
            monitoring.register(Subject::Server(server), SubjectConfig::paper_defaults(idx));
        }
        for service in landscape.service_ids() {
            monitoring.register(Subject::Service(service), SubjectConfig::service_defaults());
        }
        Supervisor {
            landscape,
            controller: AutoGlobeController::with_rule_bases(rule_bases, config),
            monitoring,
            archive: LoadArchive::new(SimDuration::from_minutes(1)),
            loads: RecordedLoads::default(),
            pending_triggers: Vec::new(),
            executed: Vec::new(),
        }
    }

    /// The supervised landscape.
    pub fn landscape(&self) -> &Landscape {
        &self.landscape
    }

    /// Mutable access for administrative changes (registering servers and
    /// services). Newly added entities are picked up by monitoring on the
    /// next [`Supervisor::tick`].
    pub fn landscape_mut(&mut self) -> &mut Landscape {
        &mut self.landscape
    }

    /// The controller (to switch execution modes, confirm pending actions,
    /// or inspect the protection registry).
    pub fn controller(&self) -> &AutoGlobeController {
        &self.controller
    }

    /// Mutable controller access.
    pub fn controller_mut(&mut self) -> &mut AutoGlobeController {
        &mut self.controller
    }

    /// The historic load archive.
    pub fn archive(&self) -> &LoadArchive {
        &self.archive
    }

    /// Every action executed so far.
    pub fn executed(&self) -> &[ActionRecord] {
        &self.executed
    }

    /// Drain and return the controller's event log.
    pub fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.controller.drain_log()
    }

    /// Record a server measurement.
    pub fn record_server(&mut self, server: ServerId, time: SimTime, cpu: f64, mem: f64) {
        self.record(Subject::Server(server), time, cpu, mem);
    }

    /// Record a service (aggregate) measurement.
    pub fn record_service(&mut self, service: ServiceId, time: SimTime, cpu: f64) {
        self.record(Subject::Service(service), time, cpu, 0.0);
    }

    /// Record an instance measurement.
    pub fn record_instance(&mut self, instance: InstanceId, time: SimTime, cpu: f64) {
        self.record(Subject::Instance(instance), time, cpu, 0.0);
    }

    fn record(&mut self, subject: Subject, time: SimTime, cpu: f64, mem: f64) {
        self.loads.cpu.insert(subject, cpu);
        self.loads.mem.insert(subject, mem);
        self.archive.record(subject, time, cpu, mem);
        // Instances are not registered as monitored subjects by default
        // (triggers come from servers and services), but measurements for
        // registered ones flow through.
        if self.monitoring.is_registered(subject) {
            if let Some(trigger) = self
                .monitoring
                .observe(subject, LoadSample::new(time, cpu, mem))
            {
                self.pending_triggers.push(trigger);
            }
        }
    }

    /// Report a crashed instance; the self-healing path restarts it
    /// immediately (no watch time — the process is already gone).
    pub fn report_instance_crash(&mut self, instance: InstanceId, now: SimTime) -> RecoveryOutcome {
        let event = FailureEvent {
            kind: FailureKind::InstanceCrashed(instance),
            time: now,
        };
        self.controller
            .handle_failure(&event, &mut self.landscape, &self.loads, now)
    }

    /// Report a failed host; it is marked unavailable and all its instances
    /// restart elsewhere.
    pub fn report_server_failure(&mut self, server: ServerId, now: SimTime) -> RecoveryOutcome {
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(server),
            time: now,
        };
        self.controller
            .handle_failure(&event, &mut self.landscape, &self.loads, now)
    }

    /// Mark a previously failed host repaired: it rejoins the pool and the
    /// controller logs a [`ControllerEvent::Repaired`] for the event view.
    pub fn report_server_repaired(&mut self, server: ServerId, now: SimTime) -> ControllerEvent {
        let _ = self.landscape.set_available(server, true);
        self.controller.note_repaired(server, now)
    }

    /// Register monitors for any servers/services added since construction,
    /// dispatch confirmed triggers to the fuzzy controller, and execute its
    /// decisions. Returns the actions executed this tick.
    pub fn tick(&mut self, now: SimTime) -> Vec<ActionRecord> {
        for server in self.landscape.server_ids() {
            let subject = Subject::Server(server);
            if !self.monitoring.is_registered(subject) {
                let idx = self
                    .landscape
                    .server(server)
                    .map(|s| s.performance_index)
                    .unwrap_or(1.0);
                self.monitoring
                    .register(subject, SubjectConfig::paper_defaults(idx));
            }
        }
        for service in self.landscape.service_ids() {
            let subject = Subject::Service(service);
            if !self.monitoring.is_registered(subject) {
                self.monitoring
                    .register(subject, SubjectConfig::service_defaults());
            }
        }

        let triggers = std::mem::take(&mut self.pending_triggers);
        let mut executed = Vec::new();
        for trigger in triggers {
            let outcome =
                self.controller
                    .handle_trigger(&trigger, &mut self.landscape, &self.loads, now);
            executed.extend(outcome.executed);
        }
        self.executed.extend(executed.iter().cloned());
        executed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_controller::ExecutionMode;
    use autoglobe_landscape::{ActionKind, ServerSpec, ServiceKind, ServiceSpec};

    fn minimal() -> (Supervisor, ServerId, ServerId, ServiceId, InstanceId) {
        let mut landscape = Landscape::new();
        let blade = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let fi = landscape
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let instance = landscape.start_instance(fi, blade).unwrap();
        (Supervisor::new(landscape), blade, big, fi, instance)
    }

    #[test]
    fn sustained_overload_leads_to_action() {
        let (mut sup, blade, big, fi, instance) = minimal();
        let mut t = SimTime::ZERO;
        let mut all_executed = Vec::new();
        for _ in 0..15 {
            t += SimDuration::from_minutes(1);
            sup.record_server(blade, t, 0.95, 0.5);
            sup.record_instance(instance, t, 0.95);
            sup.record_service(fi, t, 0.95);
            all_executed.extend(sup.tick(t));
        }
        assert!(
            !all_executed.is_empty(),
            "controller must act on sustained overload"
        );
        // Capacity arrived on the idle big host: either the hot instance
        // was scaled up to it, or (single-instance service) a redundant
        // instance was scaled out onto it.
        assert!(
            sup.landscape().instance(instance).unwrap().server == big
                || sup.landscape().instances_on(big).len() == 1,
            "expected capacity on the big host"
        );
        assert_eq!(sup.executed().len(), all_executed.len());
    }

    #[test]
    fn short_peak_does_not_act() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        let mut t = SimTime::ZERO;
        // Three hot minutes, then calm.
        for minute in 0..30 {
            t += SimDuration::from_minutes(1);
            let cpu = if minute < 3 { 0.95 } else { 0.3 };
            sup.record_server(blade, t, cpu, 0.3);
            sup.record_instance(instance, t, cpu);
            sup.record_service(fi, t, cpu);
            let executed = sup.tick(t);
            assert!(executed.is_empty(), "no action on a short peak");
        }
    }

    #[test]
    fn new_services_are_picked_up_by_monitoring() {
        let (mut sup, blade, _big, _fi, _instance) = minimal();
        let hr = sup
            .landscape_mut()
            .add_service(ServiceSpec::new("HR", ServiceKind::ApplicationServer))
            .unwrap();
        let hr_inst = sup.landscape_mut().start_instance(hr, blade).unwrap();
        sup.tick(SimTime::ZERO); // registers the monitor
        let mut t = SimTime::ZERO;
        let mut acted = false;
        for _ in 0..15 {
            t += SimDuration::from_minutes(1);
            sup.record_service(hr, t, 0.9);
            sup.record_instance(hr_inst, t, 0.9);
            sup.record_server(blade, t, 0.9, 0.3);
            acted |= !sup.tick(t).is_empty();
        }
        assert!(acted, "the dynamically added service is supervised");
    }

    #[test]
    fn semi_automatic_mode_queues_through_supervisor() {
        let (mut sup, blade, _big, fi, instance) = minimal();
        sup.controller_mut().set_mode(ExecutionMode::SemiAutomatic);
        let mut t = SimTime::ZERO;
        for _ in 0..15 {
            t += SimDuration::from_minutes(1);
            sup.record_server(blade, t, 0.95, 0.5);
            sup.record_instance(instance, t, 0.95);
            sup.record_service(fi, t, 0.95);
            sup.tick(t);
        }
        assert!(sup.executed().is_empty());
        assert!(!sup.controller().pending().is_empty());
        let id = sup.controller().pending()[0].id;
        // Split borrow: confirm needs controller + landscape.
        let Supervisor {
            landscape,
            controller,
            ..
        } = &mut sup;
        let record = controller.confirm_pending(id, landscape, t).unwrap();
        assert!(matches!(
            record.action.kind(),
            ActionKind::ScaleUp | ActionKind::ScaleOut | ActionKind::Move
        ));
    }

    #[test]
    fn archive_accumulates_history() {
        let (mut sup, blade, _big, _fi, _instance) = minimal();
        for minute in 0..60 {
            sup.record_server(blade, SimTime::from_minutes(minute), 0.5, 0.2);
        }
        let avg = sup
            .archive()
            .average_cpu(
                Subject::Server(blade),
                SimTime::ZERO,
                SimTime::from_minutes(60),
            )
            .unwrap();
        assert!((avg - 0.5).abs() < 1e-9);
    }
}
