//! One front door for every run harness.
//!
//! The three harnesses used to have three divergent entry points —
//! `SupervisedRun::new(env, &sim, supervisor)`, `ChaosRun::new(env, &sim)`
//! and `ShardedRun::new(env, &sim, supervisor, shards, jobs, chaos)` —
//! each deriving its supervisor wiring slightly differently.
//! [`RunBuilder`] unifies them: pick a scenario (a paper [`Scenario`] or a
//! production-day [`ScenarioSpec`] from the catalog), layer on chaos,
//! proactive triggering or sharding, and finish with the terminal that
//! names the harness you want:
//!
//! ```
//! use autoglobe::prelude::*;
//!
//! // The paper's constrained-mobility figure run, 4 simulated hours.
//! let metrics = RunBuilder::new(Scenario::ConstrainedMobility)
//!     .hours(4)
//!     .supervised()
//!     .run();
//! assert!(metrics.total_demand > 0.0);
//!
//! // A production-day scenario from the catalog, on a 2-shard plane.
//! let spec = ScenarioSpec::lookup("flash-crowd").unwrap();
//! let (metrics, _stats) = RunBuilder::new(spec).hours(2).shards(2).sharded().run();
//! assert!(metrics.total_demand > 0.0);
//! ```
//!
//! Every terminal reproduces its legacy constructor bit for bit: the
//! supervisor config defaults to the simulation's controller settings, and
//! when [`SimConfig::execution`] is set the executor seed derives from
//! `sim.seed` through the same SplitMix64 chain the chaos harness and the
//! simulator use — so a migrated call site regenerates byte-identical
//! result files.

use crate::harness::{chaos_supervisor_config, ChaosRun, SupervisedRun};
use crate::sharded::{ReplicationMode, ShardChaos, ShardedRun};
use crate::supervisor::SupervisorConfig;
use autoglobe_controller::ExecutorConfig;
use autoglobe_forecast::ProactiveConfig;
use autoglobe_monitor::SimDuration;
use autoglobe_rng::splitmix64;
use autoglobe_simulator::sap::SapEnvironment;
use autoglobe_simulator::{
    build_environment, FailureInjection, HeartbeatDetection, ScenarioSpec, SimConfig,
};

/// The paper's default operating point: +15 % users over Table 4.
const DEFAULT_MULTIPLIER: f64 = 1.15;

/// Builder unifying [`SupervisedRun`], [`ChaosRun`] and [`ShardedRun`]
/// behind one API — see the [module docs](self).
#[derive(Debug, Clone)]
pub struct RunBuilder {
    spec: ScenarioSpec,
    sim: SimConfig,
    env: Option<SapEnvironment>,
    supervisor: Option<SupervisorConfig>,
    proactive: Option<ProactiveConfig>,
    shards: usize,
    plane_jobs: usize,
    replication: Option<ReplicationMode>,
    shard_chaos: ShardChaos,
}

impl RunBuilder {
    /// Start from a scenario: a paper [`autoglobe_simulator::Scenario`]
    /// (identity composition) or any [`ScenarioSpec`] — e.g. from
    /// [`ScenarioSpec::lookup`] or [`ScenarioSpec::catalog`]. The
    /// simulation defaults to the paper setup at +15 % users, 80 h, the
    /// paper seed.
    pub fn new(spec: impl Into<ScenarioSpec>) -> Self {
        let spec = spec.into();
        let sim = SimConfig::paper(spec.base, DEFAULT_MULTIPLIER);
        RunBuilder {
            spec,
            sim,
            env: None,
            supervisor: None,
            proactive: None,
            shards: 1,
            plane_jobs: 1,
            replication: None,
            shard_chaos: ShardChaos::none(),
        }
    }

    /// Replace the scenario (keeps every other knob; the simulation's
    /// scenario base follows the new spec).
    pub fn scenario(mut self, spec: impl Into<ScenarioSpec>) -> Self {
        self.spec = spec.into();
        self.sim.scenario = self.spec.base;
        self
    }

    /// Replace the whole simulation config (scenario must match the
    /// spec's base — checked at the terminal).
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Use a prebuilt environment instead of
    /// [`build_environment`]`(spec.base)` — e.g. a synthetic scale
    /// landscape.
    pub fn environment(mut self, env: SapEnvironment) -> Self {
        self.env = Some(env);
        self
    }

    /// User multiplier over the Table 4 populations.
    pub fn multiplier(mut self, m: f64) -> Self {
        self.sim = self.sim.with_multiplier(m);
        self
    }

    /// Horizon in simulated hours.
    pub fn hours(mut self, hours: u64) -> Self {
        self.sim = self.sim.with_duration(SimDuration::from_hours(hours));
        self
    }

    /// Master seed (workload jitter, failure dice, derived executor and
    /// heartbeat-loss streams).
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim = self.sim.with_seed(seed);
        self
    }

    /// Worker threads for the engine's per-server phase.
    pub fn inner_jobs(mut self, inner_jobs: usize) -> Self {
        self.sim = self.sim.with_inner_jobs(inner_jobs);
        self
    }

    /// Enable chaos: ground-truth failure injection plus the heartbeat
    /// detection that measures it.
    pub fn chaos(mut self, failures: FailureInjection, heartbeats: HeartbeatDetection) -> Self {
        self.sim = self.sim.with_failures(failures).with_heartbeats(heartbeats);
        self
    }

    /// Heartbeat detection tuning alone (scheduled-event scenarios need a
    /// detector but no dice).
    pub fn heartbeats(mut self, heartbeats: HeartbeatDetection) -> Self {
        self.sim = self.sim.with_heartbeats(heartbeats);
        self
    }

    /// Fallible asynchronous execution substrate; its seed derives from
    /// the master seed unless a full [`RunBuilder::supervisor`] override
    /// is given.
    pub fn execution(mut self, execution: ExecutorConfig) -> Self {
        self.sim = self.sim.with_execution(execution);
        self
    }

    /// Forecast-driven proactive triggering (applied on top of whatever
    /// supervisor config the terminal derives).
    pub fn proactive(mut self, proactive: ProactiveConfig) -> Self {
        self.proactive = Some(proactive);
        self
    }

    /// Full supervisor-config override: the terminal uses it verbatim
    /// (plus [`RunBuilder::proactive`], if set) instead of deriving one
    /// from the simulation config.
    pub fn supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Shard count for [`RunBuilder::sharded`] (default 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Scoped-thread fan-out of the sharded plane (default 1).
    pub fn plane_jobs(mut self, jobs: usize) -> Self {
        self.plane_jobs = jobs;
        self
    }

    /// Replication mode of the sharded plane (default: the plane's own
    /// default, delta).
    pub fn replication(mut self, mode: ReplicationMode) -> Self {
        self.replication = Some(mode);
        self
    }

    /// Shard-plane chaos (random host failures + owner-kill schedule) for
    /// [`RunBuilder::sharded`].
    pub fn shard_chaos(mut self, chaos: ShardChaos) -> Self {
        self.shard_chaos = chaos;
        self
    }

    /// The supervisor config a terminal uses: the explicit override, or
    /// one derived from the simulation config exactly like the legacy
    /// call sites did (controller settings from `sim.controller`; when an
    /// execution substrate is configured, its seed is the first SplitMix64
    /// draw of `sim.seed ^ 0x9E37_79B9_7F4A_7C15` — the chain the chaos
    /// harness and the simulator share).
    fn effective_supervisor(&self) -> SupervisorConfig {
        let mut config = match &self.supervisor {
            Some(config) => config.clone(),
            None => {
                let mut config = SupervisorConfig {
                    controller: self.sim.controller,
                    ..SupervisorConfig::default()
                };
                if let Some(execution) = &self.sim.execution {
                    config.executor = execution.clone();
                    let mut state = self.sim.seed ^ 0x9E37_79B9_7F4A_7C15;
                    config.executor_seed = splitmix64(&mut state);
                }
                config
            }
        };
        if let Some(proactive) = self.proactive {
            config.proactive = Some(proactive);
        }
        config
    }

    fn take_env(env: &mut Option<SapEnvironment>, spec: &ScenarioSpec) -> SapEnvironment {
        env.take().unwrap_or_else(|| build_environment(spec.base))
    }

    fn check_scenario(&self) {
        assert_eq!(
            self.sim.scenario, self.spec.base,
            "simulation config scenario must match the spec's base"
        );
    }

    /// Build a [`SupervisedRun`] — the ideal-conditions harness (reliable
    /// hosts, optional async execution and proactive triggering).
    ///
    /// # Panics
    /// Panics when the scenario schedules infrastructure events (kills or
    /// drains): those need a failure-capable harness — use
    /// [`RunBuilder::chaos_run`] or [`RunBuilder::sharded`].
    pub fn supervised(mut self) -> SupervisedRun {
        self.check_scenario();
        assert!(
            !self.spec.has_events(),
            "scenario '{}' schedules infrastructure events; \
             drive it with .chaos_run() or .sharded()",
            self.spec.name
        );
        let supervisor = self.effective_supervisor();
        let env = Self::take_env(&mut self.env, &self.spec);
        let modulation = Some(self.spec.modulation(&env.workloads));
        SupervisedRun::assemble(env, &self.sim, supervisor, modulation)
    }

    /// Build a [`ChaosRun`] — ground-truth failures (dice and/or the
    /// scenario's scheduled kills and drains) detected through lossy
    /// heartbeats. Heartbeat detection defaults to the standard
    /// suspect/confirm protocol (3 misses, 2 confirmations, lossless) when
    /// not configured.
    pub fn chaos_run(mut self) -> ChaosRun {
        self.check_scenario();
        if self.sim.heartbeats.is_none() {
            self.sim = self.sim.with_heartbeats(HeartbeatDetection {
                miss_threshold: 3,
                confirm_after: 2,
                loss_probability: 0.0,
            });
        }
        let supervisor = match &self.supervisor {
            Some(_) => self.effective_supervisor(),
            None => {
                let (mut config, _) = chaos_supervisor_config(&self.sim);
                if let Some(proactive) = self.proactive {
                    config.proactive = Some(proactive);
                }
                config
            }
        };
        let env = Self::take_env(&mut self.env, &self.spec);
        let modulation = Some(self.spec.modulation(&env.workloads));
        ChaosRun::assemble(env, &self.sim, supervisor, modulation, self.spec.schedule())
    }

    /// Build a [`ShardedRun`] — the scenario driven through an N-shard
    /// control plane, with optional shard chaos and the scenario's
    /// scheduled events replayed through the plane's public API.
    pub fn sharded(mut self) -> ShardedRun {
        self.check_scenario();
        let supervisor = self.effective_supervisor();
        let env = Self::take_env(&mut self.env, &self.spec);
        let modulation = Some(self.spec.modulation(&env.workloads));
        let run = ShardedRun::assemble(
            env,
            &self.sim,
            supervisor,
            self.shards,
            self.plane_jobs,
            self.shard_chaos.clone(),
            modulation,
            self.spec.schedule(),
        );
        match self.replication {
            Some(mode) => run.with_replication(mode),
            None => run,
        }
    }
}
