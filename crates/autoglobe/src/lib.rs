//! # AutoGlobe — an automatic administration concept for service-oriented
//! # database applications
//!
//! A from-scratch Rust reproduction of *AutoGlobe* (Seltzsam, Gmach,
//! Krompass, Kemper — ICDE 2006): a self-organizing infrastructure in which
//! services are virtualized, pooled hardware is continuously monitored, and
//! a **fuzzy-logic controller** remedies overload, idle and failure
//! situations automatically — lowering administration effort and total cost
//! of ownership.
//!
//! This crate is the facade: it re-exports the public API of the underlying
//! crates and offers [`Supervisor`], a ready-wired monitoring → controller
//! loop for driving a landscape with your own measurements.
//!
//! ## Crate map
//!
//! | Module | Backing crate | Contents |
//! |---|---|---|
//! | [`fuzzy`] | `autoglobe-fuzzy` | Generic fuzzy-logic engine: membership functions, rule DSL, max–min inference, defuzzification |
//! | [`landscape`] | `autoglobe-landscape` | Servers, services, instances, virtual IPs, actions, constraints, the XML description language |
//! | [`monitor`] | `autoglobe-monitor` | Load monitors, advisors, watch-time confirmation, trigger events, load archive |
//! | [`controller`] | `autoglobe-controller` | The two cooperating fuzzy controllers (action + server selection), protection mode, execution modes |
//! | [`simulator`] | `autoglobe-simulator` | The SAP-landscape simulation environment behind the paper's evaluation |
//! | [`forecast`] | `autoglobe-forecast` | Short-term load forecasting, administrator hints, proactive triggering (the paper's future work) |
//! | [`designer`] | `autoglobe-designer` | The landscape designer: statically optimized pre-assignment (future work) |
//! | [`console`] | `autoglobe-console` | The controller console's server/service/message views (Figure 8) |
//!
//! ## Quick start
//!
//! ```
//! use autoglobe::prelude::*;
//!
//! // 1. Describe the landscape (or load it from XML).
//! let mut landscape = Landscape::new();
//! let blade = landscape.add_server(ServerSpec::fsc_bx300("Blade1")).unwrap();
//! let big = landscape.add_server(ServerSpec::hp_bl40p("DBServer1")).unwrap();
//! let fi = landscape
//!     .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
//!     .unwrap();
//! let instance = landscape.start_instance(fi, blade).unwrap();
//!
//! // 2. Wire the supervisor (monitoring + heartbeats + fuzzy controller).
//! //    The default config reproduces the paper's synchronous behavior;
//! //    SupervisorConfig switches on the asynchronous execution substrate,
//! //    heartbeat tuning and proactive forecasting.
//! let mut supervisor = Supervisor::new(landscape);
//!
//! // 3. Each interval: measurements and liveness in, one tick of the
//! //    control loop (watch → confirm → decide → act), completed actions
//! //    out. poll() settles in-flight work of a slow execution substrate
//! //    between ticks — with the default synchronous one it's a no-op.
//! let mut t = SimTime::ZERO;
//! let mut executed = Vec::new();
//! for _ in 0..15 {
//!     t += SimDuration::from_minutes(1);
//!     supervisor.record_server(blade, t, 0.95, 0.5);
//!     supervisor.record_instance(instance, t, 0.95);
//!     supervisor.record_service(fi, t, 0.95);
//!     supervisor.beat(Subject::Instance(instance), t).unwrap();
//!     executed.extend(supervisor.tick(t).unwrap());
//!     executed.extend(supervisor.poll(t).unwrap());
//! }
//!
//! // The controller added capacity on the idle big host — here by scaling
//! // the single-instance service out onto it.
//! assert!(!executed.is_empty());
//! assert_eq!(supervisor.landscape().instances_on(big).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use autoglobe_console as console;
pub use autoglobe_controller as controller;
pub use autoglobe_designer as designer;
pub use autoglobe_forecast as forecast;
pub use autoglobe_fuzzy as fuzzy;
pub use autoglobe_landscape as landscape;
pub use autoglobe_monitor as monitor;
pub use autoglobe_simulator as simulator;

pub mod builder;
pub mod harness;
pub mod sharded;
pub mod supervisor;

pub use builder::RunBuilder;
pub use harness::{ChaosRun, SupervisedRun};
pub use sharded::{
    IngestStats, Lease, PlaneEvent, ReplicationMode, ShardChaos, ShardRecoveryStats,
    ShardedControlPlane, ShardedRun,
};
pub use supervisor::{Supervisor, SupervisorConfig};

/// The most common imports in one place.
pub mod prelude {
    pub use crate::builder::RunBuilder;
    pub use crate::harness::{ChaosRun, SupervisedRun};
    pub use crate::sharded::{
        Lease, PlaneEvent, ShardChaos, ShardRecoveryStats, ShardedControlPlane, ShardedRun,
    };
    pub use crate::supervisor::{Supervisor, SupervisorConfig};
    pub use autoglobe_controller::{
        ActionExecutor, ActionRecord, AutoGlobeController, ControllerConfig, ControllerEvent,
        ExecutionMode, ExecutorConfig, LoadView, RuleBases,
    };
    pub use autoglobe_forecast::{
        Forecaster, HintBook, ProactiveConfig, ProactiveFiring, ProactiveTrigger,
    };
    pub use autoglobe_fuzzy::{
        parse_rule, parse_rules, Defuzzifier, Engine, EngineConfig, InferenceMethod,
        LinguisticVariable, MembershipFunction, Rule, RuleBase,
    };
    pub use autoglobe_landscape::{
        xml::LandscapeDescription, Action, ActionKind, InstanceId, Landscape, ServerId, ServerSpec,
        ServiceId, ServiceKind, ServiceSpec,
    };
    pub use autoglobe_monitor::{
        HeartbeatConfig, HeartbeatEvent, HeartbeatMonitor, LoadArchive, LoadMonitoringSystem,
        LoadSample, SimDuration, SimTime, Subject, SubjectConfig, TriggerEvent, TriggerKind,
    };
    pub use autoglobe_simulator::{
        build_environment, find_max_users, CapacityCriterion, Combinator, FailureInjection,
        HeartbeatDetection, Metrics, Scenario, ScenarioSpec, SimConfig, Simulation, TickLoads,
        WorkloadEngine,
    };
}
