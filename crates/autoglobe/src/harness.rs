//! Driving the paper's simulated SAP workload through the [`Supervisor`].
//!
//! The simulator crate owns a faithful copy of the evaluation loop — but
//! the evaluation loop an *integrator* cares about is the one behind the
//! production API. [`SupervisedRun`] closes that gap: it advances the
//! simulator's [`WorkloadEngine`] (daily curves, sticky sessions, the
//! request-flow demand model) against the Supervisor's landscape, feeds the
//! resulting measurements through [`Supervisor::record_server`] /
//! `record_service` / `record_instance`, lets [`Supervisor::tick`] watch →
//! confirm → decide → act, and mirrors every completed action back into the
//! session tables — the same beat/tick/poll control plane a real deployment
//! drives, measured with the same [`Metrics`] the paper's figures use.

use crate::supervisor::{Supervisor, SupervisorConfig};
use autoglobe_controller::ControllerEvent;
use autoglobe_landscape::InstanceId;
use autoglobe_monitor::{SimDuration, SimTime};
use autoglobe_rng::Rng;
use autoglobe_simulator::sap::SapEnvironment;
use autoglobe_simulator::{Metrics, SimConfig, WorkloadEngine};
use std::collections::BTreeSet;

/// A simulation of the paper's SAP workload run through the [`Supervisor`]
/// control plane instead of the simulator's bespoke wiring.
pub struct SupervisedRun {
    supervisor: Supervisor,
    engine: WorkloadEngine,
    rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
}

impl SupervisedRun {
    /// Wire `env`'s landscape and workloads to a [`Supervisor`] built from
    /// `supervisor` config. `sim` supplies the workload model's knobs
    /// (scenario, duration, tick, user multiplier, seed); its controller
    /// settings are *not* applied automatically — put them in
    /// `supervisor.controller` if the run should use them.
    ///
    /// # Panics
    /// Panics when `sim` fails [`SimConfig::validate`].
    pub fn new(env: SapEnvironment, sim: &SimConfig, supervisor: SupervisorConfig) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let engine = WorkloadEngine::new(&landscape, workloads, sim);
        let metrics = Metrics {
            scenario: Some(sim.scenario),
            server_names: landscape
                .server_ids()
                .map(|id| landscape.server(id).unwrap().name.clone())
                .collect(),
            service_names: landscape
                .service_ids()
                .map(|id| landscape.service(id).unwrap().name.clone())
                .collect(),
            ..Metrics::default()
        };
        SupervisedRun {
            supervisor: Supervisor::with_config(landscape, supervisor),
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
        }
    }

    /// The control plane (to add hints, switch modes, inspect state).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Mutable control-plane access.
    pub fn supervisor_mut(&mut self) -> &mut Supervisor {
        &mut self.supervisor
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload model → measurements → supervisor tick →
    /// mirror completed actions into the session tables.
    pub fn step(&mut self) {
        self.time += self.tick;

        // Workload model against the supervisor's (current) landscape. The
        // supervised harness injects no ground-truth failures, so nothing
        // is dead-but-undetected.
        let dead: BTreeSet<InstanceId> = BTreeSet::new();
        let loads = self.engine.advance(
            self.supervisor.landscape(),
            &dead,
            self.time,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — exactly what a deployment agent would report.
        for (server, cpu, mem) in loads.server_entries() {
            self.supervisor.record_server(server, self.time, cpu, mem);
        }
        for (service, cpu) in loads.service_entries() {
            self.supervisor.record_service(service, self.time, cpu);
        }
        for (instance, cpu) in loads.instance_entries() {
            self.supervisor.record_instance(instance, self.time, cpu);
        }

        // Actions out.
        for record in self.supervisor.tick(self.time) {
            self.engine
                .note_action(&record.outcome, self.supervisor.landscape(), self.time);
            self.metrics.actions.push(record);
        }
        for event in self.supervisor.drain_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }
    }

    /// Run to completion and return the metrics (proactive firings are
    /// folded into [`Metrics::proactive_triggers`] and
    /// [`Metrics::proactive_lead_secs`]).
    pub fn run(mut self) -> Metrics {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        self.metrics.proactive_triggers = self.supervisor.proactive_firings().len();
        self.metrics.proactive_lead_secs = self
            .supervisor
            .proactive_firings()
            .iter()
            .map(|f| f.lead().as_secs())
            .sum();
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_simulator::{build_environment, Scenario};

    fn config(hours: u64) -> SimConfig {
        SimConfig::paper(Scenario::ConstrainedMobility, 1.15)
            .with_duration(SimDuration::from_hours(hours))
    }

    #[test]
    fn supervised_run_is_deterministic() {
        let run = |_: u32| {
            let sim = config(4);
            let sup = SupervisorConfig {
                controller: sim.controller,
                ..SupervisorConfig::default()
            };
            SupervisedRun::new(build_environment(Scenario::ConstrainedMobility), &sim, sup).run()
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.overload_secs, b.overload_secs);
        assert_eq!(a.total_demand.to_bits(), b.total_demand.to_bits());
    }

    #[test]
    fn supervised_run_acts_on_the_workload() {
        let sim = config(24);
        let sup = SupervisorConfig {
            controller: sim.controller,
            ..SupervisorConfig::default()
        };
        let metrics =
            SupervisedRun::new(build_environment(Scenario::ConstrainedMobility), &sim, sup).run();
        assert!(
            !metrics.actions.is_empty(),
            "the supervised controller must act on the daily ramp"
        );
        assert_eq!(metrics.proactive_triggers, 0, "reactive run has no firings");
    }
}
