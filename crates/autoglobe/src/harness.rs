//! Driving the paper's simulated SAP workload through the [`Supervisor`].
//!
//! The simulator crate owns a faithful copy of the evaluation loop — but
//! the evaluation loop an *integrator* cares about is the one behind the
//! production API. [`SupervisedRun`] closes that gap: it advances the
//! simulator's [`WorkloadEngine`] (daily curves, sticky sessions, the
//! request-flow demand model) against the Supervisor's landscape, feeds the
//! resulting measurements through [`Supervisor::record_server`] /
//! `record_service` / `record_instance`, lets [`Supervisor::tick`] watch →
//! confirm → decide → act, and mirrors every completed action back into the
//! session tables — the same beat/tick/poll control plane a real deployment
//! drives, measured with the same [`Metrics`] the paper's figures use.

use crate::supervisor::{Supervisor, SupervisorConfig};
use autoglobe_controller::{ControllerEvent, ExecutionEvent};
use autoglobe_landscape::{InstanceId, Landscape, ServerId, ServiceId};
use autoglobe_monitor::{HeartbeatConfig, HeartbeatEvent, SimDuration, SimTime, Subject};
use autoglobe_rng::{splitmix64, Rng};
use autoglobe_simulator::sap::SapEnvironment;
use autoglobe_simulator::{
    FailureInjection, LoadModulation, Metrics, ScenarioSchedule, SimConfig, WorkloadEngine,
};
use std::collections::{BTreeMap, BTreeSet};

/// Build the paper-scenario [`Metrics`] shell for a landscape.
pub(crate) fn metrics_shell(sim: &SimConfig, landscape: &Landscape) -> Metrics {
    Metrics {
        scenario: Some(sim.scenario),
        server_names: landscape
            .server_ids()
            .map(|id| landscape.server(id).unwrap().name.clone())
            .collect(),
        service_names: landscape
            .service_ids()
            .map(|id| landscape.service(id).unwrap().name.clone())
            .collect(),
        ..Metrics::default()
    }
}

/// The supervisor configuration a chaos run derives from `sim`, plus the
/// heartbeat-loss sub-seed — the same SplitMix64 chain as
/// [`autoglobe_simulator::Simulation`], so the builder and the legacy
/// constructor produce bit-identical runs.
pub(crate) fn chaos_supervisor_config(sim: &SimConfig) -> (SupervisorConfig, u64) {
    let detection = sim
        .heartbeats
        .expect("chaos harness needs heartbeat detection (SimConfig::with_heartbeats)");
    let mut sub_seed_state = sim.seed ^ 0x9E37_79B9_7F4A_7C15;
    let exec_seed = splitmix64(&mut sub_seed_state);
    let chaos_seed = splitmix64(&mut sub_seed_state);
    let config = SupervisorConfig {
        controller: sim.controller,
        executor: sim.execution.clone().unwrap_or_default(),
        executor_seed: exec_seed,
        heartbeats: HeartbeatConfig {
            miss_threshold: detection.miss_threshold,
            confirm_after: detection.confirm_after,
        },
        ..SupervisorConfig::default()
    };
    (config, chaos_seed)
}

/// Scheduled correlated kills resolved to ids: `(at, server, down_for)`,
/// ascending by time.
pub(crate) type KillEvents = Vec<(SimTime, ServerId, SimDuration)>;
/// Scheduled maintenance drains resolved to ids: `(from, to, server)`,
/// ascending by window start.
pub(crate) type DrainEvents = Vec<(SimTime, SimTime, ServerId)>;

/// Resolve a [`ScenarioSchedule`]'s server names against a landscape into
/// `(kills, drains)` event lists over [`ServerId`]s, each ascending by
/// time. Unknown server names panic: a scenario naming a host the
/// landscape lacks is a misconfigured experiment.
pub(crate) fn resolve_schedule(
    schedule: &ScenarioSchedule,
    landscape: &Landscape,
) -> (KillEvents, DrainEvents) {
    let resolve = |name: &str| {
        landscape
            .server_by_name(name)
            .unwrap_or_else(|_| panic!("scenario schedule names unknown server {name:?}"))
    };
    let mut kills = Vec::new();
    for kill in &schedule.kills {
        for name in &kill.servers {
            kills.push((kill.at, resolve(name), kill.down_for));
        }
    }
    let mut drains = Vec::new();
    for drain in &schedule.drains {
        for name in &drain.servers {
            drains.push((drain.from, drain.to, resolve(name)));
        }
    }
    kills.sort();
    drains.sort();
    (kills, drains)
}

/// A simulation of the paper's SAP workload run through the [`Supervisor`]
/// control plane instead of the simulator's bespoke wiring.
pub struct SupervisedRun {
    supervisor: Supervisor,
    engine: WorkloadEngine,
    rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
}

impl SupervisedRun {
    /// Wire `env`'s landscape and workloads to a [`Supervisor`] built from
    /// `supervisor` config. `sim` supplies the workload model's knobs
    /// (scenario, duration, tick, user multiplier, seed); its controller
    /// settings are *not* applied automatically — put them in
    /// `supervisor.controller` if the run should use them.
    ///
    /// # Panics
    /// Panics when `sim` fails [`SimConfig::validate`].
    #[deprecated(note = "use RunBuilder::new(..).supervisor(..).supervised()")]
    pub fn new(env: SapEnvironment, sim: &SimConfig, supervisor: SupervisorConfig) -> Self {
        Self::assemble(env, sim, supervisor, None)
    }

    /// The real constructor behind both [`SupervisedRun::new`] and
    /// [`crate::RunBuilder::supervised`]: with `modulation: None` it is the
    /// seed path, bit for bit.
    pub(crate) fn assemble(
        env: SapEnvironment,
        sim: &SimConfig,
        supervisor: SupervisorConfig,
        modulation: Option<LoadModulation>,
    ) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let mut engine = WorkloadEngine::new(&landscape, workloads, sim);
        engine.set_modulation(modulation);
        let metrics = metrics_shell(sim, &landscape);
        SupervisedRun {
            supervisor: Supervisor::with_config(landscape, supervisor),
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
        }
    }

    /// The control plane (to add hints, switch modes, inspect state).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Mutable control-plane access.
    pub fn supervisor_mut(&mut self) -> &mut Supervisor {
        &mut self.supervisor
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload model → measurements → supervisor tick →
    /// mirror completed actions into the session tables.
    pub fn step(&mut self) {
        self.time += self.tick;

        // Workload model against the supervisor's (current) landscape. The
        // supervised harness injects no ground-truth failures, so nothing
        // is dead-but-undetected.
        let dead: BTreeSet<InstanceId> = BTreeSet::new();
        let loads = self.engine.advance(
            self.supervisor.landscape(),
            &dead,
            self.time,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — exactly what a deployment agent would report.
        for (server, cpu, mem) in loads.server_entries() {
            self.supervisor.record_server(server, self.time, cpu, mem);
        }
        for (service, cpu) in loads.service_entries() {
            self.supervisor.record_service(service, self.time, cpu);
        }
        for (instance, cpu) in loads.instance_entries() {
            self.supervisor.record_instance(instance, self.time, cpu);
        }

        // Actions out. The harness clock only moves forward, so the
        // monotonicity guard cannot fire.
        let records = self
            .supervisor
            .tick(self.time)
            .expect("harness time advances monotonically");
        for record in records {
            self.engine
                .note_action(&record.outcome, self.supervisor.landscape(), self.time);
            self.metrics.actions.push(record);
        }
        for event in self.supervisor.drain_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }
    }

    /// Run to completion and return the metrics (proactive firings are
    /// folded into [`Metrics::proactive_triggers`] and
    /// [`Metrics::proactive_lead_secs`]).
    pub fn run(mut self) -> Metrics {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        self.metrics.proactive_triggers = self.supervisor.proactive_firings().len();
        self.metrics.proactive_lead_secs = self
            .supervisor
            .proactive_firings()
            .iter()
            .map(|f| f.lead().as_secs())
            .sum();
        self.metrics
    }
}

/// The chaos evaluation — fallible asynchronous execution, lossy heartbeat
/// detection, swept failure injection — run through the public
/// [`Supervisor`] control plane instead of the simulator's bespoke wiring.
///
/// The harness owns the ground truth (which hosts are down, which instances
/// crashed, the repair clock) and the supervisor owns the *beliefs*: it only
/// learns of a failure when the heartbeat detector confirms the silence.
/// Detection latency, reconciled false suspicions, quarantine of falsely
/// confirmed hosts, MTTR and lost work are measured exactly like the
/// simulator's internal chaos path, so `results/chaos_recovery.csv` keeps
/// its meaning — but every signal now flows through
/// [`Supervisor::record_server`] / [`Supervisor::beat`] /
/// [`Supervisor::tick`], the same API a real deployment drives.
pub struct ChaosRun {
    supervisor: Supervisor,
    engine: WorkloadEngine,
    /// Main stream: workload fluctuation + ground-truth failure dice, the
    /// same draw order as the simulator's heartbeat path.
    rng: Rng,
    /// Separate stream for heartbeat-loss dice, sub-seeded from the master
    /// seed so enabling loss never perturbs the failure schedule.
    chaos_rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
    failures: FailureInjection,
    hb_loss: f64,
    /// Ground truth: down hosts and when they went down.
    down_servers: BTreeMap<ServerId, SimTime>,
    /// Ground truth: crashed-but-unconfirmed instances and their crash time.
    crashed_instances: BTreeMap<InstanceId, SimTime>,
    /// (due, server) repair schedule — also used to re-certify falsely
    /// confirmed (quarantined) hosts.
    pending_repairs: Vec<(SimTime, ServerId)>,
    /// Lost instances awaiting a feasible host: (service, old instance,
    /// ground-truth failure time).
    restart_queue: Vec<(ServiceId, InstanceId, SimTime)>,
    /// Scenario-scheduled correlated kills `(at, server, down_for)`,
    /// ascending, drained as they come due. Scheduled events draw nothing
    /// from the RNG, so adding a schedule never perturbs the dice.
    scheduled_kills: Vec<(SimTime, ServerId, SimDuration)>,
    /// Scenario-scheduled maintenance drains `(from, to, server)`,
    /// ascending by start.
    scheduled_drains: Vec<(SimTime, SimTime, ServerId)>,
    /// Servers currently drained for planned maintenance (alive but out of
    /// rotation — distinct from ground-truth `down_servers`).
    draining: BTreeMap<ServerId, SimTime>,
}

impl ChaosRun {
    /// Wire `env` to a [`Supervisor`] configured from `sim`: the executor
    /// substrate from [`SimConfig::execution`] (reliable when `None`), the
    /// suspect/confirm protocol and loss rate from [`SimConfig::heartbeats`],
    /// failure injection from [`SimConfig::failures`]. Executor and
    /// loss-dice seeds derive from `sim.seed` through the same SplitMix64
    /// chain as [`autoglobe_simulator::Simulation`].
    ///
    /// # Panics
    /// Panics when `sim` fails [`SimConfig::validate`], and when `sim`
    /// enables no failure injection or no heartbeat detection — a chaos run
    /// without chaos (or without a detector to measure) is a misconfigured
    /// experiment, not a degenerate run.
    #[deprecated(note = "use RunBuilder::new(..).chaos(..).chaos_run()")]
    pub fn new(env: SapEnvironment, sim: &SimConfig) -> Self {
        sim.failures
            .expect("ChaosRun needs failure injection (SimConfig::with_failures)");
        let (supervisor, _) = chaos_supervisor_config(sim);
        Self::assemble(env, sim, supervisor, None, ScenarioSchedule::default())
    }

    /// The real constructor behind both [`ChaosRun::new`] and
    /// [`crate::RunBuilder::chaos_run`]. Failure injection may be absent
    /// when `schedule` carries events (a purely scheduled production-day
    /// scenario rolls no dice); heartbeat detection is always required —
    /// it is how scheduled kills get *detected*. With a default
    /// `supervisor` derived by [`chaos_supervisor_config`], no modulation
    /// and an empty schedule this is the legacy path, bit for bit.
    pub(crate) fn assemble(
        env: SapEnvironment,
        sim: &SimConfig,
        supervisor: SupervisorConfig,
        modulation: Option<LoadModulation>,
        schedule: ScenarioSchedule,
    ) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let failures = match sim.failures {
            Some(failures) => failures,
            None if !schedule.is_empty() => FailureInjection {
                instance_crash_per_hour: 0.0,
                server_failure_per_hour: 0.0,
                repair_after: SimDuration::from_hours(1),
            },
            None => panic!(
                "ChaosRun needs failure injection (SimConfig::with_failures) \
                 or a scenario schedule with events"
            ),
        };
        let detection = sim
            .heartbeats
            .expect("ChaosRun needs heartbeat detection (SimConfig::with_heartbeats)");

        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let mut engine = WorkloadEngine::new(&landscape, workloads, sim);
        engine.set_modulation(modulation);
        let metrics = metrics_shell(sim, &landscape);
        let (scheduled_kills, scheduled_drains) = resolve_schedule(&schedule, &landscape);

        // The chaos-dice sub-seed comes from the same chain as the executor
        // seed inside `supervisor` — see [`chaos_supervisor_config`].
        let mut sub_seed_state = sim.seed ^ 0x9E37_79B9_7F4A_7C15;
        let _exec_seed = splitmix64(&mut sub_seed_state);
        let chaos_seed = splitmix64(&mut sub_seed_state);

        let mut supervisor = Supervisor::with_config(landscape, supervisor);
        // Everything present at t=0 is watched from the start, exactly like
        // the simulator's chaos path.
        let servers: Vec<ServerId> = supervisor.landscape().server_ids().collect();
        for server in servers {
            supervisor.watch(Subject::Server(server));
        }
        let instances: Vec<InstanceId> = supervisor.landscape().instances().map(|i| i.id).collect();
        for instance in instances {
            supervisor.watch(Subject::Instance(instance));
        }

        ChaosRun {
            supervisor,
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            chaos_rng: Rng::seed_from_u64(chaos_seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
            failures,
            hb_loss: detection.loss_probability,
            down_servers: BTreeMap::new(),
            crashed_instances: BTreeMap::new(),
            pending_repairs: Vec::new(),
            restart_queue: Vec::new(),
            scheduled_kills,
            scheduled_drains,
            draining: BTreeMap::new(),
        }
    }

    /// The control plane (to inspect beliefs vs. the harness's ground truth).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload → measurements → repairs → failure dice →
    /// lossy heartbeats → supervisor tick → account recoveries, detections,
    /// retries and alerts.
    pub fn step(&mut self) {
        self.time += self.tick;
        let now = self.time;

        // Ground-truth dead entities serve nothing until the detector
        // confirms the failure and the controller reacts.
        let dead: BTreeSet<InstanceId> = self
            .supervisor
            .landscape()
            .instances()
            .filter(|i| {
                self.crashed_instances.contains_key(&i.id)
                    || self.down_servers.contains_key(&i.server)
            })
            .map(|i| i.id)
            .collect();
        let loads = self.engine.advance(
            self.supervisor.landscape(),
            &dead,
            now,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — a down host reports nothing, a dead instance
        // reports nothing.
        for (server, cpu, mem) in loads.server_entries() {
            if !self.down_servers.contains_key(&server) {
                self.supervisor.record_server(server, now, cpu, mem);
            }
        }
        for (service, cpu) in loads.service_entries() {
            self.supervisor.record_service(service, now, cpu);
        }
        for (instance, cpu) in loads.instance_entries() {
            if !dead.contains(&instance) {
                self.supervisor.record_instance(instance, now, cpu);
            }
        }

        // Repairs: the host rejoins the pool and is watched again with a
        // fresh heartbeat state.
        let mut repaired = Vec::new();
        self.pending_repairs.retain(|&(at, server)| {
            if now >= at {
                repaired.push(server);
                false
            } else {
                true
            }
        });
        for server in repaired {
            let _ = self.supervisor.report_server_repaired(server, now);
            self.down_servers.remove(&server);
            self.metrics.repairs += 1;
            self.supervisor.unwatch(Subject::Server(server));
            self.supervisor.watch(Subject::Server(server));
        }

        // Watch-set resync: new instances (restarts, scale-outs) get
        // monitored. Instances on a ground-truth down host stay unwatched —
        // host-level detection covers them. Departed instances are pruned
        // inside the supervisor's own tick.
        let fresh: Vec<InstanceId> = self
            .supervisor
            .landscape()
            .instances()
            .filter(|i| !self.down_servers.contains_key(&i.server))
            .map(|i| i.id)
            .collect();
        for instance in fresh {
            self.supervisor.watch(Subject::Instance(instance));
        }

        // Scenario-scheduled infrastructure events. These replay a fixed
        // timetable and draw nothing from the RNG, so composing a schedule
        // over a chaos config never perturbs the dice below. Drain ends
        // come first: a host rejoining this tick is back in the pool
        // before any new event resolves.
        let rejoining: Vec<ServerId> = self
            .draining
            .iter()
            .filter(|&(_, &to)| now >= to)
            .map(|(&server, _)| server)
            .collect();
        for server in rejoining {
            self.draining.remove(&server);
            let _ = self.supervisor.report_server_repaired(server, now);
            self.supervisor.watch(Subject::Server(server));
        }
        // Drain starts: planned failover through the supervisor's oracle
        // path — instances restart elsewhere immediately (zero detection
        // latency and no severed sessions, unlike a kill), then the host
        // sits out of rotation until its window closes.
        while let Some(&(from, to, server)) = self.scheduled_drains.first() {
            if now < from {
                break;
            }
            self.scheduled_drains.remove(0);
            if self.down_servers.contains_key(&server)
                || !self.supervisor.landscape().is_available(server)
            {
                continue;
            }
            let outcome = self.supervisor.report_server_failure(server, now);
            self.metrics.recoveries += outcome.recovered.len();
            self.metrics.lost_instances += outcome.lost.len();
            for (old_instance, service) in outcome.lost {
                self.restart_queue.push((service, old_instance, now));
            }
            self.draining.insert(server, to);
        }
        // Scheduled correlated kills: the same ground-truth bookkeeping as
        // a dice kill — the supervisor only learns of it when the
        // heartbeat detector confirms the silence, so MTTR is measured.
        while let Some(&(at, server, down_for)) = self.scheduled_kills.first() {
            if now < at {
                break;
            }
            self.scheduled_kills.remove(0);
            if self.down_servers.contains_key(&server)
                || !self.supervisor.landscape().is_available(server)
            {
                continue;
            }
            self.metrics.failures += 1;
            self.down_servers.insert(server, now);
            let _ = self.supervisor.landscape_mut().set_available(server, false);
            self.pending_repairs.push((now + down_for, server));
            for instance in self.supervisor.landscape().instances_on(server) {
                self.supervisor.unwatch(Subject::Instance(instance));
                self.sever_sessions(instance);
            }
        }

        // Ground-truth failure dice — same stream and order as the
        // simulator's chaos path: available servers ascending, then live
        // instances ascending.
        let tick_hours = self.tick.as_secs() as f64 / 3600.0;
        let servers: Vec<ServerId> = self
            .supervisor
            .landscape()
            .server_ids()
            .filter(|&s| self.supervisor.landscape().is_available(s))
            .collect();
        for server in servers {
            if self
                .rng
                .random_bool(self.failures.server_failure_per_hour * tick_hours)
            {
                self.metrics.failures += 1;
                self.down_servers.insert(server, now);
                let _ = self.supervisor.landscape_mut().set_available(server, false);
                self.pending_repairs
                    .push((now + self.failures.repair_after, server));
                // The host's instances die with it: sever their sessions
                // and stop watching them individually.
                for instance in self.supervisor.landscape().instances_on(server) {
                    self.supervisor.unwatch(Subject::Instance(instance));
                    self.sever_sessions(instance);
                }
            }
        }
        let instances: Vec<InstanceId> = self
            .supervisor
            .landscape()
            .instances()
            .filter(|i| {
                !self.crashed_instances.contains_key(&i.id)
                    && !self.down_servers.contains_key(&i.server)
            })
            .map(|i| i.id)
            .collect();
        for instance in instances {
            if self
                .rng
                .random_bool(self.failures.instance_crash_per_hour * tick_hours)
            {
                self.metrics.failures += 1;
                self.crashed_instances.insert(instance, now);
                self.sever_sessions(instance);
            }
        }

        // Heartbeats: everything alive beats, unless the lossy monitoring
        // network drops the beat (separate RNG stream).
        for subject in self.supervisor.watched() {
            let alive = match subject {
                Subject::Server(s) => !self.down_servers.contains_key(&s),
                Subject::Instance(i) => {
                    !self.crashed_instances.contains_key(&i)
                        && self
                            .supervisor
                            .landscape()
                            .instance(i)
                            .map(|inst| !self.down_servers.contains_key(&inst.server))
                            .unwrap_or(false)
                }
                Subject::Service(_) => true,
            };
            if alive && !(self.hb_loss > 0.0 && self.chaos_rng.random_bool(self.hb_loss)) {
                self.supervisor
                    .beat(subject, now)
                    .expect("harness time advances monotonically");
            }
        }

        // One tick of the control loop: settle in-flight work, evaluate
        // heartbeats (confirmed failures run the self-healing path inside),
        // dispatch confirmed triggers.
        let records = self
            .supervisor
            .tick(now)
            .expect("harness time advances monotonically");
        for record in records {
            self.engine
                .note_action(&record.outcome, self.supervisor.landscape(), now);
            self.metrics.actions.push(record);
        }

        // Self-healing outcomes of confirmed failures: detection latency
        // against the ground-truth clock, MTTR, lost work. A confirmed
        // server that was in fact healthy is a false positive — it was
        // quarantined by the recovery path and re-certifies after a
        // repair-length check.
        for recovery in self.supervisor.drain_recoveries() {
            let failed_at = match recovery.subject {
                Subject::Server(server) => {
                    let failed_at = self.down_servers.get(&server).copied();
                    match failed_at {
                        Some(failed_at) => {
                            self.metrics.detections += 1;
                            self.metrics.detection_latency_secs += now.since(failed_at).as_secs();
                        }
                        None => self
                            .pending_repairs
                            .push((now + self.failures.repair_after, server)),
                    }
                    failed_at
                }
                Subject::Instance(instance) => {
                    let failed_at = self.crashed_instances.remove(&instance);
                    if let Some(failed_at) = failed_at {
                        self.metrics.detections += 1;
                        self.metrics.detection_latency_secs += now.since(failed_at).as_secs();
                    }
                    failed_at
                }
                Subject::Service(_) => None,
            }
            .unwrap_or(now);
            self.metrics.recoveries += recovery.outcome.recovered.len();
            self.metrics.recovery_time_secs +=
                now.since(failed_at).as_secs() * recovery.outcome.recovered.len() as u64;
            self.metrics.lost_instances += recovery.outcome.lost.len();
            for (old_instance, service) in recovery.outcome.lost {
                self.restart_queue.push((service, old_instance, failed_at));
            }
        }
        for event in self.supervisor.drain_heartbeat_events() {
            match event {
                HeartbeatEvent::Suspected { .. } => self.metrics.suspected_failures += 1,
                HeartbeatEvent::Reconciled { .. } => self.metrics.reconciliations += 1,
                // Confirmations were accounted through the recovery records.
                HeartbeatEvent::Confirmed { .. } => {}
            }
        }

        // Retry restarts of lost instances; entries stay queued until a
        // feasible host exists (e.g. their only possible host repairs).
        let mut still_lost = Vec::new();
        for (service, old_instance, failed_at) in std::mem::take(&mut self.restart_queue) {
            match self.supervisor.retry_restart(service, old_instance, now) {
                Some(_) => {
                    self.metrics.recoveries += 1;
                    self.metrics.lost_instances -= 1;
                    self.metrics.recovery_time_secs += now.since(failed_at).as_secs();
                }
                None => still_lost.push((service, old_instance, failed_at)),
            }
        }
        self.restart_queue = still_lost;

        // Substrate events: completions were counted from the tick's return
        // value, everything else feeds the chaos columns.
        for event in self.supervisor.drain_execution_events() {
            match event {
                ExecutionEvent::Completed { .. } => {}
                ExecutionEvent::Retried { .. } => self.metrics.exec_retries += 1,
                ExecutionEvent::TimedOut { .. } => self.metrics.exec_timeouts += 1,
                ExecutionEvent::FencedLateSuccess { .. }
                | ExecutionEvent::FencedStaleEpoch { .. } => self.metrics.exec_fenced += 1,
                ExecutionEvent::Abandoned { .. } => self.metrics.exec_compensations += 1,
            }
        }
        for event in self.supervisor.drain_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }

        // Entries whose instance was removed by other means (a host-level
        // recovery, a controller stop) can never be confirmed — drop them.
        let landscape = self.supervisor.landscape();
        self.crashed_instances
            .retain(|i, _| landscape.instance(*i).is_ok());
    }

    /// Sever every session on a failed instance; the stranded users count
    /// as lost sessions (they must re-login once capacity recovers).
    fn sever_sessions(&mut self, instance: InstanceId) {
        self.metrics.lost_sessions += self
            .engine
            .sever_sessions(self.supervisor.landscape(), instance);
    }

    /// Run to completion and return the metrics (proactive firings are
    /// folded in, like [`SupervisedRun::run`] — zero unless
    /// [`SupervisorConfig::proactive`] was configured).
    pub fn run(mut self) -> Metrics {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        self.metrics.proactive_triggers = self.supervisor.proactive_firings().len();
        self.metrics.proactive_lead_secs = self
            .supervisor
            .proactive_firings()
            .iter()
            .map(|f| f.lead().as_secs())
            .sum();
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::RunBuilder;
    use autoglobe_simulator::{build_environment, Scenario};

    fn config(hours: u64) -> SimConfig {
        SimConfig::paper(Scenario::ConstrainedMobility, 1.15)
            .with_duration(SimDuration::from_hours(hours))
    }

    #[test]
    fn supervised_run_is_deterministic() {
        let run = |_: u32| {
            RunBuilder::new(Scenario::ConstrainedMobility)
                .hours(4)
                .supervised()
                .run()
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.overload_secs, b.overload_secs);
        assert_eq!(a.total_demand.to_bits(), b.total_demand.to_bits());
    }

    /// Tentpole acceptance at the control-plane surface: a supervised run
    /// on the batched advisor path (the default, epsilon 0) must reproduce
    /// the scalar seed path's run action for action and bit for bit.
    #[test]
    fn supervised_run_is_identical_under_batched_and_scalar_scoring() {
        use autoglobe_controller::ScoringMode;
        let run = |scoring: ScoringMode| {
            let mut sim = config(8);
            sim.controller.scoring = scoring;
            RunBuilder::new(Scenario::ConstrainedMobility)
                .sim(sim)
                .supervised()
                .run()
        };
        let batched = run(ScoringMode::Batched);
        let scalar = run(ScoringMode::Scalar);
        assert_eq!(batched.actions, scalar.actions);
        assert_eq!(batched.alerts, scalar.alerts);
        assert_eq!(batched.overload_secs, scalar.overload_secs);
        assert_eq!(
            batched.total_demand.to_bits(),
            scalar.total_demand.to_bits()
        );
        assert!(
            !batched.actions.is_empty(),
            "the 8h window must exercise the advisor"
        );
    }

    fn chaos_config(hours: u64) -> SimConfig {
        use autoglobe_controller::ExecutorConfig;
        use autoglobe_simulator::HeartbeatDetection;
        config(hours)
            .with_failures(FailureInjection {
                instance_crash_per_hour: 0.03,
                server_failure_per_hour: 0.06,
                repair_after: SimDuration::from_hours(1),
            })
            .with_execution(ExecutorConfig {
                min_latency: SimDuration::from_secs(30),
                max_latency: SimDuration::from_minutes(3),
                timeout: SimDuration::from_minutes(2),
                failure_probability: 0.1,
                ..ExecutorConfig::reliable()
            })
            .with_heartbeats(HeartbeatDetection {
                miss_threshold: 3,
                confirm_after: 2,
                loss_probability: 0.01,
            })
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let run = |_: u32| {
            RunBuilder::new(Scenario::ConstrainedMobility)
                .sim(chaos_config(12))
                .chaos_run()
                .run()
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.detection_latency_secs, b.detection_latency_secs);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.lost_sessions.to_bits(), b.lost_sessions.to_bits());
    }

    #[test]
    fn chaos_run_detects_and_recovers_from_injected_failures() {
        let metrics = RunBuilder::new(Scenario::ConstrainedMobility)
            .sim(chaos_config(24))
            .chaos_run()
            .run();
        assert!(metrics.failures > 0, "the dice must roll failures in 24h");
        assert!(
            metrics.detections > 0,
            "confirmed silences must be detected ({} failures)",
            metrics.failures
        );
        assert!(
            metrics.recoveries > 0,
            "the self-healing path must restart instances"
        );
        assert!(
            metrics.detection_latency_secs > 0,
            "heartbeat detection takes miss+confirm ticks, never zero"
        );
        assert!(metrics.repairs > 0, "downed hosts must rejoin after 1h");
    }

    #[test]
    fn supervised_run_acts_on_the_workload() {
        let metrics = RunBuilder::new(Scenario::ConstrainedMobility)
            .hours(24)
            .supervised()
            .run();
        assert!(
            !metrics.actions.is_empty(),
            "the supervised controller must act on the daily ramp"
        );
        assert_eq!(metrics.proactive_triggers, 0, "reactive run has no firings");
    }

    /// The deprecated constructors are thin shims over the builder: both
    /// entry points must produce bit-identical runs.
    #[test]
    #[allow(deprecated)]
    fn legacy_constructors_match_the_builder() {
        let sim = config(4);
        let sup = SupervisorConfig {
            controller: sim.controller,
            ..SupervisorConfig::default()
        };
        let legacy =
            SupervisedRun::new(build_environment(Scenario::ConstrainedMobility), &sim, sup).run();
        let built = RunBuilder::new(Scenario::ConstrainedMobility)
            .hours(4)
            .supervised()
            .run();
        assert_eq!(legacy.actions, built.actions);
        assert_eq!(legacy.overload_secs, built.overload_secs);
        assert_eq!(legacy.total_demand.to_bits(), built.total_demand.to_bits());

        let chaos_sim = chaos_config(6);
        let legacy =
            ChaosRun::new(build_environment(Scenario::ConstrainedMobility), &chaos_sim).run();
        let built = RunBuilder::new(Scenario::ConstrainedMobility)
            .sim(chaos_sim)
            .chaos_run()
            .run();
        assert_eq!(legacy.actions, built.actions);
        assert_eq!(legacy.failures, built.failures);
        assert_eq!(legacy.detections, built.detections);
        assert_eq!(
            legacy.lost_sessions.to_bits(),
            built.lost_sessions.to_bits()
        );
        assert_eq!(legacy.total_demand.to_bits(), built.total_demand.to_bits());
    }
}
