//! Driving the paper's simulated SAP workload through the [`Supervisor`].
//!
//! The simulator crate owns a faithful copy of the evaluation loop — but
//! the evaluation loop an *integrator* cares about is the one behind the
//! production API. [`SupervisedRun`] closes that gap: it advances the
//! simulator's [`WorkloadEngine`] (daily curves, sticky sessions, the
//! request-flow demand model) against the Supervisor's landscape, feeds the
//! resulting measurements through [`Supervisor::record_server`] /
//! `record_service` / `record_instance`, lets [`Supervisor::tick`] watch →
//! confirm → decide → act, and mirrors every completed action back into the
//! session tables — the same beat/tick/poll control plane a real deployment
//! drives, measured with the same [`Metrics`] the paper's figures use.

use crate::supervisor::{Supervisor, SupervisorConfig};
use autoglobe_controller::{ControllerEvent, ExecutionEvent};
use autoglobe_landscape::{InstanceId, ServerId, ServiceId};
use autoglobe_monitor::{HeartbeatConfig, HeartbeatEvent, SimDuration, SimTime, Subject};
use autoglobe_rng::{splitmix64, Rng};
use autoglobe_simulator::sap::SapEnvironment;
use autoglobe_simulator::{FailureInjection, Metrics, SimConfig, WorkloadEngine};
use std::collections::{BTreeMap, BTreeSet};

/// A simulation of the paper's SAP workload run through the [`Supervisor`]
/// control plane instead of the simulator's bespoke wiring.
pub struct SupervisedRun {
    supervisor: Supervisor,
    engine: WorkloadEngine,
    rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
}

impl SupervisedRun {
    /// Wire `env`'s landscape and workloads to a [`Supervisor`] built from
    /// `supervisor` config. `sim` supplies the workload model's knobs
    /// (scenario, duration, tick, user multiplier, seed); its controller
    /// settings are *not* applied automatically — put them in
    /// `supervisor.controller` if the run should use them.
    ///
    /// # Panics
    /// Panics when `sim` fails [`SimConfig::validate`].
    pub fn new(env: SapEnvironment, sim: &SimConfig, supervisor: SupervisorConfig) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let engine = WorkloadEngine::new(&landscape, workloads, sim);
        let metrics = Metrics {
            scenario: Some(sim.scenario),
            server_names: landscape
                .server_ids()
                .map(|id| landscape.server(id).unwrap().name.clone())
                .collect(),
            service_names: landscape
                .service_ids()
                .map(|id| landscape.service(id).unwrap().name.clone())
                .collect(),
            ..Metrics::default()
        };
        SupervisedRun {
            supervisor: Supervisor::with_config(landscape, supervisor),
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
        }
    }

    /// The control plane (to add hints, switch modes, inspect state).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Mutable control-plane access.
    pub fn supervisor_mut(&mut self) -> &mut Supervisor {
        &mut self.supervisor
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload model → measurements → supervisor tick →
    /// mirror completed actions into the session tables.
    pub fn step(&mut self) {
        self.time += self.tick;

        // Workload model against the supervisor's (current) landscape. The
        // supervised harness injects no ground-truth failures, so nothing
        // is dead-but-undetected.
        let dead: BTreeSet<InstanceId> = BTreeSet::new();
        let loads = self.engine.advance(
            self.supervisor.landscape(),
            &dead,
            self.time,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — exactly what a deployment agent would report.
        for (server, cpu, mem) in loads.server_entries() {
            self.supervisor.record_server(server, self.time, cpu, mem);
        }
        for (service, cpu) in loads.service_entries() {
            self.supervisor.record_service(service, self.time, cpu);
        }
        for (instance, cpu) in loads.instance_entries() {
            self.supervisor.record_instance(instance, self.time, cpu);
        }

        // Actions out. The harness clock only moves forward, so the
        // monotonicity guard cannot fire.
        let records = self
            .supervisor
            .tick(self.time)
            .expect("harness time advances monotonically");
        for record in records {
            self.engine
                .note_action(&record.outcome, self.supervisor.landscape(), self.time);
            self.metrics.actions.push(record);
        }
        for event in self.supervisor.drain_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }
    }

    /// Run to completion and return the metrics (proactive firings are
    /// folded into [`Metrics::proactive_triggers`] and
    /// [`Metrics::proactive_lead_secs`]).
    pub fn run(mut self) -> Metrics {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        self.metrics.proactive_triggers = self.supervisor.proactive_firings().len();
        self.metrics.proactive_lead_secs = self
            .supervisor
            .proactive_firings()
            .iter()
            .map(|f| f.lead().as_secs())
            .sum();
        self.metrics
    }
}

/// The chaos evaluation — fallible asynchronous execution, lossy heartbeat
/// detection, swept failure injection — run through the public
/// [`Supervisor`] control plane instead of the simulator's bespoke wiring.
///
/// The harness owns the ground truth (which hosts are down, which instances
/// crashed, the repair clock) and the supervisor owns the *beliefs*: it only
/// learns of a failure when the heartbeat detector confirms the silence.
/// Detection latency, reconciled false suspicions, quarantine of falsely
/// confirmed hosts, MTTR and lost work are measured exactly like the
/// simulator's internal chaos path, so `results/chaos_recovery.csv` keeps
/// its meaning — but every signal now flows through
/// [`Supervisor::record_server`] / [`Supervisor::beat`] /
/// [`Supervisor::tick`], the same API a real deployment drives.
pub struct ChaosRun {
    supervisor: Supervisor,
    engine: WorkloadEngine,
    /// Main stream: workload fluctuation + ground-truth failure dice, the
    /// same draw order as the simulator's heartbeat path.
    rng: Rng,
    /// Separate stream for heartbeat-loss dice, sub-seeded from the master
    /// seed so enabling loss never perturbs the failure schedule.
    chaos_rng: Rng,
    metrics: Metrics,
    time: SimTime,
    tick: SimDuration,
    duration: SimDuration,
    failures: FailureInjection,
    hb_loss: f64,
    /// Ground truth: down hosts and when they went down.
    down_servers: BTreeMap<ServerId, SimTime>,
    /// Ground truth: crashed-but-unconfirmed instances and their crash time.
    crashed_instances: BTreeMap<InstanceId, SimTime>,
    /// (due, server) repair schedule — also used to re-certify falsely
    /// confirmed (quarantined) hosts.
    pending_repairs: Vec<(SimTime, ServerId)>,
    /// Lost instances awaiting a feasible host: (service, old instance,
    /// ground-truth failure time).
    restart_queue: Vec<(ServiceId, InstanceId, SimTime)>,
}

impl ChaosRun {
    /// Wire `env` to a [`Supervisor`] configured from `sim`: the executor
    /// substrate from [`SimConfig::execution`] (reliable when `None`), the
    /// suspect/confirm protocol and loss rate from [`SimConfig::heartbeats`],
    /// failure injection from [`SimConfig::failures`]. Executor and
    /// loss-dice seeds derive from `sim.seed` through the same SplitMix64
    /// chain as [`autoglobe_simulator::Simulation`].
    ///
    /// # Panics
    /// Panics when `sim` fails [`SimConfig::validate`], and when `sim`
    /// enables no failure injection or no heartbeat detection — a chaos run
    /// without chaos (or without a detector to measure) is a misconfigured
    /// experiment, not a degenerate run.
    pub fn new(env: SapEnvironment, sim: &SimConfig) -> Self {
        if let Err(e) = sim.validate() {
            panic!("invalid simulation config: {e}");
        }
        let failures = sim
            .failures
            .expect("ChaosRun needs failure injection (SimConfig::with_failures)");
        let detection = sim
            .heartbeats
            .expect("ChaosRun needs heartbeat detection (SimConfig::with_heartbeats)");

        let SapEnvironment {
            landscape,
            workloads,
        } = env;
        let engine = WorkloadEngine::new(&landscape, workloads, sim);
        let metrics = Metrics {
            scenario: Some(sim.scenario),
            server_names: landscape
                .server_ids()
                .map(|id| landscape.server(id).unwrap().name.clone())
                .collect(),
            service_names: landscape
                .service_ids()
                .map(|id| landscape.service(id).unwrap().name.clone())
                .collect(),
            ..Metrics::default()
        };

        // The same sub-seed chain the simulator uses: the master seed keeps
        // driving workload + failure dice untouched, the executor and the
        // lossy monitoring network get their own streams.
        let mut sub_seed_state = sim.seed ^ 0x9E37_79B9_7F4A_7C15;
        let exec_seed = splitmix64(&mut sub_seed_state);
        let chaos_seed = splitmix64(&mut sub_seed_state);

        let supervisor_config = SupervisorConfig {
            controller: sim.controller,
            executor: sim.execution.clone().unwrap_or_default(),
            executor_seed: exec_seed,
            heartbeats: HeartbeatConfig {
                miss_threshold: detection.miss_threshold,
                confirm_after: detection.confirm_after,
            },
            ..SupervisorConfig::default()
        };
        let mut supervisor = Supervisor::with_config(landscape, supervisor_config);
        // Everything present at t=0 is watched from the start, exactly like
        // the simulator's chaos path.
        let servers: Vec<ServerId> = supervisor.landscape().server_ids().collect();
        for server in servers {
            supervisor.watch(Subject::Server(server));
        }
        let instances: Vec<InstanceId> = supervisor.landscape().instances().map(|i| i.id).collect();
        for instance in instances {
            supervisor.watch(Subject::Instance(instance));
        }

        ChaosRun {
            supervisor,
            engine,
            rng: Rng::seed_from_u64(sim.seed),
            chaos_rng: Rng::seed_from_u64(chaos_seed),
            metrics,
            time: SimTime::ZERO,
            tick: sim.tick,
            duration: sim.duration,
            failures,
            hb_loss: detection.loss_probability,
            down_servers: BTreeMap::new(),
            crashed_instances: BTreeMap::new(),
            pending_repairs: Vec::new(),
            restart_queue: Vec::new(),
        }
    }

    /// The control plane (to inspect beliefs vs. the harness's ground truth).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Advance one tick: workload → measurements → repairs → failure dice →
    /// lossy heartbeats → supervisor tick → account recoveries, detections,
    /// retries and alerts.
    pub fn step(&mut self) {
        self.time += self.tick;
        let now = self.time;

        // Ground-truth dead entities serve nothing until the detector
        // confirms the failure and the controller reacts.
        let dead: BTreeSet<InstanceId> = self
            .supervisor
            .landscape()
            .instances()
            .filter(|i| {
                self.crashed_instances.contains_key(&i.id)
                    || self.down_servers.contains_key(&i.server)
            })
            .map(|i| i.id)
            .collect();
        let loads = self.engine.advance(
            self.supervisor.landscape(),
            &dead,
            now,
            &mut self.rng,
            &mut self.metrics,
        );

        // Measurements in — a down host reports nothing, a dead instance
        // reports nothing.
        for (server, cpu, mem) in loads.server_entries() {
            if !self.down_servers.contains_key(&server) {
                self.supervisor.record_server(server, now, cpu, mem);
            }
        }
        for (service, cpu) in loads.service_entries() {
            self.supervisor.record_service(service, now, cpu);
        }
        for (instance, cpu) in loads.instance_entries() {
            if !dead.contains(&instance) {
                self.supervisor.record_instance(instance, now, cpu);
            }
        }

        // Repairs: the host rejoins the pool and is watched again with a
        // fresh heartbeat state.
        let mut repaired = Vec::new();
        self.pending_repairs.retain(|&(at, server)| {
            if now >= at {
                repaired.push(server);
                false
            } else {
                true
            }
        });
        for server in repaired {
            let _ = self.supervisor.report_server_repaired(server, now);
            self.down_servers.remove(&server);
            self.metrics.repairs += 1;
            self.supervisor.unwatch(Subject::Server(server));
            self.supervisor.watch(Subject::Server(server));
        }

        // Watch-set resync: new instances (restarts, scale-outs) get
        // monitored. Instances on a ground-truth down host stay unwatched —
        // host-level detection covers them. Departed instances are pruned
        // inside the supervisor's own tick.
        let fresh: Vec<InstanceId> = self
            .supervisor
            .landscape()
            .instances()
            .filter(|i| !self.down_servers.contains_key(&i.server))
            .map(|i| i.id)
            .collect();
        for instance in fresh {
            self.supervisor.watch(Subject::Instance(instance));
        }

        // Ground-truth failure dice — same stream and order as the
        // simulator's chaos path: available servers ascending, then live
        // instances ascending.
        let tick_hours = self.tick.as_secs() as f64 / 3600.0;
        let servers: Vec<ServerId> = self
            .supervisor
            .landscape()
            .server_ids()
            .filter(|&s| self.supervisor.landscape().is_available(s))
            .collect();
        for server in servers {
            if self
                .rng
                .random_bool(self.failures.server_failure_per_hour * tick_hours)
            {
                self.metrics.failures += 1;
                self.down_servers.insert(server, now);
                let _ = self.supervisor.landscape_mut().set_available(server, false);
                self.pending_repairs
                    .push((now + self.failures.repair_after, server));
                // The host's instances die with it: sever their sessions
                // and stop watching them individually.
                for instance in self.supervisor.landscape().instances_on(server) {
                    self.supervisor.unwatch(Subject::Instance(instance));
                    self.sever_sessions(instance);
                }
            }
        }
        let instances: Vec<InstanceId> = self
            .supervisor
            .landscape()
            .instances()
            .filter(|i| {
                !self.crashed_instances.contains_key(&i.id)
                    && !self.down_servers.contains_key(&i.server)
            })
            .map(|i| i.id)
            .collect();
        for instance in instances {
            if self
                .rng
                .random_bool(self.failures.instance_crash_per_hour * tick_hours)
            {
                self.metrics.failures += 1;
                self.crashed_instances.insert(instance, now);
                self.sever_sessions(instance);
            }
        }

        // Heartbeats: everything alive beats, unless the lossy monitoring
        // network drops the beat (separate RNG stream).
        for subject in self.supervisor.watched() {
            let alive = match subject {
                Subject::Server(s) => !self.down_servers.contains_key(&s),
                Subject::Instance(i) => {
                    !self.crashed_instances.contains_key(&i)
                        && self
                            .supervisor
                            .landscape()
                            .instance(i)
                            .map(|inst| !self.down_servers.contains_key(&inst.server))
                            .unwrap_or(false)
                }
                Subject::Service(_) => true,
            };
            if alive && !(self.hb_loss > 0.0 && self.chaos_rng.random_bool(self.hb_loss)) {
                self.supervisor
                    .beat(subject, now)
                    .expect("harness time advances monotonically");
            }
        }

        // One tick of the control loop: settle in-flight work, evaluate
        // heartbeats (confirmed failures run the self-healing path inside),
        // dispatch confirmed triggers.
        let records = self
            .supervisor
            .tick(now)
            .expect("harness time advances monotonically");
        for record in records {
            self.engine
                .note_action(&record.outcome, self.supervisor.landscape(), now);
            self.metrics.actions.push(record);
        }

        // Self-healing outcomes of confirmed failures: detection latency
        // against the ground-truth clock, MTTR, lost work. A confirmed
        // server that was in fact healthy is a false positive — it was
        // quarantined by the recovery path and re-certifies after a
        // repair-length check.
        for recovery in self.supervisor.drain_recoveries() {
            let failed_at = match recovery.subject {
                Subject::Server(server) => {
                    let failed_at = self.down_servers.get(&server).copied();
                    match failed_at {
                        Some(failed_at) => {
                            self.metrics.detections += 1;
                            self.metrics.detection_latency_secs += now.since(failed_at).as_secs();
                        }
                        None => self
                            .pending_repairs
                            .push((now + self.failures.repair_after, server)),
                    }
                    failed_at
                }
                Subject::Instance(instance) => {
                    let failed_at = self.crashed_instances.remove(&instance);
                    if let Some(failed_at) = failed_at {
                        self.metrics.detections += 1;
                        self.metrics.detection_latency_secs += now.since(failed_at).as_secs();
                    }
                    failed_at
                }
                Subject::Service(_) => None,
            }
            .unwrap_or(now);
            self.metrics.recoveries += recovery.outcome.recovered.len();
            self.metrics.recovery_time_secs +=
                now.since(failed_at).as_secs() * recovery.outcome.recovered.len() as u64;
            self.metrics.lost_instances += recovery.outcome.lost.len();
            for (old_instance, service) in recovery.outcome.lost {
                self.restart_queue.push((service, old_instance, failed_at));
            }
        }
        for event in self.supervisor.drain_heartbeat_events() {
            match event {
                HeartbeatEvent::Suspected { .. } => self.metrics.suspected_failures += 1,
                HeartbeatEvent::Reconciled { .. } => self.metrics.reconciliations += 1,
                // Confirmations were accounted through the recovery records.
                HeartbeatEvent::Confirmed { .. } => {}
            }
        }

        // Retry restarts of lost instances; entries stay queued until a
        // feasible host exists (e.g. their only possible host repairs).
        let mut still_lost = Vec::new();
        for (service, old_instance, failed_at) in std::mem::take(&mut self.restart_queue) {
            match self.supervisor.retry_restart(service, old_instance, now) {
                Some(_) => {
                    self.metrics.recoveries += 1;
                    self.metrics.lost_instances -= 1;
                    self.metrics.recovery_time_secs += now.since(failed_at).as_secs();
                }
                None => still_lost.push((service, old_instance, failed_at)),
            }
        }
        self.restart_queue = still_lost;

        // Substrate events: completions were counted from the tick's return
        // value, everything else feeds the chaos columns.
        for event in self.supervisor.drain_execution_events() {
            match event {
                ExecutionEvent::Completed { .. } => {}
                ExecutionEvent::Retried { .. } => self.metrics.exec_retries += 1,
                ExecutionEvent::TimedOut { .. } => self.metrics.exec_timeouts += 1,
                ExecutionEvent::FencedLateSuccess { .. }
                | ExecutionEvent::FencedStaleEpoch { .. } => self.metrics.exec_fenced += 1,
                ExecutionEvent::Abandoned { .. } => self.metrics.exec_compensations += 1,
            }
        }
        for event in self.supervisor.drain_events() {
            if matches!(event, ControllerEvent::AdministratorAlert { .. }) {
                self.metrics.alerts += 1;
            }
        }

        // Entries whose instance was removed by other means (a host-level
        // recovery, a controller stop) can never be confirmed — drop them.
        let landscape = self.supervisor.landscape();
        self.crashed_instances
            .retain(|i, _| landscape.instance(*i).is_ok());
    }

    /// Sever every session on a failed instance; the stranded users count
    /// as lost sessions (they must re-login once capacity recovers).
    fn sever_sessions(&mut self, instance: InstanceId) {
        self.metrics.lost_sessions += self
            .engine
            .sever_sessions(self.supervisor.landscape(), instance);
    }

    /// Run to completion and return the metrics.
    pub fn run(mut self) -> Metrics {
        let ticks = self.duration.as_secs() / self.tick.as_secs().max(1);
        for _ in 0..ticks {
            self.step();
        }
        self.metrics.duration = self.duration;
        self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_simulator::{build_environment, Scenario};

    fn config(hours: u64) -> SimConfig {
        SimConfig::paper(Scenario::ConstrainedMobility, 1.15)
            .with_duration(SimDuration::from_hours(hours))
    }

    #[test]
    fn supervised_run_is_deterministic() {
        let run = |_: u32| {
            let sim = config(4);
            let sup = SupervisorConfig {
                controller: sim.controller,
                ..SupervisorConfig::default()
            };
            SupervisedRun::new(build_environment(Scenario::ConstrainedMobility), &sim, sup).run()
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.overload_secs, b.overload_secs);
        assert_eq!(a.total_demand.to_bits(), b.total_demand.to_bits());
    }

    /// Tentpole acceptance at the control-plane surface: a supervised run
    /// on the batched advisor path (the default, epsilon 0) must reproduce
    /// the scalar seed path's run action for action and bit for bit.
    #[test]
    fn supervised_run_is_identical_under_batched_and_scalar_scoring() {
        use autoglobe_controller::ScoringMode;
        let run = |scoring: ScoringMode| {
            let mut sim = config(8);
            sim.controller.scoring = scoring;
            let sup = SupervisorConfig {
                controller: sim.controller,
                ..SupervisorConfig::default()
            };
            SupervisedRun::new(build_environment(Scenario::ConstrainedMobility), &sim, sup).run()
        };
        let batched = run(ScoringMode::Batched);
        let scalar = run(ScoringMode::Scalar);
        assert_eq!(batched.actions, scalar.actions);
        assert_eq!(batched.alerts, scalar.alerts);
        assert_eq!(batched.overload_secs, scalar.overload_secs);
        assert_eq!(
            batched.total_demand.to_bits(),
            scalar.total_demand.to_bits()
        );
        assert!(
            !batched.actions.is_empty(),
            "the 8h window must exercise the advisor"
        );
    }

    fn chaos_config(hours: u64) -> SimConfig {
        use autoglobe_controller::ExecutorConfig;
        use autoglobe_simulator::HeartbeatDetection;
        config(hours)
            .with_failures(FailureInjection {
                instance_crash_per_hour: 0.03,
                server_failure_per_hour: 0.06,
                repair_after: SimDuration::from_hours(1),
            })
            .with_execution(ExecutorConfig {
                min_latency: SimDuration::from_secs(30),
                max_latency: SimDuration::from_minutes(3),
                timeout: SimDuration::from_minutes(2),
                failure_probability: 0.1,
                ..ExecutorConfig::reliable()
            })
            .with_heartbeats(HeartbeatDetection {
                miss_threshold: 3,
                confirm_after: 2,
                loss_probability: 0.01,
            })
    }

    #[test]
    fn chaos_run_is_deterministic() {
        let run = |_: u32| {
            ChaosRun::new(
                build_environment(Scenario::ConstrainedMobility),
                &chaos_config(12),
            )
            .run()
        };
        let a = run(0);
        let b = run(1);
        assert_eq!(a.actions, b.actions);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.detection_latency_secs, b.detection_latency_secs);
        assert_eq!(a.recoveries, b.recoveries);
        assert_eq!(a.lost_sessions.to_bits(), b.lost_sessions.to_bits());
    }

    #[test]
    fn chaos_run_detects_and_recovers_from_injected_failures() {
        let metrics = ChaosRun::new(
            build_environment(Scenario::ConstrainedMobility),
            &chaos_config(24),
        )
        .run();
        assert!(metrics.failures > 0, "the dice must roll failures in 24h");
        assert!(
            metrics.detections > 0,
            "confirmed silences must be detected ({} failures)",
            metrics.failures
        );
        assert!(
            metrics.recoveries > 0,
            "the self-healing path must restart instances"
        );
        assert!(
            metrics.detection_latency_secs > 0,
            "heartbeat detection takes miss+confirm ticks, never zero"
        );
        assert!(metrics.repairs > 0, "downed hosts must rejoin after 1h");
    }

    #[test]
    fn supervised_run_acts_on_the_workload() {
        let sim = config(24);
        let sup = SupervisorConfig {
            controller: sim.controller,
            ..SupervisorConfig::default()
        };
        let metrics =
            SupervisedRun::new(build_environment(Scenario::ConstrainedMobility), &sim, sup).run();
        assert!(
            !metrics.actions.is_empty(),
            "the supervised controller must act on the daily ramp"
        );
        assert_eq!(metrics.proactive_triggers, 0, "reactive run has no firings");
    }
}
