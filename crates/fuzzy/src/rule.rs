//! Fuzzy rules: antecedent expression trees, consequents and rule bases.
//!
//! A rule has the shape the paper shows in Section 3:
//!
//! ```text
//! IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium)
//! THEN scaleUp IS applicable
//! ```
//!
//! Conjunctions evaluate with the minimum, disjunctions with the maximum
//! (standard Zadeh operators, exactly as in the paper). We additionally
//! support `NOT` (standard complement `1 − μ`), which the paper's prose rule
//! bases implicitly use ("... despite it being very powerful").

use crate::{FuzzyError, Truth};
use std::collections::BTreeSet;
use std::fmt;

/// The antecedent ("IF" part) of a rule: an expression tree over
/// `variable IS term` atoms.
#[derive(Debug, Clone, PartialEq)]
pub enum Antecedent {
    /// Atom: `variable IS term`.
    Is {
        /// Input variable name.
        variable: String,
        /// Term name on that variable.
        term: String,
    },
    /// Conjunction, evaluated with `min`.
    And(Box<Antecedent>, Box<Antecedent>),
    /// Disjunction, evaluated with `max`.
    Or(Box<Antecedent>, Box<Antecedent>),
    /// Complement, evaluated with `1 − x`.
    Not(Box<Antecedent>),
}

impl Antecedent {
    /// Atom constructor.
    pub fn is(variable: impl Into<String>, term: impl Into<String>) -> Self {
        Antecedent::Is {
            variable: variable.into(),
            term: term.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Antecedent) -> Self {
        Antecedent::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Antecedent) -> Self {
        Antecedent::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Antecedent::Not(Box::new(self))
    }

    /// Evaluate the antecedent given a lookup of atom truth values.
    ///
    /// `grade(variable, term)` must return the fuzzified membership grade of
    /// the measurement of `variable` in `term`, or an error if either is
    /// unknown.
    pub fn eval<F>(&self, grade: &mut F) -> Result<Truth, FuzzyError>
    where
        F: FnMut(&str, &str) -> Result<Truth, FuzzyError>,
    {
        match self {
            Antecedent::Is { variable, term } => grade(variable, term),
            Antecedent::And(a, b) => Ok(a.eval(grade)?.min(b.eval(grade)?)),
            Antecedent::Or(a, b) => Ok(a.eval(grade)?.max(b.eval(grade)?)),
            Antecedent::Not(a) => Ok(1.0 - a.eval(grade)?),
        }
    }

    /// Collect the names of all input variables this antecedent references.
    pub fn referenced_variables(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            Antecedent::Is { variable, .. } => {
                out.insert(variable.as_str());
            }
            Antecedent::And(a, b) | Antecedent::Or(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Antecedent::Not(a) => a.collect_variables(out),
        }
    }
}

impl fmt::Display for Antecedent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Antecedent::Is { variable, term } => write!(f, "{variable} IS {term}"),
            Antecedent::And(a, b) => write!(f, "({a} AND {b})"),
            Antecedent::Or(a, b) => write!(f, "({a} OR {b})"),
            Antecedent::Not(a) => write!(f, "(NOT {a})"),
        }
    }
}

/// The consequent ("THEN" part): `variable IS term`.
#[derive(Debug, Clone, PartialEq)]
pub struct Consequent {
    /// Output variable name.
    pub variable: String,
    /// Term name on the output variable.
    pub term: String,
}

impl fmt::Display for Consequent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} IS {}", self.variable, self.term)
    }
}

/// A complete fuzzy rule with an optional weight in `[0, 1]`.
///
/// Weights are an extension over the paper (default 1.0): they let an
/// administrator de-emphasize a rule without deleting it, and they are used
/// by the service-specific rule bases (Section 4.1, "an administrator can add
/// service-specific rule bases for mission critical services").
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The IF part.
    pub antecedent: Antecedent,
    /// The THEN part.
    pub consequent: Consequent,
    /// Multiplier applied to the antecedent truth before clipping.
    pub weight: Truth,
}

impl Rule {
    /// Create a rule with weight 1.0.
    pub fn new(
        antecedent: Antecedent,
        variable: impl Into<String>,
        term: impl Into<String>,
    ) -> Self {
        Rule {
            antecedent,
            consequent: Consequent {
                variable: variable.into(),
                term: term.into(),
            },
            weight: 1.0,
        }
    }

    /// Set the rule weight (clamped into `[0, 1]`).
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight.clamp(0.0, 1.0);
        self
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (self.weight - 1.0).abs() < f64::EPSILON {
            write!(f, "IF {} THEN {}", self.antecedent, self.consequent)
        } else {
            write!(
                f,
                "IF {} THEN {} WITH {}",
                self.antecedent, self.consequent, self.weight
            )
        }
    }
}

/// An ordered collection of rules — one rule base per trigger kind in the
/// AutoGlobe controller (Section 4.1) and one per action in the
/// server-selection controller (Section 4.2).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleBase {
    rules: Vec<Rule>,
}

impl RuleBase {
    /// An empty rule base.
    pub fn new() -> Self {
        RuleBase::default()
    }

    /// Build from a vector of rules.
    pub fn from_rules(rules: Vec<Rule>) -> Self {
        RuleBase { rules }
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Append every rule of `other` (used to layer service-specific rule
    /// bases on top of the defaults).
    pub fn extend_from(&mut self, other: &RuleBase) {
        self.rules.extend(other.rules.iter().cloned());
    }

    /// The rules, in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if no rules are present.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// All output variables any rule writes to.
    pub fn output_variables(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .map(|r| r.consequent.variable.as_str())
            .collect()
    }

    /// All input variables any rule reads.
    pub fn input_variables(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            for v in r.antecedent.referenced_variables() {
                out.insert(v);
            }
        }
        out
    }
}

impl fmt::Display for RuleBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for RuleBase {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        RuleBase {
            rules: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grades<'a>(
        pairs: &'a [(&'a str, &'a str, f64)],
    ) -> impl FnMut(&str, &str) -> Result<Truth, FuzzyError> + 'a {
        move |v: &str, t: &str| {
            pairs
                .iter()
                .find(|(pv, pt, _)| *pv == v && *pt == t)
                .map(|&(_, _, g)| g)
                .ok_or_else(|| FuzzyError::UnknownVariable { name: v.into() })
        }
    }

    #[test]
    fn paper_rule_one_evaluates_to_0_6() {
        // IF cpuLoad IS high AND (perf IS low OR perf IS medium) with
        // μ_high(l)=0.8, μ_low(i)=0, μ_medium(i)=0.6 → min(0.8, max(0, 0.6)) = 0.6.
        let ant = Antecedent::is("cpuLoad", "high").and(
            Antecedent::is("performanceIndex", "low")
                .or(Antecedent::is("performanceIndex", "medium")),
        );
        let table = [
            ("cpuLoad", "high", 0.8),
            ("performanceIndex", "low", 0.0),
            ("performanceIndex", "medium", 0.6),
        ];
        let v = ant.eval(&mut grades(&table)).unwrap();
        assert!((v - 0.6).abs() < 1e-12);
    }

    #[test]
    fn paper_rule_two_evaluates_to_0_3() {
        let ant = Antecedent::is("cpuLoad", "high").and(Antecedent::is("performanceIndex", "high"));
        let table = [("cpuLoad", "high", 0.8), ("performanceIndex", "high", 0.3)];
        let v = ant.eval(&mut grades(&table)).unwrap();
        assert!((v - 0.3).abs() < 1e-12);
    }

    #[test]
    fn not_is_standard_complement() {
        let ant = Antecedent::is("x", "t").not();
        let table = [("x", "t", 0.25)];
        assert!((ant.eval(&mut grades(&table)).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn eval_propagates_unknown_variable() {
        let ant = Antecedent::is("missing", "t");
        let table = [("x", "t", 0.5)];
        assert!(ant.eval(&mut grades(&table)).is_err());
    }

    #[test]
    fn referenced_variables_are_collected() {
        let ant = Antecedent::is("a", "t")
            .and(Antecedent::is("b", "t").or(Antecedent::is("c", "t").not()));
        let vars: Vec<_> = ant.referenced_variables().into_iter().collect();
        assert_eq!(vars, vec!["a", "b", "c"]);
    }

    #[test]
    fn display_round_trips_through_parser_syntax() {
        let rule = Rule::new(
            Antecedent::is("cpuLoad", "high").and(Antecedent::is("memLoad", "low")),
            "scaleUp",
            "applicable",
        );
        assert_eq!(
            rule.to_string(),
            "IF (cpuLoad IS high AND memLoad IS low) THEN scaleUp IS applicable"
        );
        let weighted = rule.with_weight(0.5);
        assert!(weighted.to_string().ends_with("WITH 0.5"));
    }

    #[test]
    fn rule_base_collects_variable_sets() {
        let mut rb = RuleBase::new();
        rb.push(Rule::new(Antecedent::is("a", "t"), "out1", "applicable"));
        rb.push(Rule::new(Antecedent::is("b", "t"), "out2", "applicable"));
        assert_eq!(rb.len(), 2);
        assert!(!rb.is_empty());
        assert_eq!(
            rb.output_variables().into_iter().collect::<Vec<_>>(),
            vec!["out1", "out2"]
        );
        assert_eq!(
            rb.input_variables().into_iter().collect::<Vec<_>>(),
            vec!["a", "b"]
        );
    }

    #[test]
    fn weight_is_clamped() {
        let r = Rule::new(Antecedent::is("a", "t"), "o", "applicable").with_weight(7.0);
        assert_eq!(r.weight, 1.0);
        let r = Rule::new(Antecedent::is("a", "t"), "o", "applicable").with_weight(-1.0);
        assert_eq!(r.weight, 0.0);
    }

    #[test]
    fn extend_from_layers_rule_bases() {
        let mut base =
            RuleBase::from_rules(vec![Rule::new(Antecedent::is("a", "t"), "o", "applicable")]);
        let extra: RuleBase = vec![Rule::new(Antecedent::is("b", "t"), "o", "applicable")]
            .into_iter()
            .collect();
        base.extend_from(&extra);
        assert_eq!(base.len(), 2);
    }
}
