//! Fuzzy inference: evaluating a rule base against fuzzified measurements.
//!
//! The paper uses the popular *max–min* inference function: the consequent
//! fuzzy set of each rule is clipped at the truth of its antecedent, and all
//! clipped sets of the same output variable are combined with the fuzzy union
//! (pointwise maximum). We also provide *max–product* inference (scaling
//! instead of clipping) for ablation studies; for the paper's single-ramp
//! `applicable` output sets combined with leftmost-max defuzzification the
//! two coincide in their ranking of actions, which the ablation bench
//! demonstrates.

use crate::rule::RuleBase;
use crate::set::{FuzzySet, DEFAULT_RESOLUTION};
use crate::variable::LinguisticVariable;
use crate::{FuzzyError, Truth};
use std::collections::HashMap;

/// How a rule's truth is applied to its consequent set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferenceMethod {
    /// Clip the consequent set at the antecedent truth (the paper's choice).
    #[default]
    MaxMin,
    /// Scale the consequent set by the antecedent truth.
    MaxProduct,
}

/// The outcome of inference for one output variable: the aggregated fuzzy
/// set, plus bookkeeping about which rules fired.
#[derive(Debug, Clone)]
pub struct InferenceResult {
    /// Aggregated output fuzzy set (union of all clipped consequent sets).
    pub set: FuzzySet,
    /// Truth of each rule that targeted this variable, in rule order
    /// (including rules that evaluated to 0).
    pub rule_truths: Vec<Truth>,
}

impl InferenceResult {
    /// The strongest firing among the contributing rules.
    pub fn max_truth(&self) -> Truth {
        self.rule_truths.iter().copied().fold(0.0, f64::max)
    }
}

/// Stateless inference engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct InferenceConfig {
    /// Clipping vs. scaling.
    pub method: InferenceMethod,
    /// Samples per output universe.
    pub resolution: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            method: InferenceMethod::MaxMin,
            resolution: DEFAULT_RESOLUTION,
        }
    }
}

/// Evaluate `rules` given already-fuzzified input grades.
///
/// `grades` maps `(variable, term)` pairs to membership grades; missing pairs
/// are an error (the [`crate::Engine`] front-end guarantees they are always
/// present by fuzzifying every declared input).
///
/// `outputs` supplies the output variables' term membership functions and
/// universes. The result maps output variable names to their aggregated sets.
pub fn infer(
    rules: &RuleBase,
    grades: &HashMap<(String, String), Truth>,
    outputs: &HashMap<String, LinguisticVariable>,
    config: InferenceConfig,
) -> Result<HashMap<String, InferenceResult>, FuzzyError> {
    infer_impl(rules, grades, outputs, None, config)
}

/// Like [`infer`], but consequent term sets come from `grids` — sampled once
/// per `(output variable, term)` pair ahead of time — instead of being
/// re-sampled from the membership function on every call. The
/// [`crate::Engine`] maintains such a grid cache keyed by exactly these
/// pairs; grids must match `config.resolution`.
pub fn infer_with_grids(
    rules: &RuleBase,
    grades: &HashMap<(String, String), Truth>,
    outputs: &HashMap<String, LinguisticVariable>,
    grids: &HashMap<(String, String), FuzzySet>,
    config: InferenceConfig,
) -> Result<HashMap<String, InferenceResult>, FuzzyError> {
    infer_impl(rules, grades, outputs, Some(grids), config)
}

fn infer_impl(
    rules: &RuleBase,
    grades: &HashMap<(String, String), Truth>,
    outputs: &HashMap<String, LinguisticVariable>,
    grids: Option<&HashMap<(String, String), FuzzySet>>,
    config: InferenceConfig,
) -> Result<HashMap<String, InferenceResult>, FuzzyError> {
    let mut results: HashMap<String, InferenceResult> = HashMap::new();

    for rule in rules.rules() {
        let output_var =
            outputs
                .get(&rule.consequent.variable)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: rule.consequent.variable.clone(),
                })?;
        let term =
            output_var
                .term(&rule.consequent.term)
                .ok_or_else(|| FuzzyError::UnknownTerm {
                    variable: rule.consequent.variable.clone(),
                    term: rule.consequent.term.clone(),
                })?;

        let truth = rule.antecedent.eval(&mut |variable: &str, term: &str| {
            grades
                .get(&(variable.to_string(), term.to_string()))
                .copied()
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: format!("{variable} IS {term}"),
                })
        })? * rule.weight;

        let (lo, hi) = output_var.range();
        let entry = results
            .entry(rule.consequent.variable.clone())
            .or_insert_with(|| InferenceResult {
                set: FuzzySet::empty(lo, hi, config.resolution),
                rule_truths: Vec::new(),
            });
        entry.rule_truths.push(truth);

        if truth > 0.0 {
            let key = (
                rule.consequent.variable.clone(),
                rule.consequent.term.clone(),
            );
            match grids.and_then(|g| g.get(&key)) {
                // Fast path: clip/scale and union fused over the shared grid,
                // no per-rule set materialization.
                Some(grid) => match config.method {
                    InferenceMethod::MaxMin => entry.set.union_clipped(grid, truth),
                    InferenceMethod::MaxProduct => entry.set.union_scaled(grid, truth),
                },
                // Legacy path: sample the membership function on the spot.
                None => {
                    let mut clipped =
                        FuzzySet::from_membership(term.membership(), lo, hi, config.resolution);
                    match config.method {
                        InferenceMethod::MaxMin => clipped.clip(truth),
                        InferenceMethod::MaxProduct => clipped.scale(truth),
                    }
                    entry.set.union_assign(&clipped);
                }
            }
        }
    }

    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rules;
    use crate::variable::LinguisticVariable;

    type Setup = (
        RuleBase,
        HashMap<(String, String), Truth>,
        HashMap<String, LinguisticVariable>,
    );

    fn paper_setup() -> Setup {
        let rules = parse_rules(
            "IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) \
             THEN scaleUp IS applicable \
             IF cpuLoad IS high AND performanceIndex IS high THEN scaleOut IS applicable",
        )
        .unwrap();
        let mut grades = HashMap::new();
        for (v, t, g) in [
            ("cpuLoad", "low", 0.0),
            ("cpuLoad", "medium", 0.0),
            ("cpuLoad", "high", 0.8),
            ("performanceIndex", "low", 0.0),
            ("performanceIndex", "medium", 0.6),
            ("performanceIndex", "high", 0.3),
        ] {
            grades.insert((v.to_string(), t.to_string()), g);
        }
        let mut outputs = HashMap::new();
        outputs.insert(
            "scaleUp".to_string(),
            LinguisticVariable::applicability("scaleUp"),
        );
        outputs.insert(
            "scaleOut".to_string(),
            LinguisticVariable::applicability("scaleOut"),
        );
        (rules, grades, outputs)
    }

    #[test]
    fn paper_worked_example_clips_at_0_6_and_0_3() {
        let (rules, grades, outputs) = paper_setup();
        let results = infer(&rules, &grades, &outputs, InferenceConfig::default()).unwrap();

        let up = &results["scaleUp"];
        assert!(
            (up.set.height() - 0.6).abs() < 1e-9,
            "figure 5: clipped at 0.6"
        );
        assert_eq!(up.rule_truths.len(), 1);
        assert!((up.rule_truths[0] - 0.6).abs() < 1e-12);

        let out = &results["scaleOut"];
        assert!((out.set.height() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn zero_truth_rules_leave_set_empty_but_are_recorded() {
        let rules = parse_rules("IF cpuLoad IS low THEN scaleIn IS applicable").unwrap();
        let mut grades = HashMap::new();
        grades.insert(("cpuLoad".to_string(), "low".to_string()), 0.0);
        let mut outputs = HashMap::new();
        outputs.insert(
            "scaleIn".to_string(),
            LinguisticVariable::applicability("scaleIn"),
        );
        let results = infer(&rules, &grades, &outputs, InferenceConfig::default()).unwrap();
        let r = &results["scaleIn"];
        assert!(r.set.is_empty());
        assert_eq!(r.rule_truths, vec![0.0]);
        assert_eq!(r.max_truth(), 0.0);
    }

    #[test]
    fn union_of_two_rules_on_same_output() {
        let rules = parse_rules(
            "IF a IS t THEN o IS applicable \
             IF b IS t THEN o IS applicable",
        )
        .unwrap();
        let mut grades = HashMap::new();
        grades.insert(("a".to_string(), "t".to_string()), 0.2);
        grades.insert(("b".to_string(), "t".to_string()), 0.9);
        let mut outputs = HashMap::new();
        outputs.insert("o".to_string(), LinguisticVariable::applicability("o"));
        let results = infer(&rules, &grades, &outputs, InferenceConfig::default()).unwrap();
        let r = &results["o"];
        // Union height is the stronger firing.
        assert!((r.set.height() - 0.9).abs() < 1e-9);
        assert_eq!(r.rule_truths.len(), 2);
        assert!((r.max_truth() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn max_product_scales_instead_of_clipping() {
        let (rules, grades, outputs) = paper_setup();
        let cfg = InferenceConfig {
            method: InferenceMethod::MaxProduct,
            ..Default::default()
        };
        let results = infer(&rules, &grades, &outputs, cfg).unwrap();
        // The applicable ramp scaled by 0.6 still has height 0.6 but is no
        // longer flat-topped: at x = 0.5 it is 0.3, not 0.5.
        let up = &results["scaleUp"];
        assert!((up.set.height() - 0.6).abs() < 1e-9);
        assert!((up.set.eval(0.5) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn rule_weight_attenuates_truth() {
        let rules = parse_rules("IF a IS t THEN o IS applicable WITH 0.5").unwrap();
        let mut grades = HashMap::new();
        grades.insert(("a".to_string(), "t".to_string()), 0.8);
        let mut outputs = HashMap::new();
        outputs.insert("o".to_string(), LinguisticVariable::applicability("o"));
        let results = infer(&rules, &grades, &outputs, InferenceConfig::default()).unwrap();
        assert!((results["o"].set.height() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn unknown_output_variable_errors() {
        let rules = parse_rules("IF a IS t THEN nonexistent IS applicable").unwrap();
        let mut grades = HashMap::new();
        grades.insert(("a".to_string(), "t".to_string()), 0.8);
        let outputs = HashMap::new();
        assert!(matches!(
            infer(&rules, &grades, &outputs, InferenceConfig::default()),
            Err(FuzzyError::UnknownVariable { .. })
        ));
    }

    #[test]
    fn unknown_output_term_errors() {
        let rules = parse_rules("IF a IS t THEN o IS bogus").unwrap();
        let mut grades = HashMap::new();
        grades.insert(("a".to_string(), "t".to_string()), 0.8);
        let mut outputs = HashMap::new();
        outputs.insert("o".to_string(), LinguisticVariable::applicability("o"));
        assert!(matches!(
            infer(&rules, &grades, &outputs, InferenceConfig::default()),
            Err(FuzzyError::UnknownTerm { .. })
        ));
    }

    #[test]
    fn precomputed_grids_reproduce_the_sampling_path_exactly() {
        // `infer_with_grids` over grids sampled once must be bit-identical to
        // `infer` re-sampling the membership functions per call, for both
        // inference methods.
        let (rules, grades, outputs) = paper_setup();
        let mut grids = HashMap::new();
        for (name, var) in &outputs {
            let (lo, hi) = var.range();
            for term in var.terms() {
                grids.insert(
                    (name.clone(), term.name().to_string()),
                    FuzzySet::from_membership(term.membership(), lo, hi, DEFAULT_RESOLUTION),
                );
            }
        }
        for method in [InferenceMethod::MaxMin, InferenceMethod::MaxProduct] {
            let cfg = InferenceConfig {
                method,
                ..Default::default()
            };
            let fresh = infer(&rules, &grades, &outputs, cfg).unwrap();
            let cached = infer_with_grids(&rules, &grades, &outputs, &grids, cfg).unwrap();
            assert_eq!(fresh.len(), cached.len());
            for (name, r) in &fresh {
                assert_eq!(r.rule_truths, cached[name].rule_truths);
                assert_eq!(r.set, cached[name].set, "{name} under {method:?}");
            }
        }
    }

    #[test]
    fn missing_grade_errors() {
        let rules = parse_rules("IF unmeasured IS t THEN o IS applicable").unwrap();
        let grades = HashMap::new();
        let mut outputs = HashMap::new();
        outputs.insert("o".to_string(), LinguisticVariable::applicability("o"));
        assert!(infer(&rules, &grades, &outputs, InferenceConfig::default()).is_err());
    }
}
