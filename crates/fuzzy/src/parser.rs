//! Text DSL for fuzzy rules.
//!
//! The grammar mirrors the notation used throughout the paper:
//!
//! ```text
//! rule       := "IF" or_expr "THEN" ident "IS" ident [ "WITH" number ]
//! or_expr    := and_expr { "OR" and_expr }
//! and_expr   := not_expr { "AND" not_expr }
//! not_expr   := "NOT" not_expr | atom
//! atom       := "(" or_expr ")" | ident "IS" ident
//! ident      := [A-Za-z_][A-Za-z0-9_.-]*
//! number     := decimal literal in [0, 1]
//! ```
//!
//! Keywords (`IF`, `THEN`, `IS`, `AND`, `OR`, `NOT`, `WITH`) are
//! case-insensitive; identifiers are case-sensitive (the paper writes
//! `cpuLoad`, `scaleUp`, …). `AND` binds tighter than `OR`, matching both
//! intuition and the parenthesization in the paper's sample rules. Line
//! comments start with `#`. [`parse_rules`] reads a whole rule base: one rule
//! per non-empty statement, statements separated by `;` or newlines (a rule
//! may span lines until it is syntactically complete, so multi-line rules as
//! printed in the paper parse too).

use crate::error::FuzzyError;
use crate::rule::{Antecedent, Rule, RuleBase};

/// Token kinds produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    If,
    Then,
    Is,
    And,
    Or,
    Not,
    With,
    LParen,
    RParen,
    Ident(String),
    Number(f64),
}

/// A token plus the byte offset where it starts (for error messages).
#[derive(Debug, Clone, PartialEq)]
struct Spanned {
    tok: Tok,
    pos: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, FuzzyError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '#' {
            // Line comment.
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '(' {
            toks.push(Spanned {
                tok: Tok::LParen,
                pos: i,
            });
            i += 1;
            continue;
        }
        if c == ')' {
            toks.push(Spanned {
                tok: Tok::RParen,
                pos: i,
            });
            i += 1;
            continue;
        }
        if c.is_ascii_digit() || c == '.' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            let text = &input[start..i];
            let value: f64 = text.parse().map_err(|_| FuzzyError::Parse {
                position: start,
                message: format!("invalid number literal `{text}`"),
            })?;
            toks.push(Spanned {
                tok: Tok::Number(value),
                pos: start,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let b = bytes[i] as char;
                if b.is_ascii_alphanumeric() || b == '_' || b == '.' || b == '-' {
                    i += 1;
                } else {
                    break;
                }
            }
            let word = &input[start..i];
            let tok = match word.to_ascii_uppercase().as_str() {
                "IF" => Tok::If,
                "THEN" => Tok::Then,
                "IS" => Tok::Is,
                "AND" => Tok::And,
                "OR" => Tok::Or,
                "NOT" => Tok::Not,
                "WITH" => Tok::With,
                _ => Tok::Ident(word.to_string()),
            };
            toks.push(Spanned { tok, pos: start });
            continue;
        }
        return Err(FuzzyError::Parse {
            position: i,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Spanned>,
    idx: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.idx).map(|s| &s.tok)
    }

    fn pos(&self) -> usize {
        self.toks
            .get(self.idx)
            .map(|s| s.pos)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.idx).map(|s| s.tok.clone());
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Tok, what: &str) -> Result<(), FuzzyError> {
        let pos = self.pos();
        match self.bump() {
            Some(ref t) if t == expected => Ok(()),
            other => Err(FuzzyError::Parse {
                position: pos,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, FuzzyError> {
        let pos = self.pos();
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(name),
            other => Err(FuzzyError::Parse {
                position: pos,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn parse_rule(&mut self) -> Result<Rule, FuzzyError> {
        self.expect(&Tok::If, "IF")?;
        let antecedent = self.parse_or()?;
        self.expect(&Tok::Then, "THEN")?;
        let variable = self.expect_ident("output variable name")?;
        self.expect(&Tok::Is, "IS")?;
        let term = self.expect_ident("output term name")?;
        let mut rule = Rule::new(antecedent, variable, term);
        if self.peek() == Some(&Tok::With) {
            self.bump();
            let pos = self.pos();
            match self.bump() {
                Some(Tok::Number(w)) if (0.0..=1.0).contains(&w) => {
                    rule = rule.with_weight(w);
                }
                other => {
                    return Err(FuzzyError::Parse {
                        position: pos,
                        message: format!("expected weight in [0, 1] after WITH, found {other:?}"),
                    })
                }
            }
        }
        Ok(rule)
    }

    fn parse_or(&mut self) -> Result<Antecedent, FuzzyError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            let right = self.parse_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Antecedent, FuzzyError> {
        let mut left = self.parse_not()?;
        while self.peek() == Some(&Tok::And) {
            self.bump();
            let right = self.parse_not()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Antecedent, FuzzyError> {
        if self.peek() == Some(&Tok::Not) {
            self.bump();
            Ok(self.parse_not()?.not())
        } else {
            self.parse_atom()
        }
    }

    fn parse_atom(&mut self) -> Result<Antecedent, FuzzyError> {
        if self.peek() == Some(&Tok::LParen) {
            self.bump();
            let inner = self.parse_or()?;
            self.expect(&Tok::RParen, "closing parenthesis")?;
            return Ok(inner);
        }
        let variable = self.expect_ident("input variable name")?;
        self.expect(&Tok::Is, "IS")?;
        let term = self.expect_ident("term name")?;
        Ok(Antecedent::is(variable, term))
    }
}

/// Parse a single rule from text.
///
/// ```
/// use autoglobe_fuzzy::parse_rule;
/// let rule = parse_rule(
///     "IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) \
///      THEN scaleUp IS applicable",
/// )
/// .unwrap();
/// assert_eq!(rule.consequent.variable, "scaleUp");
/// ```
pub fn parse_rule(input: &str) -> Result<Rule, FuzzyError> {
    let toks = lex(input)?;
    let mut parser = Parser {
        toks,
        idx: 0,
        input_len: input.len(),
    };
    let rule = parser.parse_rule()?;
    if parser.idx != parser.toks.len() {
        return Err(FuzzyError::Parse {
            position: parser.pos(),
            message: "trailing input after rule".into(),
        });
    }
    Ok(rule)
}

/// Parse a whole rule base. Statements end at a `;` or at the end of input;
/// a rule may span multiple lines. Empty statements and `#` comments are
/// ignored.
pub fn parse_rules(input: &str) -> Result<RuleBase, FuzzyError> {
    let toks = lex(input)?;
    let mut parser = Parser {
        toks,
        idx: 0,
        input_len: input.len(),
    };
    let mut base = RuleBase::new();
    while parser.idx < parser.toks.len() {
        base.push(parser.parse_rule()?);
        // Each rule must be directly followed by the next IF; the grammar is
        // prefix-free so an explicit separator is unnecessary, but we accept
        // the text as-is: the next token must be IF or end of input.
        if let Some(tok) = parser.peek() {
            if *tok != Tok::If {
                return Err(FuzzyError::Parse {
                    position: parser.pos(),
                    message: format!("expected start of next rule (IF), found {tok:?}"),
                });
            }
        }
    }
    Ok(base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Antecedent;

    #[test]
    fn parses_paper_sample_rule_one() {
        let r = parse_rule(
            "IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) \
             THEN scaleUp IS applicable",
        )
        .unwrap();
        let expected = Antecedent::is("cpuLoad", "high").and(
            Antecedent::is("performanceIndex", "low")
                .or(Antecedent::is("performanceIndex", "medium")),
        );
        assert_eq!(r.antecedent, expected);
        assert_eq!(r.consequent.variable, "scaleUp");
        assert_eq!(r.consequent.term, "applicable");
        assert_eq!(r.weight, 1.0);
    }

    #[test]
    fn parses_paper_sample_rule_two() {
        let r = parse_rule(
            "IF cpuLoad IS high AND performanceIndex IS high THEN scaleOut IS applicable",
        )
        .unwrap();
        assert_eq!(r.consequent.variable, "scaleOut");
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let r = parse_rule("IF a IS x OR b IS y AND c IS z THEN o IS applicable").unwrap();
        // Must parse as a OR (b AND c).
        let expected =
            Antecedent::is("a", "x").or(Antecedent::is("b", "y").and(Antecedent::is("c", "z")));
        assert_eq!(r.antecedent, expected);
    }

    #[test]
    fn not_and_nesting() {
        let r = parse_rule("IF NOT (a IS x AND NOT b IS y) THEN o IS applicable").unwrap();
        let expected = Antecedent::is("a", "x")
            .and(Antecedent::is("b", "y").not())
            .not();
        assert_eq!(r.antecedent, expected);
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let r = parse_rule("if cpuLoad is high then scaleUp is applicable").unwrap();
        assert_eq!(r.consequent.variable, "scaleUp");
    }

    #[test]
    fn identifiers_are_case_sensitive() {
        let r = parse_rule("IF CpuLoad IS High THEN o IS applicable").unwrap();
        match &r.antecedent {
            Antecedent::Is { variable, term } => {
                assert_eq!(variable, "CpuLoad");
                assert_eq!(term, "High");
            }
            other => panic!("unexpected antecedent {other:?}"),
        }
    }

    #[test]
    fn with_weight() {
        let r = parse_rule("IF a IS x THEN o IS applicable WITH 0.5").unwrap();
        assert_eq!(r.weight, 0.5);
        assert!(parse_rule("IF a IS x THEN o IS applicable WITH 1.5").is_err());
        assert!(parse_rule("IF a IS x THEN o IS applicable WITH abc").is_err());
    }

    #[test]
    fn comments_and_multiline_rules() {
        let base = parse_rules(
            "# overload handling\n\
             IF cpuLoad IS high\n   AND performanceIndex IS high\nTHEN scaleOut IS applicable\n\
             # idle handling\n\
             IF cpuLoad IS low THEN scaleIn IS applicable\n",
        )
        .unwrap();
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn parse_rules_reports_garbage_between_rules() {
        let err =
            parse_rules("IF a IS x THEN o IS applicable garbage IF b IS y THEN o IS applicable");
        assert!(err.is_err());
    }

    #[test]
    fn error_positions_are_plausible() {
        let err = parse_rule("IF a IS THEN o IS applicable").unwrap_err();
        match err {
            FuzzyError::Parse { position, .. } => assert!(position >= 8),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unexpected_characters() {
        assert!(parse_rule("IF a IS x THEN o IS applicable @").is_err());
        assert!(parse_rule("IF a % x THEN o IS applicable").is_err());
    }

    #[test]
    fn rejects_empty_and_truncated_input() {
        assert!(parse_rule("").is_err());
        assert!(parse_rule("IF").is_err());
        assert!(parse_rule("IF a IS x").is_err());
        assert!(parse_rule("IF a IS x THEN").is_err());
        assert!(parse_rule("IF a IS x THEN o").is_err());
        assert!(parse_rule("IF a IS x THEN o IS").is_err());
    }

    #[test]
    fn unbalanced_parens_are_rejected() {
        assert!(parse_rule("IF (a IS x THEN o IS applicable").is_err());
        assert!(parse_rule("IF a IS x) THEN o IS applicable").is_err());
    }

    #[test]
    fn display_output_reparses_to_same_ast() {
        let original = parse_rule(
            "IF NOT cpuLoad IS low AND (memLoad IS high OR swapSpace IS low) \
             THEN scaleUp IS applicable WITH 0.75",
        )
        .unwrap();
        let reparsed = parse_rule(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn identifier_charset_allows_dots_and_dashes() {
        let r = parse_rule("IF db.cpu-load IS high THEN o IS applicable").unwrap();
        match &r.antecedent {
            Antecedent::Is { variable, .. } => assert_eq!(variable, "db.cpu-load"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
