//! # autoglobe-fuzzy — a generic fuzzy-logic control engine
//!
//! This crate implements the fuzzy-logic machinery that underpins the
//! AutoGlobe controller (Seltzsam, Gmach, Krompass, Kemper: *AutoGlobe: An
//! Automatic Administration Concept for Service-Oriented Database
//! Applications*, ICDE 2006, Sections 3 and 4). It is deliberately generic —
//! nothing in here knows about servers or services — so it can be reused for
//! any rule-based control problem.
//!
//! ## Concepts
//!
//! * [`MembershipFunction`] — maps a crisp value to a truth value in `[0, 1]`.
//!   Trapezoids are what the paper uses (Figure 3); triangles, shoulders,
//!   singletons and piecewise-linear functions are provided as well.
//! * [`LinguisticVariable`] — a named variable over a universe of discourse
//!   with a set of [`LinguisticTerm`]s (e.g. `cpuLoad` with *low*, *medium*,
//!   *high*).
//! * [`Rule`] / [`RuleBase`] — `IF <antecedent> THEN <var> IS <term>` rules.
//!   Antecedents combine `<var> IS <term>` atoms with `AND` (minimum), `OR`
//!   (maximum) and `NOT` (complement). Rules are written in a small text DSL
//!   (see [`parse_rule`]) that mirrors the notation of the paper:
//!
//!   ```text
//!   IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium)
//!   THEN scaleUp IS applicable
//!   ```
//!
//! * [`Engine`] — the controller cycle of Figure 4: fuzzification of crisp
//!   measurements, rule evaluation with max–min inference (clipping), fuzzy
//!   union aggregation per output variable, and defuzzification. The paper's
//!   defuzzifier is [`Defuzzifier::LeftmostMax`]; mean-of-maxima and centroid
//!   are included for ablation studies.
//!
//! ## Worked example (the paper's Section 3 numbers)
//!
//! ```
//! use autoglobe_fuzzy::{Engine, LinguisticVariable, MembershipFunction};
//!
//! let mut engine = Engine::new();
//! engine.add_input(
//!     LinguisticVariable::builder("cpuLoad")
//!         .term("low", MembershipFunction::trapezoid(0.0, 0.0, 0.2, 0.4))
//!         .term("medium", MembershipFunction::trapezoid(0.2, 0.4, 0.5, 0.7))
//!         .term("high", MembershipFunction::trapezoid(0.5, 0.875, 1.0, 1.0))
//!         .build()
//!         .unwrap(),
//! );
//! engine.add_input(
//!     LinguisticVariable::builder("performanceIndex")
//!         .range(0.0, 10.0)
//!         .term("low", MembershipFunction::trapezoid(0.0, 0.0, 1.0, 3.0))
//!         .term("medium", MembershipFunction::trapezoid(1.0, 3.0, 5.0, 7.0))
//!         .term("high", MembershipFunction::trapezoid(5.0, 7.0, 10.0, 10.0))
//!         .build()
//!         .unwrap(),
//! );
//! engine.add_output(LinguisticVariable::applicability("scaleUp"));
//! engine.add_output(LinguisticVariable::applicability("scaleOut"));
//! engine
//!     .add_rule_str(
//!         "IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) \
//!          THEN scaleUp IS applicable",
//!     )
//!     .unwrap();
//! engine
//!     .add_rule_str("IF cpuLoad IS high AND performanceIndex IS high THEN scaleOut IS applicable")
//!     .unwrap();
//!
//! let out = engine
//!     .run([("cpuLoad", 0.9), ("performanceIndex", 5.8)])
//!     .unwrap();
//! // With the grades of the paper's example the rule antecedents evaluate to
//! // 0.6 (scale-up) and 0.3 (scale-out); leftmost-max defuzzification of the
//! // clipped `applicable` set yields those same values.
//! assert!((out["scaleUp"] - 0.6).abs() < 2e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod defuzz;
pub mod engine;
pub mod error;
pub mod inference;
pub mod membership;
pub mod parser;
pub mod rule;
pub mod set;
pub mod variable;

pub use defuzz::Defuzzifier;
pub use engine::{BatchOutputs, Engine, EngineConfig, Outputs};
pub use error::FuzzyError;
pub use inference::{infer, infer_with_grids, InferenceConfig, InferenceMethod, InferenceResult};
pub use membership::MembershipFunction;
pub use parser::{parse_rule, parse_rules};
pub use rule::{Antecedent, Consequent, Rule, RuleBase};
pub use set::FuzzySet;
pub use variable::{LinguisticTerm, LinguisticVariable, VariableBuilder};

/// A truth value in `[0, 1]`.
pub type Truth = f64;

/// Clamp a value into `[0, 1]`.
#[inline]
pub(crate) fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}
