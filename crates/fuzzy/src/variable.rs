//! Linguistic variables and terms.
//!
//! A linguistic variable (paper Section 3, Figure 3) is characterized by its
//! name, a set of linguistic terms, and a membership function per term. The
//! universe of discourse defaults to `[0, 1]` — the natural range for loads
//! and applicabilities — but can be widened (e.g. performance indices range
//! over `[0, 10]` in our rule bases).

use crate::{FuzzyError, MembershipFunction, Truth};

/// One linguistic term (e.g. *low*) with its membership function.
#[derive(Debug, Clone, PartialEq)]
pub struct LinguisticTerm {
    name: String,
    mf: MembershipFunction,
}

impl LinguisticTerm {
    /// Create a term.
    pub fn new(name: impl Into<String>, mf: MembershipFunction) -> Self {
        LinguisticTerm {
            name: name.into(),
            mf,
        }
    }

    /// The term's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The term's membership function.
    pub fn membership(&self) -> &MembershipFunction {
        &self.mf
    }

    /// Evaluate the term's membership grade at `x`.
    pub fn grade(&self, x: f64) -> Truth {
        self.mf.eval(x)
    }
}

/// A linguistic variable: a name, a universe of discourse, and a set of terms.
#[derive(Debug, Clone, PartialEq)]
pub struct LinguisticVariable {
    name: String,
    lo: f64,
    hi: f64,
    terms: Vec<LinguisticTerm>,
}

impl LinguisticVariable {
    /// Start building a variable with universe `[0, 1]`.
    pub fn builder(name: impl Into<String>) -> VariableBuilder {
        VariableBuilder {
            name: name.into(),
            lo: 0.0,
            hi: 1.0,
            terms: Vec::new(),
        }
    }

    /// The standard output variable of the AutoGlobe action- and
    /// server-selection controllers: a single `applicable` term that rises
    /// linearly from 0 at 0 to 1 at 1 (paper Figure 5). Clipping this set at
    /// height `h` and taking the leftmost maximum yields exactly `h`, which is
    /// how the paper turns rule truth into an applicability score.
    pub fn applicability(name: impl Into<String>) -> Self {
        LinguisticVariable::builder(name)
            .term("applicable", MembershipFunction::right_shoulder(0.0, 1.0))
            .build()
            .expect("applicability variable is always valid")
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The universe of discourse `[lo, hi]`.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// All terms, in declaration order.
    pub fn terms(&self) -> &[LinguisticTerm] {
        &self.terms
    }

    /// Look up a term by name.
    pub fn term(&self, name: &str) -> Option<&LinguisticTerm> {
        self.terms.iter().find(|t| t.name == name)
    }

    /// Index of a term by name (used by the engine for dense storage).
    pub fn term_index(&self, name: &str) -> Option<usize> {
        self.terms.iter().position(|t| t.name == name)
    }

    /// Fuzzify a crisp value: the membership grade of every term, in term
    /// declaration order. The crisp value is clamped into the universe first,
    /// so out-of-range measurements behave like the nearest boundary.
    pub fn fuzzify(&self, x: f64) -> Vec<Truth> {
        let x = x.clamp(self.lo, self.hi);
        self.terms.iter().map(|t| t.grade(x)).collect()
    }

    /// Fuzzify and return `(term name, grade)` pairs — convenient for
    /// debugging and for the controller console.
    pub fn fuzzify_named(&self, x: f64) -> Vec<(&str, Truth)> {
        let x = x.clamp(self.lo, self.hi);
        self.terms
            .iter()
            .map(|t| (t.name.as_str(), t.grade(x)))
            .collect()
    }
}

/// Builder for [`LinguisticVariable`].
#[derive(Debug, Clone)]
pub struct VariableBuilder {
    name: String,
    lo: f64,
    hi: f64,
    terms: Vec<LinguisticTerm>,
}

impl VariableBuilder {
    /// Set the universe of discourse (default `[0, 1]`).
    pub fn range(mut self, lo: f64, hi: f64) -> Self {
        self.lo = lo;
        self.hi = hi;
        self
    }

    /// Add a term.
    pub fn term(mut self, name: impl Into<String>, mf: MembershipFunction) -> Self {
        self.terms.push(LinguisticTerm::new(name, mf));
        self
    }

    /// Finish, validating the universe and term uniqueness.
    pub fn build(self) -> Result<LinguisticVariable, FuzzyError> {
        if !(self.lo.is_finite() && self.hi.is_finite()) || self.lo >= self.hi {
            return Err(FuzzyError::InvalidVariable {
                name: self.name,
                reason: format!("universe [{}, {}] is empty or not finite", self.lo, self.hi),
            });
        }
        if self.terms.is_empty() {
            return Err(FuzzyError::InvalidVariable {
                name: self.name,
                reason: "a linguistic variable needs at least one term".into(),
            });
        }
        for (i, t) in self.terms.iter().enumerate() {
            if self.terms[..i].iter().any(|u| u.name == t.name) {
                return Err(FuzzyError::DuplicateTerm {
                    variable: self.name,
                    term: t.name.clone(),
                });
            }
        }
        Ok(LinguisticVariable {
            name: self.name,
            lo: self.lo,
            hi: self.hi,
            terms: self.terms,
        })
    }
}

/// Convenience constructor for the ubiquitous three-term load variable of the
/// paper (Figure 3): *low*, *medium*, *high* trapezoids over `[0, 1]`.
///
/// The knots are chosen so that the paper's worked example holds exactly:
/// `μ_medium(0.6) = 0.5` and `μ_high(0.6) = 0.2`, and at `l = 0.9`:
/// `μ_low = 0`, `μ_medium = 0`, `μ_high = 0.8`.
pub fn load_variable(name: impl Into<String>) -> LinguisticVariable {
    LinguisticVariable::builder(name)
        .term("low", MembershipFunction::trapezoid(0.0, 0.0, 0.2, 0.4))
        .term("medium", MembershipFunction::trapezoid(0.2, 0.4, 0.5, 0.7))
        .term("high", MembershipFunction::trapezoid(0.5, 1.0, 1.0, 1.0))
        .build()
        .expect("standard load variable is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_bad_universe_and_duplicates() {
        assert!(matches!(
            LinguisticVariable::builder("x")
                .range(1.0, 1.0)
                .term("t", MembershipFunction::singleton(0.5, 0.0))
                .build(),
            Err(FuzzyError::InvalidVariable { .. })
        ));
        assert!(matches!(
            LinguisticVariable::builder("x").build(),
            Err(FuzzyError::InvalidVariable { .. })
        ));
        assert!(matches!(
            LinguisticVariable::builder("x")
                .term("a", MembershipFunction::singleton(0.1, 0.0))
                .term("a", MembershipFunction::singleton(0.2, 0.0))
                .build(),
            Err(FuzzyError::DuplicateTerm { .. })
        ));
    }

    #[test]
    fn fuzzify_clamps_out_of_range_measurements() {
        let v = load_variable("cpuLoad");
        // 1.7 clamps to 1.0 → fully high.
        let grades = v.fuzzify(1.7);
        assert_eq!(grades.len(), 3);
        assert_eq!(grades[2], 1.0);
        assert_eq!(grades[0], 0.0);
        // -0.3 clamps to 0.0 → fully low.
        let grades = v.fuzzify(-0.3);
        assert_eq!(grades[0], 1.0);
    }

    #[test]
    fn paper_example_grades() {
        let v = load_variable("cpuLoad");
        let g = v.fuzzify_named(0.6);
        let get = |n: &str| g.iter().find(|(t, _)| *t == n).unwrap().1;
        assert!((get("low") - 0.0).abs() < 1e-12);
        assert!((get("medium") - 0.5).abs() < 1e-12);
        assert!((get("high") - 0.2).abs() < 1e-12);

        let g = v.fuzzify_named(0.9);
        let get = |n: &str| g.iter().find(|(t, _)| *t == n).unwrap().1;
        assert!((get("low") - 0.0).abs() < 1e-12);
        assert!((get("medium") - 0.0).abs() < 1e-12);
        assert!((get("high") - 0.8).abs() < 1e-12);
    }

    #[test]
    fn applicability_variable_is_linear_ramp() {
        let v = LinguisticVariable::applicability("scaleUp");
        let t = v.term("applicable").unwrap();
        assert!((t.grade(0.0) - 0.0).abs() < 1e-12);
        assert!((t.grade(0.25) - 0.25).abs() < 1e-12);
        assert!((t.grade(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn term_lookup() {
        let v = load_variable("x");
        assert_eq!(v.term_index("medium"), Some(1));
        assert!(v.term("nope").is_none());
        assert_eq!(v.terms().len(), 3);
        assert_eq!(v.range(), (0.0, 1.0));
    }
}
