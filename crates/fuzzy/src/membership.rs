//! Membership functions mapping crisp values to truth values.
//!
//! The paper's controller uses trapezoid membership functions (Figure 3). We
//! additionally provide triangles (degenerate trapezoids), left/right
//! shoulders (half-open trapezoids saturating at the universe edge),
//! singletons and arbitrary piecewise-linear functions, which are useful when
//! writing custom rule bases for the server-selection controller.

use crate::{clamp01, FuzzyError, Truth};

/// A membership function `μ : ℝ → [0, 1]`.
///
/// All variants evaluate in constant time except [`MembershipFunction::Piecewise`],
/// which is `O(log n)` in the number of knots.
#[derive(Debug, Clone, PartialEq)]
pub enum MembershipFunction {
    /// Classic trapezoid with feet `a ≤ b ≤ c ≤ d`; 0 outside `[a, d]`,
    /// 1 on `[b, c]`, linear in between. A triangle is the `b == c` case.
    Trapezoid {
        /// Left foot (μ = 0 left of this).
        a: f64,
        /// Left shoulder (μ = 1 from here).
        b: f64,
        /// Right shoulder (μ = 1 until here).
        c: f64,
        /// Right foot (μ = 0 right of this).
        d: f64,
    },
    /// `1` left of `b`, falling linearly to `0` at `c` — the "low" end of a
    /// universe. Equivalent to `Trapezoid { a: -∞, b: -∞, c: b, d: c }`.
    LeftShoulder {
        /// Point up to which μ = 1.
        b: f64,
        /// Point from which μ = 0.
        c: f64,
    },
    /// `0` left of `a`, rising linearly to `1` at `b`, then `1` — the "high"
    /// end of a universe.
    RightShoulder {
        /// Point up to which μ = 0.
        a: f64,
        /// Point from which μ = 1.
        b: f64,
    },
    /// `1` exactly at `at` (within `tolerance`), `0` elsewhere. Useful for
    /// integer-valued variables such as instance counts.
    Singleton {
        /// The single supported value.
        at: f64,
        /// Half-width of the support interval.
        tolerance: f64,
    },
    /// Arbitrary piecewise-linear function given by `(x, μ(x))` knots sorted
    /// by `x`. Values outside the knot range take the first/last knot's value.
    Piecewise {
        /// Knots sorted strictly ascending in `x`, with `μ` in `[0, 1]`.
        knots: Vec<(f64, f64)>,
    },
}

impl MembershipFunction {
    /// Construct a trapezoid, validating `a ≤ b ≤ c ≤ d`.
    ///
    /// # Panics
    /// Panics if the knots are not monotonically non-decreasing or not finite.
    /// Use [`MembershipFunction::try_trapezoid`] for a fallible version.
    pub fn trapezoid(a: f64, b: f64, c: f64, d: f64) -> Self {
        Self::try_trapezoid(a, b, c, d).expect("invalid trapezoid")
    }

    /// Construct a trapezoid, validating `a ≤ b ≤ c ≤ d`.
    pub fn try_trapezoid(a: f64, b: f64, c: f64, d: f64) -> Result<Self, FuzzyError> {
        if !(a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite()) {
            return Err(FuzzyError::InvalidMembership {
                reason: format!("trapezoid knots must be finite, got ({a}, {b}, {c}, {d})"),
            });
        }
        if !(a <= b && b <= c && c <= d) {
            return Err(FuzzyError::InvalidMembership {
                reason: format!(
                    "trapezoid knots must satisfy a ≤ b ≤ c ≤ d, got ({a}, {b}, {c}, {d})"
                ),
            });
        }
        Ok(MembershipFunction::Trapezoid { a, b, c, d })
    }

    /// Construct a triangle (a trapezoid with a single peak).
    pub fn triangle(a: f64, peak: f64, d: f64) -> Self {
        Self::trapezoid(a, peak, peak, d)
    }

    /// Construct a left shoulder (μ = 1 for x ≤ b, μ = 0 for x ≥ c).
    ///
    /// # Panics
    /// Panics if `b > c` or the parameters are not finite.
    pub fn left_shoulder(b: f64, c: f64) -> Self {
        assert!(
            b.is_finite() && c.is_finite() && b <= c,
            "left shoulder requires finite b ≤ c, got ({b}, {c})"
        );
        MembershipFunction::LeftShoulder { b, c }
    }

    /// Construct a right shoulder (μ = 0 for x ≤ a, μ = 1 for x ≥ b).
    ///
    /// # Panics
    /// Panics if `a > b` or the parameters are not finite.
    pub fn right_shoulder(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite() && a <= b,
            "right shoulder requires finite a ≤ b, got ({a}, {b})"
        );
        MembershipFunction::RightShoulder { a, b }
    }

    /// Construct a singleton at `at` with the given half-width tolerance.
    ///
    /// # Panics
    /// Panics if `tolerance` is negative or the parameters are not finite.
    pub fn singleton(at: f64, tolerance: f64) -> Self {
        assert!(
            at.is_finite() && tolerance.is_finite() && tolerance >= 0.0,
            "singleton requires finite at and non-negative tolerance"
        );
        MembershipFunction::Singleton { at, tolerance }
    }

    /// Construct a piecewise-linear membership function from `(x, μ)` knots.
    pub fn piecewise(knots: Vec<(f64, f64)>) -> Result<Self, FuzzyError> {
        if knots.is_empty() {
            return Err(FuzzyError::InvalidMembership {
                reason: "piecewise membership needs at least one knot".into(),
            });
        }
        for w in knots.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(FuzzyError::InvalidMembership {
                    reason: format!(
                        "piecewise knots must be strictly ascending in x, got {} then {}",
                        w[0].0, w[1].0
                    ),
                });
            }
        }
        for &(x, mu) in &knots {
            if !x.is_finite() || !mu.is_finite() || !(0.0..=1.0).contains(&mu) {
                return Err(FuzzyError::InvalidMembership {
                    reason: format!("piecewise knot ({x}, {mu}) out of range"),
                });
            }
        }
        Ok(MembershipFunction::Piecewise { knots })
    }

    /// Evaluate the membership grade `μ(x)`.
    pub fn eval(&self, x: f64) -> Truth {
        match *self {
            MembershipFunction::Trapezoid { a, b, c, d } => {
                if x < a || x > d {
                    0.0
                } else if x < b {
                    // Rising edge. a < b here because x ∈ [a, b) is non-empty.
                    (x - a) / (b - a)
                } else if x <= c {
                    1.0
                } else {
                    // Falling edge; c < d because x ∈ (c, d] is non-empty.
                    (d - x) / (d - c)
                }
            }
            MembershipFunction::LeftShoulder { b, c } => {
                if x <= b {
                    1.0
                } else if x >= c {
                    0.0
                } else {
                    (c - x) / (c - b)
                }
            }
            MembershipFunction::RightShoulder { a, b } => {
                if x <= a {
                    0.0
                } else if x >= b {
                    1.0
                } else {
                    (x - a) / (b - a)
                }
            }
            MembershipFunction::Singleton { at, tolerance } => {
                if (x - at).abs() <= tolerance {
                    1.0
                } else {
                    0.0
                }
            }
            MembershipFunction::Piecewise { ref knots } => {
                if x <= knots[0].0 {
                    return knots[0].1;
                }
                if x >= knots[knots.len() - 1].0 {
                    return knots[knots.len() - 1].1;
                }
                // Binary search for the segment containing x.
                let idx = knots.partition_point(|&(kx, _)| kx <= x);
                let (x0, y0) = knots[idx - 1];
                let (x1, y1) = knots[idx];
                y0 + (y1 - y0) * (x - x0) / (x1 - x0)
            }
        }
        .pipe_clamp()
    }

    /// The support interval `[lo, hi]` outside which μ is identically 0
    /// (`None` for shoulders, whose support is half-open towards ±∞).
    pub fn support(&self) -> Option<(f64, f64)> {
        match *self {
            MembershipFunction::Trapezoid { a, d, .. } => Some((a, d)),
            MembershipFunction::Singleton { at, tolerance } => {
                Some((at - tolerance, at + tolerance))
            }
            MembershipFunction::Piecewise { ref knots } => {
                Some((knots[0].0, knots[knots.len() - 1].0))
            }
            MembershipFunction::LeftShoulder { .. } | MembershipFunction::RightShoulder { .. } => {
                None
            }
        }
    }
}

trait PipeClamp {
    fn pipe_clamp(self) -> f64;
}
impl PipeClamp for f64 {
    #[inline]
    fn pipe_clamp(self) -> f64 {
        clamp01(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn trapezoid_matches_paper_figure_3() {
        // Figure 3 of the paper: at l = 0.6, μ_medium = 0.5 and μ_high = 0.2.
        let medium = MembershipFunction::trapezoid(0.2, 0.4, 0.5, 0.7);
        let high = MembershipFunction::trapezoid(0.5, 1.0, 1.0, 1.0);
        assert!(close(medium.eval(0.6), 0.5));
        assert!(close(high.eval(0.6), 0.2));
    }

    #[test]
    fn trapezoid_core_and_feet() {
        let t = MembershipFunction::trapezoid(0.0, 1.0, 2.0, 4.0);
        assert!(close(t.eval(-1.0), 0.0));
        assert!(close(t.eval(0.0), 0.0));
        assert!(close(t.eval(0.5), 0.5));
        assert!(close(t.eval(1.0), 1.0));
        assert!(close(t.eval(1.5), 1.0));
        assert!(close(t.eval(2.0), 1.0));
        assert!(close(t.eval(3.0), 0.5));
        assert!(close(t.eval(4.0), 0.0));
        assert!(close(t.eval(5.0), 0.0));
    }

    #[test]
    fn triangle_is_degenerate_trapezoid() {
        let t = MembershipFunction::triangle(0.0, 1.0, 2.0);
        assert!(close(t.eval(1.0), 1.0));
        assert!(close(t.eval(0.5), 0.5));
        assert!(close(t.eval(1.5), 0.5));
    }

    #[test]
    fn degenerate_trapezoid_with_vertical_edges() {
        // a == b and c == d: a crisp interval indicator.
        let t = MembershipFunction::trapezoid(0.25, 0.25, 0.75, 0.75);
        assert!(close(t.eval(0.25), 1.0));
        assert!(close(t.eval(0.5), 1.0));
        assert!(close(t.eval(0.75), 1.0));
        assert!(close(t.eval(0.2499), 0.0));
        assert!(close(t.eval(0.7501), 0.0));
    }

    #[test]
    fn invalid_trapezoid_is_rejected() {
        assert!(MembershipFunction::try_trapezoid(1.0, 0.5, 2.0, 3.0).is_err());
        assert!(MembershipFunction::try_trapezoid(0.0, f64::NAN, 1.0, 2.0).is_err());
        assert!(MembershipFunction::try_trapezoid(0.0, 0.5, 2.0, 1.5).is_err());
    }

    #[test]
    fn shoulders_saturate() {
        let low = MembershipFunction::left_shoulder(0.2, 0.4);
        assert!(close(low.eval(0.0), 1.0));
        assert!(close(low.eval(0.2), 1.0));
        assert!(close(low.eval(0.3), 0.5));
        assert!(close(low.eval(0.4), 0.0));
        assert!(close(low.eval(0.9), 0.0));

        let high = MembershipFunction::right_shoulder(0.6, 0.8);
        assert!(close(high.eval(0.5), 0.0));
        assert!(close(high.eval(0.7), 0.5));
        assert!(close(high.eval(0.8), 1.0));
        assert!(close(high.eval(1.0), 1.0));
    }

    #[test]
    fn singleton_hits_only_its_point() {
        let s = MembershipFunction::singleton(3.0, 0.0);
        assert!(close(s.eval(3.0), 1.0));
        assert!(close(s.eval(3.0001), 0.0));
        let tol = MembershipFunction::singleton(3.0, 0.5);
        assert!(close(tol.eval(3.4), 1.0));
        assert!(close(tol.eval(3.6), 0.0));
    }

    #[test]
    fn piecewise_interpolates_and_extends() {
        let p = MembershipFunction::piecewise(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.25)]).unwrap();
        assert!(close(p.eval(-5.0), 0.0));
        assert!(close(p.eval(0.5), 0.5));
        assert!(close(p.eval(1.5), 0.625));
        assert!(close(p.eval(9.0), 0.25));
    }

    #[test]
    fn piecewise_rejects_bad_knots() {
        assert!(MembershipFunction::piecewise(vec![]).is_err());
        assert!(MembershipFunction::piecewise(vec![(0.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(MembershipFunction::piecewise(vec![(0.0, 1.5)]).is_err());
        assert!(MembershipFunction::piecewise(vec![(1.0, 0.5), (0.0, 0.5)]).is_err());
    }

    #[test]
    fn support_reports_zero_region() {
        let t = MembershipFunction::trapezoid(0.1, 0.2, 0.3, 0.4);
        assert_eq!(t.support(), Some((0.1, 0.4)));
        assert_eq!(MembershipFunction::left_shoulder(0.0, 1.0).support(), None);
        assert_eq!(
            MembershipFunction::singleton(2.0, 0.25).support(),
            Some((1.75, 2.25))
        );
    }
}
