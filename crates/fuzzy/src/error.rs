//! Error type shared by all fuzzy-engine operations.

use std::fmt;

/// Errors raised while building or evaluating a fuzzy controller.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyError {
    /// A rule or measurement referenced a variable the engine does not know.
    UnknownVariable {
        /// Name of the missing variable.
        name: String,
    },
    /// A rule referenced a term that is not defined on its variable.
    UnknownTerm {
        /// Variable the term was looked up on.
        variable: String,
        /// Name of the missing term.
        term: String,
    },
    /// A variable was declared twice (as input or output).
    DuplicateVariable {
        /// Name of the duplicated variable.
        name: String,
    },
    /// A term was declared twice on the same variable.
    DuplicateTerm {
        /// Variable carrying the duplicate.
        variable: String,
        /// Name of the duplicated term.
        term: String,
    },
    /// A membership function was constructed with invalid parameters
    /// (e.g. a trapezoid whose knots are not monotonically non-decreasing).
    InvalidMembership {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A variable was declared with an empty or inverted universe of
    /// discourse, or without any terms.
    InvalidVariable {
        /// Name of the offending variable.
        name: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// The rule DSL failed to parse.
    Parse {
        /// Byte offset into the rule text where the problem was detected.
        position: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// `Engine::run` was invoked without a measurement for an input variable
    /// that at least one rule depends on.
    MissingMeasurement {
        /// Name of the unmeasured variable.
        name: String,
    },
    /// A rule used an input variable in its consequent or an output variable
    /// in its antecedent.
    VariableRoleMismatch {
        /// Name of the misused variable.
        name: String,
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A measurement was NaN or infinite. Non-finite values would otherwise
    /// flow through `clamp` (which passes NaN) into membership grades, rule
    /// truths, and finally into `total_cmp`-sorted rankings — silently
    /// poisoning the decision instead of surfacing the faulty sensor.
    NonFiniteMeasurement {
        /// Name of the measured variable.
        name: String,
        /// The offending value (NaN, +∞ or −∞).
        value: f64,
    },
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::UnknownVariable { name } => {
                write!(f, "unknown linguistic variable `{name}`")
            }
            FuzzyError::UnknownTerm { variable, term } => {
                write!(f, "variable `{variable}` has no term `{term}`")
            }
            FuzzyError::DuplicateVariable { name } => {
                write!(f, "linguistic variable `{name}` declared twice")
            }
            FuzzyError::DuplicateTerm { variable, term } => {
                write!(f, "term `{term}` declared twice on variable `{variable}`")
            }
            FuzzyError::InvalidMembership { reason } => {
                write!(f, "invalid membership function: {reason}")
            }
            FuzzyError::InvalidVariable { name, reason } => {
                write!(f, "invalid linguistic variable `{name}`: {reason}")
            }
            FuzzyError::Parse { position, message } => {
                write!(f, "rule parse error at byte {position}: {message}")
            }
            FuzzyError::MissingMeasurement { name } => {
                write!(f, "no measurement supplied for input variable `{name}`")
            }
            FuzzyError::VariableRoleMismatch { name, reason } => {
                write!(f, "variable `{name}` used in the wrong role: {reason}")
            }
            FuzzyError::NonFiniteMeasurement { name, value } => {
                write!(
                    f,
                    "non-finite measurement for input variable `{name}`: {value}"
                )
            }
        }
    }
}

impl std::error::Error for FuzzyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(FuzzyError, &str)> = vec![
            (
                FuzzyError::UnknownVariable { name: "x".into() },
                "unknown linguistic variable `x`",
            ),
            (
                FuzzyError::UnknownTerm {
                    variable: "cpuLoad".into(),
                    term: "gigantic".into(),
                },
                "variable `cpuLoad` has no term `gigantic`",
            ),
            (
                FuzzyError::Parse {
                    position: 7,
                    message: "expected IS".into(),
                },
                "rule parse error at byte 7: expected IS",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(FuzzyError::UnknownVariable { name: "v".into() });
    }
}
