//! Discretized fuzzy sets used during inference and defuzzification.
//!
//! During max–min inference (paper Section 3) the consequent fuzzy set of
//! each fired rule is *clipped* at the rule's antecedent truth, and all
//! clipped sets referring to the same output variable are combined with the
//! fuzzy union (pointwise maximum). We represent such sets as uniform samples
//! over the output variable's universe — the classic implementation strategy
//! for Mamdani-style controllers — so clipping, scaling and union are cheap
//! pointwise array operations and every defuzzifier sees the same data.

use crate::{clamp01, MembershipFunction, Truth};

/// Default number of samples across an output universe.
///
/// 1001 points over `[0, 1]` gives a resolution of 0.001, far below any
/// threshold the AutoGlobe controller cares about (applicability cut-offs are
/// specified in whole percent).
pub const DEFAULT_RESOLUTION: usize = 1001;

/// A fuzzy set discretized over a closed interval.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzySet {
    lo: f64,
    hi: f64,
    /// `samples[i]` is μ at `lo + i * (hi - lo) / (samples.len() - 1)`.
    samples: Vec<Truth>,
}

impl FuzzySet {
    /// The empty set (μ ≡ 0) over `[lo, hi]` with the given resolution.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `resolution < 2`.
    pub fn empty(lo: f64, hi: f64, resolution: usize) -> Self {
        assert!(lo < hi, "fuzzy set needs a non-empty interval");
        assert!(resolution >= 2, "fuzzy set needs at least two samples");
        FuzzySet {
            lo,
            hi,
            samples: vec![0.0; resolution],
        }
    }

    /// Sample a membership function over `[lo, hi]`.
    pub fn from_membership(mf: &MembershipFunction, lo: f64, hi: f64, resolution: usize) -> Self {
        let mut set = Self::empty(lo, hi, resolution);
        for i in 0..resolution {
            set.samples[i] = mf.eval(set.x_at(i));
        }
        set
    }

    /// The x-coordinate of sample `i`.
    #[inline]
    pub fn x_at(&self, i: usize) -> f64 {
        self.lo + (self.hi - self.lo) * i as f64 / (self.samples.len() - 1) as f64
    }

    /// The interval this set is defined over.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// The raw samples.
    pub fn samples(&self) -> &[Truth] {
        &self.samples
    }

    /// μ at an arbitrary x, linearly interpolated between samples.
    pub fn eval(&self, x: f64) -> Truth {
        let n = self.samples.len();
        if x <= self.lo {
            return self.samples[0];
        }
        if x >= self.hi {
            return self.samples[n - 1];
        }
        let t = (x - self.lo) / (self.hi - self.lo) * (n - 1) as f64;
        let i = t.floor() as usize;
        let frac = t - i as f64;
        if i + 1 >= n {
            self.samples[n - 1]
        } else {
            self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
        }
    }

    /// Clip (α-cut from above): `μ'(x) = min(μ(x), height)` — the max–min
    /// inference step of the paper (Figure 5).
    pub fn clip(&mut self, height: Truth) {
        let h = clamp01(height);
        for s in &mut self.samples {
            if *s > h {
                *s = h;
            }
        }
    }

    /// Scale: `μ'(x) = μ(x) · factor` — the max–product inference variant
    /// (provided for ablation studies).
    pub fn scale(&mut self, factor: Truth) {
        let f = clamp01(factor);
        for s in &mut self.samples {
            *s *= f;
        }
    }

    /// Fused max–min inference step: `μ'(x) = max(μ(x), min(ν(x), height))`.
    ///
    /// Equivalent to cloning `other`, [`FuzzySet::clip`]ping the clone and
    /// [`FuzzySet::union_assign`]ing it — but in one pass with no temporary
    /// set, which keeps the engine's hot loop allocation-free when `other` is
    /// a precomputed term grid shared across invocations.
    ///
    /// # Panics
    /// Panics if the two sets differ in interval or resolution.
    pub fn union_clipped(&mut self, other: &FuzzySet, height: Truth) {
        assert_eq!(
            (self.lo, self.hi, self.samples.len()),
            (other.lo, other.hi, other.samples.len()),
            "fuzzy union requires identically discretized sets"
        );
        let h = clamp01(height);
        for (s, &o) in self.samples.iter_mut().zip(&other.samples) {
            let clipped = if o > h { h } else { o };
            if clipped > *s {
                *s = clipped;
            }
        }
    }

    /// Fused max–product inference step: `μ'(x) = max(μ(x), ν(x) · factor)`.
    ///
    /// The scaling analogue of [`FuzzySet::union_clipped`].
    ///
    /// # Panics
    /// Panics if the two sets differ in interval or resolution.
    pub fn union_scaled(&mut self, other: &FuzzySet, factor: Truth) {
        assert_eq!(
            (self.lo, self.hi, self.samples.len()),
            (other.lo, other.hi, other.samples.len()),
            "fuzzy union requires identically discretized sets"
        );
        let f = clamp01(factor);
        for (s, &o) in self.samples.iter_mut().zip(&other.samples) {
            let scaled = o * f;
            if scaled > *s {
                *s = scaled;
            }
        }
    }

    /// Fuzzy union in place: `μ'(x) = max(μ(x), ν(x))`.
    ///
    /// # Panics
    /// Panics if the two sets differ in interval or resolution (the engine
    /// always builds them from the same output variable, so this indicates a
    /// logic error).
    pub fn union_assign(&mut self, other: &FuzzySet) {
        assert_eq!(
            (self.lo, self.hi, self.samples.len()),
            (other.lo, other.hi, other.samples.len()),
            "fuzzy union requires identically discretized sets"
        );
        for (s, o) in self.samples.iter_mut().zip(&other.samples) {
            if *o > *s {
                *s = *o;
            }
        }
    }

    /// Fuzzy intersection in place: `μ'(x) = min(μ(x), ν(x))`.
    pub fn intersect_assign(&mut self, other: &FuzzySet) {
        assert_eq!(
            (self.lo, self.hi, self.samples.len()),
            (other.lo, other.hi, other.samples.len()),
            "fuzzy intersection requires identically discretized sets"
        );
        for (s, o) in self.samples.iter_mut().zip(&other.samples) {
            if *o < *s {
                *s = *o;
            }
        }
    }

    /// The maximum truth value attained anywhere in the set.
    pub fn height(&self) -> Truth {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// True if μ ≡ 0 (within floating-point exactness — clipped values are
    /// exact zeros, so no epsilon is needed).
    pub fn is_empty(&self) -> bool {
        self.samples.iter().all(|&s| s == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> FuzzySet {
        FuzzySet::from_membership(&MembershipFunction::right_shoulder(0.0, 1.0), 0.0, 1.0, 101)
    }

    #[test]
    fn sampling_a_ramp() {
        let s = ramp();
        assert!((s.eval(0.0) - 0.0).abs() < 1e-12);
        assert!((s.eval(0.5) - 0.5).abs() < 1e-9);
        assert!((s.eval(1.0) - 1.0).abs() < 1e-12);
        assert!((s.eval(-3.0) - 0.0).abs() < 1e-12);
        assert!((s.eval(3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clip_caps_heights() {
        let mut s = ramp();
        s.clip(0.6);
        assert!((s.height() - 0.6).abs() < 1e-9);
        assert!((s.eval(0.3) - 0.3).abs() < 1e-9);
        assert!((s.eval(0.9) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn scale_multiplies() {
        let mut s = ramp();
        s.scale(0.5);
        assert!((s.eval(1.0) - 0.5).abs() < 1e-9);
        assert!((s.eval(0.5) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn union_takes_pointwise_max() {
        let mut a = ramp();
        a.clip(0.3);
        let mut b = ramp();
        b.clip(0.7);
        a.union_assign(&b);
        assert!((a.height() - 0.7).abs() < 1e-9);
        // Near x = 0.1 both sets equal the ramp itself.
        assert!((a.eval(0.1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn intersection_takes_pointwise_min() {
        let mut a = ramp();
        let mut b =
            FuzzySet::from_membership(&MembershipFunction::left_shoulder(0.0, 1.0), 0.0, 1.0, 101);
        a.intersect_assign(&b);
        // Ramp ∧ anti-ramp peaks at 0.5 in the middle.
        assert!((a.height() - 0.5).abs() < 1e-2);
        b.clip(0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn fused_union_clipped_matches_clone_clip_union() {
        for h in [0.0, 0.25, 0.6, 1.0] {
            let grid = ramp();
            // Start from a non-empty aggregate so the pointwise max matters.
            let mut fused = ramp();
            fused.clip(0.1);
            let mut fused2 = fused.clone();
            fused.union_clipped(&grid, h);
            let mut clipped = grid.clone();
            clipped.clip(h);
            fused2.union_assign(&clipped);
            assert_eq!(fused, fused2, "clip height {h}");
        }
    }

    #[test]
    fn fused_union_scaled_matches_clone_scale_union() {
        for f in [0.0, 0.25, 0.6, 1.0] {
            let grid = ramp();
            let mut fused = FuzzySet::empty(0.0, 1.0, 101);
            let mut fused2 = fused.clone();
            fused.union_scaled(&grid, f);
            let mut scaled = grid.clone();
            scaled.scale(f);
            fused2.union_assign(&scaled);
            assert_eq!(fused, fused2, "scale factor {f}");
        }
    }

    #[test]
    #[should_panic(expected = "identically discretized")]
    fn union_of_mismatched_sets_panics() {
        let mut a = FuzzySet::empty(0.0, 1.0, 11);
        let b = FuzzySet::empty(0.0, 1.0, 21);
        a.union_assign(&b);
    }

    #[test]
    fn empty_set_properties() {
        let s = FuzzySet::empty(0.0, 2.0, 5);
        assert!(s.is_empty());
        assert_eq!(s.height(), 0.0);
        assert_eq!(s.range(), (0.0, 2.0));
        assert_eq!(s.x_at(0), 0.0);
        assert_eq!(s.x_at(4), 2.0);
        assert_eq!(s.samples().len(), 5);
    }
}
