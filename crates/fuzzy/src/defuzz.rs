//! Defuzzification: turning an aggregated output fuzzy set into a crisp value.
//!
//! The paper uses "a maximum method, such that the result is determined as
//! the leftmost of all values at which the maximum truth value occurs"
//! ([`Defuzzifier::LeftmostMax`]). For the single-ramp `applicable` output
//! sets this makes the crisp applicability equal the strongest rule firing
//! (Figure 5: a set clipped at 0.6 defuzzifies to 0.6). Mean-of-maxima and
//! centroid are provided for ablation studies.

use crate::set::FuzzySet;

/// A defuzzification method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Defuzzifier {
    /// The leftmost x at which the maximum truth occurs (the paper's method).
    #[default]
    LeftmostMax,
    /// The arithmetic mean of all x at which the maximum truth occurs.
    MeanOfMaxima,
    /// The centroid (center of gravity) of the set.
    Centroid,
}

impl Defuzzifier {
    /// Defuzzify `set` into a crisp value.
    ///
    /// An empty set (no rule fired) defuzzifies to the left edge of the
    /// universe — for applicability outputs that is 0, i.e. "not applicable",
    /// which is exactly the semantics the controller needs.
    pub fn defuzzify(&self, set: &FuzzySet) -> f64 {
        let samples = set.samples();
        let (lo, _hi) = set.range();
        match self {
            Defuzzifier::LeftmostMax => {
                let mut best_i = 0;
                let mut best = f64::NEG_INFINITY;
                for (i, &s) in samples.iter().enumerate() {
                    if s > best {
                        best = s;
                        best_i = i;
                    }
                }
                set.x_at(best_i)
            }
            Defuzzifier::MeanOfMaxima => {
                let max = set.height();
                if max == 0.0 {
                    return lo;
                }
                let eps = 1e-12;
                let mut sum = 0.0;
                let mut count = 0usize;
                for (i, &s) in samples.iter().enumerate() {
                    if (s - max).abs() <= eps {
                        sum += set.x_at(i);
                        count += 1;
                    }
                }
                sum / count as f64
            }
            Defuzzifier::Centroid => {
                let mut num = 0.0;
                let mut den = 0.0;
                for (i, &s) in samples.iter().enumerate() {
                    num += set.x_at(i) * s;
                    den += s;
                }
                if den == 0.0 {
                    lo
                } else {
                    num / den
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;
    use crate::set::FuzzySet;

    fn clipped_ramp(height: f64) -> FuzzySet {
        let mut s = FuzzySet::from_membership(
            &MembershipFunction::right_shoulder(0.0, 1.0),
            0.0,
            1.0,
            1001,
        );
        s.clip(height);
        s
    }

    #[test]
    fn leftmost_max_of_clipped_ramp_equals_clip_height() {
        // Figure 5 of the paper: the scale-up set clipped at 0.6 defuzzifies
        // to crisp 0.6 under the leftmost-maximum method.
        for h in [0.0, 0.1, 0.3, 0.6, 0.9, 1.0] {
            let set = clipped_ramp(h);
            let x = Defuzzifier::LeftmostMax.defuzzify(&set);
            assert!(
                (x - h).abs() < 2e-3,
                "clip {h} → defuzz {x} (expected ≈ {h})"
            );
        }
    }

    #[test]
    fn empty_set_defuzzifies_to_left_edge() {
        let set = FuzzySet::empty(0.0, 1.0, 101);
        assert_eq!(Defuzzifier::LeftmostMax.defuzzify(&set), 0.0);
        assert_eq!(Defuzzifier::MeanOfMaxima.defuzzify(&set), 0.0);
        assert_eq!(Defuzzifier::Centroid.defuzzify(&set), 0.0);
    }

    #[test]
    fn mean_of_maxima_centers_on_plateau() {
        // A trapezoid plateau from 0.4 to 0.6 → MoM ≈ 0.5.
        let set = FuzzySet::from_membership(
            &MembershipFunction::trapezoid(0.2, 0.4, 0.6, 0.8),
            0.0,
            1.0,
            1001,
        );
        let x = Defuzzifier::MeanOfMaxima.defuzzify(&set);
        assert!(
            (x - 0.5).abs() < 1e-3,
            "MoM of plateau is its center, got {x}"
        );
        // LeftmostMax picks the left edge of the plateau.
        let left = Defuzzifier::LeftmostMax.defuzzify(&set);
        assert!((left - 0.4).abs() < 1e-3);
    }

    #[test]
    fn centroid_of_symmetric_triangle_is_its_peak() {
        let set =
            FuzzySet::from_membership(&MembershipFunction::triangle(0.2, 0.5, 0.8), 0.0, 1.0, 2001);
        let x = Defuzzifier::Centroid.defuzzify(&set);
        assert!(
            (x - 0.5).abs() < 1e-3,
            "centroid of symmetric triangle, got {x}"
        );
    }

    #[test]
    fn centroid_of_clipped_ramp_lies_right_of_half_height() {
        // The clipped ramp has most area near the right edge; centroid must
        // exceed the clip height for small clips.
        let set = clipped_ramp(0.3);
        let x = Defuzzifier::Centroid.defuzzify(&set);
        assert!(x > 0.5, "centroid pulled right, got {x}");
    }
}
