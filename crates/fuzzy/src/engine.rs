//! The complete fuzzy-controller cycle of the paper's Figure 4:
//! measurement → fuzzification → inference → defuzzification.

use crate::defuzz::Defuzzifier;
use crate::inference::{infer_with_grids, InferenceConfig, InferenceMethod, InferenceResult};
use crate::membership::MembershipFunction;
use crate::parser::{parse_rule, parse_rules};
use crate::rule::{Rule, RuleBase};
use crate::set::{FuzzySet, DEFAULT_RESOLUTION};
use crate::variable::LinguisticVariable;
use crate::{FuzzyError, Truth};
use std::collections::HashMap;
use std::ops::Index;

/// Tunable knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Clipping (max–min, the paper) vs. scaling (max–product).
    pub inference: InferenceMethod,
    /// How aggregated sets become crisp values (leftmost-max, the paper).
    pub defuzzifier: Defuzzifier,
    /// Samples per output universe.
    pub resolution: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            inference: InferenceMethod::MaxMin,
            defuzzifier: Defuzzifier::LeftmostMax,
            resolution: DEFAULT_RESOLUTION,
        }
    }
}

/// Crisp outputs of one controller cycle, keyed by output variable name.
///
/// Indexing with an unknown name panics (tests read better); use
/// [`Outputs::get`] for fallible access. [`Outputs::ranked`] returns the
/// variables sorted by descending crisp value — the "actions sorted by their
/// applicability" list of Section 4.1.
#[derive(Debug, Clone, Default)]
pub struct Outputs {
    values: HashMap<String, f64>,
}

impl Outputs {
    /// The crisp value of `name`, if that output variable exists.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// All `(name, value)` pairs sorted by descending value; ties broken by
    /// name for determinism.
    pub fn ranked(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self
            .values
            .iter()
            .map(|(k, &val)| (k.as_str(), val))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Iterate over `(name, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of output variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no outputs.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Index<&str> for Outputs {
    type Output = f64;
    fn index(&self, name: &str) -> &f64 {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("no output variable `{name}`"))
    }
}

/// Crisp outputs of one batched controller cycle ([`Engine::run_batch`]):
/// one value per declared output variable per input row, stored column-major
/// and row-aligned with the input columns.
#[derive(Debug, Clone)]
pub struct BatchOutputs {
    rows: usize,
    /// Output variable names, sorted, one per column of `values`.
    names: Vec<String>,
    /// `values[col * rows + row]` is output `names[col]` for input row `row`.
    values: Vec<f64>,
}

impl BatchOutputs {
    /// Number of input rows this batch evaluated.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The crisp values of output variable `name` across all rows, or `None`
    /// if no such output variable is declared.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        let col = self.names.binary_search_by(|n| n.as_str().cmp(name)).ok()?;
        Some(&self.values[col * self.rows..(col + 1) * self.rows])
    }

    /// The outputs of a single row, in the same shape [`Engine::run`] returns.
    ///
    /// # Panics
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> Outputs {
        assert!(row < self.rows, "row {row} out of {} batch rows", self.rows);
        let mut values = HashMap::with_capacity(self.names.len());
        for (col, name) in self.names.iter().enumerate() {
            values.insert(name.clone(), self.values[col * self.rows + row]);
        }
        Outputs { values }
    }
}

/// A complete fuzzy controller: input/output variables, a rule base, and the
/// inference/defuzzification configuration.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    inputs: HashMap<String, LinguisticVariable>,
    outputs: HashMap<String, LinguisticVariable>,
    rules: RuleBase,
    config: EngineConfig,
    /// Consequent term sets sampled once per `(output variable, term)` pair
    /// at rule-add time, so inference never re-evaluates membership
    /// functions over the whole universe per call.
    term_grids: HashMap<(String, String), FuzzySet>,
    /// Per output variable targeted by at least one rule: `Some((a, b))`
    /// when every rule's consequent term is the same `RightShoulder { a, b }`
    /// ramp. Under max–min inference with leftmost-max defuzzification such
    /// outputs admit a closed form (see [`Engine::run`]) that skips fuzzy
    /// sets entirely — the common case for the paper's `applicable` outputs.
    ramps: HashMap<String, Option<(f64, f64)>>,
}

impl Engine {
    /// An empty engine with the paper's default configuration.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An empty engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            config,
            ..Engine::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Replace the configuration (useful for ablation sweeps on an otherwise
    /// identical controller). Precomputed term grids are re-sampled at the
    /// new resolution.
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
        for ((var_name, term_name), grid) in self.term_grids.iter_mut() {
            let var = &self.outputs[var_name];
            let term = var.term(term_name).expect("indexed term exists");
            let (lo, hi) = var.range();
            *grid = FuzzySet::from_membership(term.membership(), lo, hi, config.resolution);
        }
    }

    /// Declare an input variable. Returns an error if the name is taken.
    pub fn try_add_input(&mut self, var: LinguisticVariable) -> Result<(), FuzzyError> {
        let name = var.name().to_string();
        if self.inputs.contains_key(&name) || self.outputs.contains_key(&name) {
            return Err(FuzzyError::DuplicateVariable { name });
        }
        self.inputs.insert(name, var);
        Ok(())
    }

    /// Declare an input variable.
    ///
    /// # Panics
    /// Panics on duplicate names; use [`Engine::try_add_input`] when the
    /// variable set is dynamic.
    pub fn add_input(&mut self, var: LinguisticVariable) {
        self.try_add_input(var).expect("duplicate variable");
    }

    /// Declare an output variable. Returns an error if the name is taken.
    pub fn try_add_output(&mut self, var: LinguisticVariable) -> Result<(), FuzzyError> {
        let name = var.name().to_string();
        if self.inputs.contains_key(&name) || self.outputs.contains_key(&name) {
            return Err(FuzzyError::DuplicateVariable { name });
        }
        self.outputs.insert(name, var);
        Ok(())
    }

    /// Declare an output variable.
    ///
    /// # Panics
    /// Panics on duplicate names; use [`Engine::try_add_output`] when the
    /// variable set is dynamic.
    pub fn add_output(&mut self, var: LinguisticVariable) {
        self.try_add_output(var).expect("duplicate variable");
    }

    /// The declared input variables.
    pub fn inputs(&self) -> impl Iterator<Item = &LinguisticVariable> {
        self.inputs.values()
    }

    /// The declared output variables.
    pub fn outputs(&self) -> impl Iterator<Item = &LinguisticVariable> {
        self.outputs.values()
    }

    /// Look up a variable (input or output) by name.
    pub fn variable(&self, name: &str) -> Option<&LinguisticVariable> {
        self.inputs.get(name).or_else(|| self.outputs.get(name))
    }

    /// Add a rule, validating that every referenced variable and term exists
    /// and that input/output roles are respected.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), FuzzyError> {
        self.validate_rule(&rule)?;
        self.index_consequent(&rule);
        self.rules.push(rule);
        Ok(())
    }

    /// Maintain the per-term grid cache and the analytic-ramp index for a
    /// freshly validated rule's consequent.
    fn index_consequent(&mut self, rule: &Rule) {
        let var_name = &rule.consequent.variable;
        let term_name = &rule.consequent.term;
        let var = &self.outputs[var_name];
        let term = var.term(term_name).expect("validated term exists");
        let key = (var_name.clone(), term_name.clone());
        if !self.term_grids.contains_key(&key) {
            let (lo, hi) = var.range();
            self.term_grids.insert(
                key,
                FuzzySet::from_membership(term.membership(), lo, hi, self.config.resolution),
            );
        }
        let shape = match *term.membership() {
            MembershipFunction::RightShoulder { a, b } => Some((a, b)),
            _ => None,
        };
        let entry = self.ramps.entry(var_name.clone()).or_insert(shape);
        if *entry != shape {
            *entry = None;
        }
    }

    /// Parse and add a single rule from DSL text.
    pub fn add_rule_str(&mut self, text: &str) -> Result<(), FuzzyError> {
        self.add_rule(parse_rule(text)?)
    }

    /// Parse and add a whole rule base from DSL text.
    pub fn add_rules_str(&mut self, text: &str) -> Result<(), FuzzyError> {
        for rule in parse_rules(text)?.rules() {
            self.add_rule(rule.clone())?;
        }
        Ok(())
    }

    /// The current rule base.
    pub fn rules(&self) -> &RuleBase {
        &self.rules
    }

    fn validate_rule(&self, rule: &Rule) -> Result<(), FuzzyError> {
        for var_name in rule.antecedent.referenced_variables() {
            if self.outputs.contains_key(var_name) {
                return Err(FuzzyError::VariableRoleMismatch {
                    name: var_name.to_string(),
                    reason: "output variable used in a rule antecedent".into(),
                });
            }
            let var = self
                .inputs
                .get(var_name)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: var_name.to_string(),
                })?;
            // Check every atom mentioning this variable names a real term.
            validate_terms(&rule.antecedent, var_name, var)?;
        }
        if self.inputs.contains_key(&rule.consequent.variable) {
            return Err(FuzzyError::VariableRoleMismatch {
                name: rule.consequent.variable.clone(),
                reason: "input variable used in a rule consequent".into(),
            });
        }
        let out = self.outputs.get(&rule.consequent.variable).ok_or_else(|| {
            FuzzyError::UnknownVariable {
                name: rule.consequent.variable.clone(),
            }
        })?;
        if out.term(&rule.consequent.term).is_none() {
            return Err(FuzzyError::UnknownTerm {
                variable: rule.consequent.variable.clone(),
                term: rule.consequent.term.clone(),
            });
        }
        Ok(())
    }

    /// Run one full controller cycle.
    ///
    /// `measurements` supplies a crisp value per input variable; every input
    /// referenced by at least one rule must be measured. The result holds one
    /// crisp value per *declared* output variable (variables no rule fired
    /// for defuzzify to the left edge of their universe, i.e. 0 for
    /// applicability outputs).
    ///
    /// When every output is a single-ramp `RightShoulder` consequent and the
    /// configuration is the paper's (max–min inference, leftmost-max
    /// defuzzification), the crisp values are computed in closed form — the
    /// leftmost maximum of a ramp `(a, b)` clipped at height `H > 0` is
    /// exactly `a + H·(b − a)` — so no fuzzy set is sampled, clipped or
    /// scanned at all, and the results are exact rather than grid-quantized.
    pub fn run<'a, M>(&self, measurements: M) -> Result<Outputs, FuzzyError>
    where
        M: IntoIterator<Item = (&'a str, f64)>,
    {
        let grades = self.fuzzify(measurements)?;
        if self.analytic_eligible() {
            return self.run_analytic(&grades);
        }
        Ok(self.run_detailed_from_grades(&grades)?.outputs)
    }

    /// Like [`Engine::run`], but also returns the aggregated fuzzy sets and
    /// rule truths — used by the AutoGlobe controller console to explain
    /// decisions to the administrator. Always takes the sampled-grid path,
    /// since the aggregated sets themselves are the point.
    pub fn run_detailed<'a, M>(&self, measurements: M) -> Result<DetailedOutputs, FuzzyError>
    where
        M: IntoIterator<Item = (&'a str, f64)>,
    {
        let grades = self.fuzzify(measurements)?;
        self.run_detailed_from_grades(&grades)
    }

    /// Fuzzification of every supplied measurement, plus the completeness
    /// check that every rule-referenced input was measured.
    fn fuzzify<'a, M>(
        &self,
        measurements: M,
    ) -> Result<HashMap<(String, String), Truth>, FuzzyError>
    where
        M: IntoIterator<Item = (&'a str, f64)>,
    {
        let mut grades: HashMap<(String, String), Truth> = HashMap::new();
        let mut measured: HashMap<&str, f64> = HashMap::new();
        for (name, value) in measurements {
            let var = self
                .inputs
                .get(name)
                .ok_or_else(|| FuzzyError::UnknownVariable { name: name.into() })?;
            if !value.is_finite() {
                return Err(FuzzyError::NonFiniteMeasurement {
                    name: name.into(),
                    value,
                });
            }
            measured.insert(name, value);
            for (term, grade) in var.fuzzify_named(value) {
                grades.insert((name.to_string(), term.to_string()), grade);
            }
        }
        for var_name in self.rules.input_variables() {
            if !measured.contains_key(var_name) {
                return Err(FuzzyError::MissingMeasurement {
                    name: var_name.to_string(),
                });
            }
        }
        Ok(grades)
    }

    /// True when [`Engine::run`] may use the closed-form ramp path: the
    /// paper's inference/defuzzification pair, and every rule-targeted output
    /// admits the single-ramp analysis.
    fn analytic_eligible(&self) -> bool {
        self.config.inference == InferenceMethod::MaxMin
            && self.config.defuzzifier == Defuzzifier::LeftmostMax
            && self.ramps.values().all(Option::is_some)
    }

    /// Closed-form cycle: per output, the aggregated clipped-ramp union's
    /// leftmost maximum is determined by the strongest weighted firing alone.
    fn run_analytic(
        &self,
        grades: &HashMap<(String, String), Truth>,
    ) -> Result<Outputs, FuzzyError> {
        let mut heights: HashMap<&str, Truth> = HashMap::with_capacity(self.ramps.len());
        for rule in self.rules.rules() {
            let truth = rule.antecedent.eval(&mut |variable: &str, term: &str| {
                grades
                    .get(&(variable.to_string(), term.to_string()))
                    .copied()
                    .ok_or_else(|| FuzzyError::UnknownVariable {
                        name: format!("{variable} IS {term}"),
                    })
            })? * rule.weight;
            let entry = heights
                .entry(rule.consequent.variable.as_str())
                .or_insert(0.0);
            if truth > *entry {
                *entry = truth;
            }
        }
        let mut values = HashMap::with_capacity(self.outputs.len());
        for (name, var) in &self.outputs {
            let (lo, hi) = var.range();
            let crisp = match (heights.get(name.as_str()), self.ramps.get(name)) {
                (Some(&h), Some(&Some((a, b)))) if h > 0.0 => (a + h * (b - a)).clamp(lo, hi),
                _ => lo,
            };
            values.insert(name.clone(), crisp);
        }
        Ok(Outputs { values })
    }

    /// Run one controller cycle over a whole batch of measurement rows.
    ///
    /// `columns` supplies one `(input variable, values)` column per measured
    /// variable; all columns must have the same length (the row count). Row
    /// `i` of every column together forms one measurement set, exactly as if
    /// passed to [`Engine::run`] — and the results are **bit-identical** to
    /// `rows` scalar `run` calls (a property the test suite enforces).
    ///
    /// On the analytic path (the paper's max–min / leftmost-max configuration
    /// with single-ramp consequents, see [`Engine::run`]) evaluation is
    /// column-wise: each membership function is applied in one pass over the
    /// whole column (a tight, autovectorizable loop), rule antecedents are
    /// evaluated element-wise over grade columns, and no per-row `HashMap` is
    /// built at all. Other configurations transparently fall back to per-row
    /// scalar runs.
    ///
    /// # Panics
    /// Panics if the columns disagree on length.
    pub fn run_batch(&self, columns: &[(&str, &[f64])]) -> Result<BatchOutputs, FuzzyError> {
        let rows = columns.first().map(|(_, v)| v.len()).unwrap_or(0);
        for (name, values) in columns {
            assert_eq!(
                values.len(),
                rows,
                "batch column `{name}` has {} rows, expected {rows}",
                values.len()
            );
        }

        // Same validation as the scalar path: known variables, finite values,
        // and a measurement for every rule-referenced input.
        for (name, values) in columns {
            if !self.inputs.contains_key(*name) {
                return Err(FuzzyError::UnknownVariable {
                    name: (*name).into(),
                });
            }
            for &value in values.iter() {
                if !value.is_finite() {
                    return Err(FuzzyError::NonFiniteMeasurement {
                        name: (*name).into(),
                        value,
                    });
                }
            }
        }
        for var_name in self.rules.input_variables() {
            if !columns.iter().any(|(name, _)| *name == var_name) {
                return Err(FuzzyError::MissingMeasurement {
                    name: var_name.to_string(),
                });
            }
        }

        let mut names: Vec<String> = self.outputs.keys().cloned().collect();
        names.sort_unstable();

        if rows == 0 {
            return Ok(BatchOutputs {
                rows: 0,
                names,
                values: Vec::new(),
            });
        }

        if !self.analytic_eligible() {
            // Fallback: row-at-a-time scalar cycles — trivially bit-identical.
            let mut values = vec![0.0; names.len() * rows];
            let mut row_buf: Vec<(&str, f64)> = Vec::with_capacity(columns.len());
            for row in 0..rows {
                row_buf.clear();
                row_buf.extend(columns.iter().map(|(name, col)| (*name, col[row])));
                let out = self.run(row_buf.iter().copied())?;
                for (col, name) in names.iter().enumerate() {
                    values[col * rows + row] = out.get(name).expect("declared output");
                }
            }
            return Ok(BatchOutputs {
                rows,
                names,
                values,
            });
        }

        self.infer_batch(columns, rows, names)
    }

    /// The column-wise analytic core of [`Engine::run_batch`]: membership
    /// grids evaluated one pass per `(variable, term)` over the whole input
    /// slice, compiled slot-indexed antecedents evaluated element-wise, and
    /// the closed-form ramp defuzzification applied per output column.
    ///
    /// Every arithmetic step mirrors [`Engine::run_analytic`] operation for
    /// operation (clamp → membership eval, `min`/`max`/`1 − x` antecedent
    /// combinators in the same association order, weight multiply, strict `>`
    /// height accumulation from 0.0, `(a + h·(b − a)).clamp(lo, hi)`), which
    /// is what makes the batch bit-identical to scalar runs.
    fn infer_batch(
        &self,
        columns: &[(&str, &[f64])],
        rows: usize,
        names: Vec<String>,
    ) -> Result<BatchOutputs, FuzzyError> {
        // 1. Fuzzification, column-wise: a grade column per (variable, term).
        let mut slot_of: HashMap<(&str, &str), usize> = HashMap::new();
        let mut grades: Vec<Vec<f64>> = Vec::new();
        let mut clamped = vec![0.0f64; rows];
        for (name, values) in columns {
            let var = &self.inputs[*name];
            let (lo, hi) = var.range();
            for (dst, &x) in clamped.iter_mut().zip(values.iter()) {
                *dst = x.clamp(lo, hi);
            }
            for term in var.terms() {
                let slot = *slot_of.entry((*name, term.name())).or_insert_with(|| {
                    grades.push(Vec::new());
                    grades.len() - 1
                });
                let col = &mut grades[slot];
                col.clear();
                col.reserve(rows);
                // One membership function over one contiguous column: the
                // autovectorizable inner loop of the batch path.
                col.extend(clamped.iter().map(|&x| term.grade(x)));
            }
        }

        // 2. Compile rule antecedents to grade-slot indices (no string
        //    lookups in the per-row evaluation below).
        let mut height_slot_of: HashMap<&str, usize> = HashMap::new();
        let mut heights: Vec<Vec<f64>> = Vec::new();
        let mut compiled: Vec<(BatchNode, f64, usize)> = Vec::with_capacity(self.rules.len());
        for rule in self.rules.rules() {
            let node = compile_antecedent(&rule.antecedent, &slot_of)?;
            let slot = *height_slot_of
                .entry(rule.consequent.variable.as_str())
                .or_insert_with(|| {
                    heights.push(vec![0.0; rows]);
                    heights.len() - 1
                });
            compiled.push((node, rule.weight, slot));
        }

        // 3. Inference, element-wise: rule truth columns folded into per-output
        //    height columns with the same strict-`>` max as the scalar path.
        let mut truth = vec![0.0f64; rows];
        for (node, weight, slot) in &compiled {
            node.eval_into(&grades, &mut truth);
            let height = &mut heights[*slot];
            for (h, &t) in height.iter_mut().zip(truth.iter()) {
                let t = t * weight;
                if t > *h {
                    *h = t;
                }
            }
        }

        // 4. Closed-form defuzzification per output column.
        let mut values = vec![0.0; names.len() * rows];
        for (col, name) in names.iter().enumerate() {
            let var = &self.outputs[name];
            let (lo, hi) = var.range();
            let out = &mut values[col * rows..(col + 1) * rows];
            match (
                height_slot_of.get(name.as_str()).map(|&s| &heights[s]),
                self.ramps.get(name),
            ) {
                (Some(height), Some(&Some((a, b)))) => {
                    for (dst, &h) in out.iter_mut().zip(height.iter()) {
                        *dst = if h > 0.0 {
                            (a + h * (b - a)).clamp(lo, hi)
                        } else {
                            lo
                        };
                    }
                }
                _ => out.fill(lo),
            }
        }
        Ok(BatchOutputs {
            rows,
            names,
            values,
        })
    }

    fn run_detailed_from_grades(
        &self,
        grades: &HashMap<(String, String), Truth>,
    ) -> Result<DetailedOutputs, FuzzyError> {
        // 2. + 3. Inference over the precomputed consequent grids.
        let cfg = InferenceConfig {
            method: self.config.inference,
            resolution: self.config.resolution,
        };
        let mut results =
            infer_with_grids(&self.rules, grades, &self.outputs, &self.term_grids, cfg)?;

        // 4. Defuzzification — every declared output gets a crisp value.
        let mut values = HashMap::with_capacity(self.outputs.len());
        for (name, var) in &self.outputs {
            let crisp = match results.get(name) {
                Some(r) => self.config.defuzzifier.defuzzify(&r.set),
                None => var.range().0,
            };
            values.insert(name.clone(), crisp);
        }
        Ok(DetailedOutputs {
            outputs: Outputs { values },
            inference: std::mem::take(&mut results),
        })
    }
}

fn validate_terms(
    ant: &crate::rule::Antecedent,
    var_name: &str,
    var: &LinguisticVariable,
) -> Result<(), FuzzyError> {
    use crate::rule::Antecedent::*;
    match ant {
        Is { variable, term } => {
            if variable == var_name && var.term(term).is_none() {
                return Err(FuzzyError::UnknownTerm {
                    variable: variable.clone(),
                    term: term.clone(),
                });
            }
            Ok(())
        }
        And(a, b) | Or(a, b) => {
            validate_terms(a, var_name, var)?;
            validate_terms(b, var_name, var)
        }
        Not(a) => validate_terms(a, var_name, var),
    }
}

/// A rule antecedent compiled against a batch's grade columns: `Is` atoms
/// become indices into the per-`(variable, term)` grade slots, so per-row
/// evaluation does no string hashing at all.
#[derive(Debug, Clone)]
enum BatchNode {
    Is(usize),
    And(Box<BatchNode>, Box<BatchNode>),
    Or(Box<BatchNode>, Box<BatchNode>),
    Not(Box<BatchNode>),
}

impl BatchNode {
    /// Evaluate this node element-wise over all rows into `out`. The
    /// combinators are the same `f64::min` / `f64::max` / `1.0 − x` (left
    /// operand first) as `Antecedent::eval`, applied per element.
    fn eval_into(&self, grades: &[Vec<f64>], out: &mut [f64]) {
        match self {
            BatchNode::Is(slot) => out.copy_from_slice(&grades[*slot]),
            BatchNode::And(a, b) => {
                a.eval_into(grades, out);
                let mut rhs = vec![0.0; out.len()];
                b.eval_into(grades, &mut rhs);
                for (l, &r) in out.iter_mut().zip(rhs.iter()) {
                    *l = l.min(r);
                }
            }
            BatchNode::Or(a, b) => {
                a.eval_into(grades, out);
                let mut rhs = vec![0.0; out.len()];
                b.eval_into(grades, &mut rhs);
                for (l, &r) in out.iter_mut().zip(rhs.iter()) {
                    *l = l.max(r);
                }
            }
            BatchNode::Not(a) => {
                a.eval_into(grades, out);
                for v in out.iter_mut() {
                    *v = 1.0 - *v;
                }
            }
        }
    }
}

/// Resolve every `Is` atom of `ant` to its grade-column slot.
fn compile_antecedent(
    ant: &crate::rule::Antecedent,
    slot_of: &HashMap<(&str, &str), usize>,
) -> Result<BatchNode, FuzzyError> {
    use crate::rule::Antecedent::*;
    Ok(match ant {
        Is { variable, term } => BatchNode::Is(
            *slot_of
                .get(&(variable.as_str(), term.as_str()))
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: format!("{variable} IS {term}"),
                })?,
        ),
        And(a, b) => BatchNode::And(
            Box::new(compile_antecedent(a, slot_of)?),
            Box::new(compile_antecedent(b, slot_of)?),
        ),
        Or(a, b) => BatchNode::Or(
            Box::new(compile_antecedent(a, slot_of)?),
            Box::new(compile_antecedent(b, slot_of)?),
        ),
        Not(a) => BatchNode::Not(Box::new(compile_antecedent(a, slot_of)?)),
    })
}

/// The full result of [`Engine::run_detailed`].
#[derive(Debug, Clone)]
pub struct DetailedOutputs {
    /// The crisp values.
    pub outputs: Outputs,
    /// Per-output aggregated fuzzy sets and rule truths.
    pub inference: HashMap<String, InferenceResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;
    use crate::variable::{load_variable, LinguisticVariable};

    fn paper_engine() -> Engine {
        let mut e = Engine::new();
        e.add_input(load_variable("cpuLoad"));
        e.add_input(
            LinguisticVariable::builder("performanceIndex")
                .range(0.0, 10.0)
                .term("low", MembershipFunction::trapezoid(0.0, 0.0, 1.0, 3.0))
                .term("medium", MembershipFunction::trapezoid(1.0, 3.0, 5.0, 7.0))
                .term("high", MembershipFunction::trapezoid(5.0, 7.0, 10.0, 10.0))
                .build()
                .unwrap(),
        );
        e.add_output(LinguisticVariable::applicability("scaleUp"));
        e.add_output(LinguisticVariable::applicability("scaleOut"));
        e.add_rule_str(
            "IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) \
             THEN scaleUp IS applicable",
        )
        .unwrap();
        e.add_rule_str(
            "IF cpuLoad IS high AND performanceIndex IS high THEN scaleOut IS applicable",
        )
        .unwrap();
        e
    }

    /// Find a perf-index whose grades equal the paper's example
    /// (μ_low = 0, μ_medium = 0.6, μ_high = 0.3): our knots give
    /// μ_medium(x) = (7 − x)/2 and μ_high(x) = (x − 5)/2 on [5, 7], so
    /// x = 5.8 yields (0.6, 0.4)… instead we use the knots to solve exactly:
    /// need μ_medium = 0.6 → x = 5.8; μ_high(5.8) = 0.4 ≠ 0.3. The paper's
    /// grades are hypothetical ("We assume for this example…"), so the test
    /// fixes them by direct construction instead — see
    /// `inference::tests::paper_worked_example_clips_at_0_6_and_0_3` for the
    /// exact-grade variant. Here we assert end-to-end behaviour: scale-up
    /// must beat scale-out whenever medium dominates high.
    #[test]
    fn end_to_end_scale_up_preferred_on_weak_host() {
        let e = paper_engine();
        let out = e
            .run([("cpuLoad", 0.9), ("performanceIndex", 1.0)])
            .unwrap();
        assert!(
            out["scaleUp"] > 0.7,
            "weak host → scale-up strongly applicable"
        );
        assert_eq!(out["scaleOut"], 0.0, "weak host → no scale-out");
    }

    #[test]
    fn end_to_end_scale_out_preferred_on_strong_host() {
        let e = paper_engine();
        let out = e
            .run([("cpuLoad", 0.9), ("performanceIndex", 9.0)])
            .unwrap();
        assert!(out["scaleOut"] > 0.7, "strong host → scale-out");
        assert_eq!(out["scaleUp"], 0.0);
    }

    #[test]
    fn mixed_host_produces_paper_ordering() {
        // perf index 5.8: μ_medium = 0.6, μ_high = 0.4 → scaleUp 0.6, scaleOut 0.4.
        // The closed-form ramp path makes these exact (up to floating-point
        // rounding in the membership grades), not grid-quantized.
        let e = paper_engine();
        let out = e
            .run([("cpuLoad", 0.9), ("performanceIndex", 5.8)])
            .unwrap();
        assert!((out["scaleUp"] - 0.6).abs() < 1e-9);
        assert!((out["scaleOut"] - 0.4).abs() < 1e-9);
        let ranked = out.ranked();
        assert_eq!(ranked[0].0, "scaleUp");
        assert_eq!(ranked[1].0, "scaleOut");
    }

    #[test]
    fn analytic_path_matches_sampled_path_on_an_input_sweep() {
        // `run` (closed form for ramp outputs) and `run_detailed` (sampled
        // grids) must agree to within one grid step everywhere.
        let e = paper_engine();
        let step = 1.0 / (DEFAULT_RESOLUTION - 1) as f64;
        for cpu in 0..=20 {
            for perf in 0..=20 {
                let m = [
                    ("cpuLoad", cpu as f64 / 20.0),
                    ("performanceIndex", perf as f64 / 2.0),
                ];
                let fast = e.run(m).unwrap();
                let sampled = e.run_detailed(m).unwrap().outputs;
                for (name, value) in fast.iter() {
                    assert!(
                        (value - sampled[name]).abs() <= step + 1e-12,
                        "{name} at cpu {cpu} perf {perf}: analytic {value} vs sampled {}",
                        sampled[name]
                    );
                }
            }
        }
    }

    #[test]
    fn non_ramp_outputs_fall_back_to_the_sampled_path() {
        // A triangle consequent is not analytically tractable; `run` must
        // transparently produce the sampled result.
        let mut e = Engine::new();
        e.add_input(load_variable("x"));
        e.add_output(
            LinguisticVariable::builder("y")
                .range(0.0, 1.0)
                .term("mid", MembershipFunction::triangle(0.2, 0.5, 0.8))
                .build()
                .unwrap(),
        );
        e.add_rule_str("IF x IS high THEN y IS mid").unwrap();
        let out = e.run([("x", 1.0)]).unwrap();
        let detailed = e.run_detailed([("x", 1.0)]).unwrap();
        assert_eq!(out["y"], detailed.outputs["y"]);
        // Fully fired triangle: leftmost max at its peak.
        assert!((out["y"] - 0.5).abs() < 2e-3);
    }

    #[test]
    fn ablation_configs_fall_back_to_the_sampled_path() {
        // Centroid defuzzification cannot use the leftmost-max closed form.
        let mut e = paper_engine();
        e.set_config(EngineConfig {
            defuzzifier: Defuzzifier::Centroid,
            ..EngineConfig::default()
        });
        let m = [("cpuLoad", 0.9), ("performanceIndex", 5.8)];
        let out = e.run(m).unwrap();
        let detailed = e.run_detailed(m).unwrap();
        assert_eq!(out["scaleUp"], detailed.outputs["scaleUp"]);
        // Centroid of a clipped ramp sits right of the clip height.
        assert!(out["scaleUp"] > 0.6);
    }

    #[test]
    fn set_config_resamples_term_grids() {
        // Changing the resolution after rules were added must not leave
        // stale grids behind (union would panic on mismatched discretization).
        let mut e = paper_engine();
        e.set_config(EngineConfig {
            resolution: 51,
            defuzzifier: Defuzzifier::MeanOfMaxima,
            ..EngineConfig::default()
        });
        let out = e
            .run([("cpuLoad", 0.9), ("performanceIndex", 1.0)])
            .unwrap();
        assert!(out["scaleUp"] > 0.7);
    }

    #[test]
    fn unfired_outputs_defuzzify_to_zero() {
        let e = paper_engine();
        let out = e
            .run([("cpuLoad", 0.1), ("performanceIndex", 5.0)])
            .unwrap();
        assert_eq!(out["scaleUp"], 0.0);
        assert_eq!(out["scaleOut"], 0.0);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
    }

    #[test]
    fn missing_measurement_is_reported() {
        let e = paper_engine();
        let err = e.run([("cpuLoad", 0.9)]).unwrap_err();
        assert!(matches!(err, FuzzyError::MissingMeasurement { .. }));
    }

    #[test]
    fn unknown_measurement_is_reported() {
        let e = paper_engine();
        let err = e
            .run([("cpuLoad", 0.9), ("bogusVariable", 1.0)])
            .unwrap_err();
        assert!(matches!(err, FuzzyError::UnknownVariable { .. }));
    }

    #[test]
    fn rules_referencing_unknown_entities_are_rejected_at_add_time() {
        let mut e = paper_engine();
        assert!(e
            .add_rule_str("IF bogus IS high THEN scaleUp IS applicable")
            .is_err());
        assert!(e
            .add_rule_str("IF cpuLoad IS gigantic THEN scaleUp IS applicable")
            .is_err());
        assert!(e
            .add_rule_str("IF cpuLoad IS high THEN bogus IS applicable")
            .is_err());
        assert!(e
            .add_rule_str("IF cpuLoad IS high THEN scaleUp IS bogus")
            .is_err());
    }

    #[test]
    fn role_mismatch_is_rejected() {
        let mut e = paper_engine();
        // Output used as input.
        assert!(matches!(
            e.add_rule_str("IF scaleUp IS applicable THEN scaleOut IS applicable"),
            Err(FuzzyError::VariableRoleMismatch { .. })
        ));
        // Input used as output.
        assert!(matches!(
            e.add_rule_str("IF cpuLoad IS high THEN cpuLoad IS high"),
            Err(FuzzyError::VariableRoleMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_variables_are_rejected() {
        let mut e = paper_engine();
        assert!(e.try_add_input(load_variable("cpuLoad")).is_err());
        assert!(e
            .try_add_output(LinguisticVariable::applicability("scaleUp"))
            .is_err());
        assert!(e
            .try_add_output(LinguisticVariable::applicability("cpuLoad"))
            .is_err());
    }

    #[test]
    fn detailed_run_exposes_rule_truths() {
        let e = paper_engine();
        let detail = e
            .run_detailed([("cpuLoad", 0.9), ("performanceIndex", 1.0)])
            .unwrap();
        let up = &detail.inference["scaleUp"];
        assert_eq!(up.rule_truths.len(), 1);
        assert!(up.rule_truths[0] > 0.7);
    }

    #[test]
    fn ranked_is_deterministic_on_ties() {
        let mut e = Engine::new();
        e.add_input(load_variable("x"));
        e.add_output(LinguisticVariable::applicability("b"));
        e.add_output(LinguisticVariable::applicability("a"));
        e.add_rule_str("IF x IS high THEN a IS applicable").unwrap();
        e.add_rule_str("IF x IS high THEN b IS applicable").unwrap();
        let out = e.run([("x", 1.0)]).unwrap();
        let ranked = out.ranked();
        assert_eq!(ranked[0].0, "a");
        assert_eq!(ranked[1].0, "b");
    }

    #[test]
    fn non_finite_measurements_are_rejected() {
        let e = paper_engine();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = e
                .run([("cpuLoad", bad), ("performanceIndex", 5.0)])
                .unwrap_err();
            assert!(
                matches!(err, FuzzyError::NonFiniteMeasurement { ref name, .. } if name == "cpuLoad"),
                "expected NonFiniteMeasurement for {bad}, got {err:?}"
            );
        }
        // The batch path rejects the same inputs.
        let err = e
            .run_batch(&[
                ("cpuLoad", &[0.5, f64::NAN][..]),
                ("performanceIndex", &[5.0, 5.0][..]),
            ])
            .unwrap_err();
        assert!(matches!(err, FuzzyError::NonFiniteMeasurement { .. }));
    }

    #[test]
    fn batch_is_bit_identical_to_scalar_runs_on_a_sweep() {
        // The core batch guarantee: run_batch over N rows produces exactly
        // the bits N scalar `run` calls produce, across the whole input grid.
        let e = paper_engine();
        let mut cpu = Vec::new();
        let mut perf = Vec::new();
        for c in 0..=20 {
            for p in 0..=25 {
                cpu.push(c as f64 / 20.0);
                perf.push(p as f64 / 2.5);
            }
        }
        let batch = e
            .run_batch(&[("cpuLoad", &cpu[..]), ("performanceIndex", &perf[..])])
            .unwrap();
        assert_eq!(batch.rows(), cpu.len());
        for row in 0..cpu.len() {
            let scalar = e
                .run([("cpuLoad", cpu[row]), ("performanceIndex", perf[row])])
                .unwrap();
            for name in ["scaleUp", "scaleOut"] {
                let b = batch.column(name).unwrap()[row];
                assert_eq!(
                    b.to_bits(),
                    scalar[name].to_bits(),
                    "{name} row {row}: batch {b} vs scalar {}",
                    scalar[name]
                );
            }
            // The per-row view agrees too.
            let view = batch.row(row);
            assert_eq!(view["scaleUp"].to_bits(), scalar["scaleUp"].to_bits());
        }
    }

    #[test]
    fn batch_matches_scalar_on_the_non_analytic_fallback() {
        // Triangle consequent → sampled path; run_batch must transparently
        // fall back to per-row scalar cycles and stay bit-identical.
        let mut e = Engine::new();
        e.add_input(load_variable("x"));
        e.add_output(
            LinguisticVariable::builder("y")
                .range(0.0, 1.0)
                .term("mid", MembershipFunction::triangle(0.2, 0.5, 0.8))
                .build()
                .unwrap(),
        );
        e.add_rule_str("IF x IS high THEN y IS mid").unwrap();
        let xs: Vec<f64> = (0..=40).map(|i| i as f64 / 40.0).collect();
        let batch = e.run_batch(&[("x", &xs[..])]).unwrap();
        for (row, &x) in xs.iter().enumerate() {
            let scalar = e.run([("x", x)]).unwrap();
            assert_eq!(
                batch.column("y").unwrap()[row].to_bits(),
                scalar["y"].to_bits()
            );
        }
    }

    #[test]
    fn batch_handles_weighted_and_compound_rules() {
        // Exercise Not/Or nesting and rule weights through the compiled
        // element-wise evaluator.
        let mut e = paper_engine();
        e.add_rule(
            parse_rule(
                "IF NOT (cpuLoad IS low OR cpuLoad IS medium) AND performanceIndex IS low \
                 THEN scaleUp IS applicable",
            )
            .unwrap()
            .with_weight(0.7),
        )
        .unwrap();
        let cpu: Vec<f64> = (0..=30).map(|i| i as f64 / 30.0).collect();
        let perf: Vec<f64> = (0..=30).map(|i| (30 - i) as f64 / 3.0).collect();
        let batch = e
            .run_batch(&[("cpuLoad", &cpu[..]), ("performanceIndex", &perf[..])])
            .unwrap();
        for row in 0..cpu.len() {
            let scalar = e
                .run([("cpuLoad", cpu[row]), ("performanceIndex", perf[row])])
                .unwrap();
            for name in ["scaleUp", "scaleOut"] {
                assert_eq!(
                    batch.column(name).unwrap()[row].to_bits(),
                    scalar[name].to_bits()
                );
            }
        }
    }

    #[test]
    fn batch_validates_like_the_scalar_path() {
        let e = paper_engine();
        // Unknown column.
        assert!(matches!(
            e.run_batch(&[("bogus", &[0.1][..])]),
            Err(FuzzyError::UnknownVariable { .. })
        ));
        // Missing rule input.
        assert!(matches!(
            e.run_batch(&[("cpuLoad", &[0.1][..])]),
            Err(FuzzyError::MissingMeasurement { .. })
        ));
        // Empty batch: still well-formed, zero rows.
        let empty = e
            .run_batch(&[("cpuLoad", &[][..]), ("performanceIndex", &[][..])])
            .unwrap();
        assert_eq!(empty.rows(), 0);
        assert_eq!(empty.column("scaleUp").unwrap().len(), 0);
        assert!(empty.column("bogus").is_none());
    }

    #[test]
    fn variable_lookup_spans_inputs_and_outputs() {
        let e = paper_engine();
        assert!(e.variable("cpuLoad").is_some());
        assert!(e.variable("scaleUp").is_some());
        assert!(e.variable("none").is_none());
        assert_eq!(e.inputs().count(), 2);
        assert_eq!(e.outputs().count(), 2);
        assert_eq!(e.rules().len(), 2);
    }
}
