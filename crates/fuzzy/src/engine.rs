//! The complete fuzzy-controller cycle of the paper's Figure 4:
//! measurement → fuzzification → inference → defuzzification.

use crate::defuzz::Defuzzifier;
use crate::inference::{infer, InferenceConfig, InferenceMethod, InferenceResult};
use crate::parser::{parse_rule, parse_rules};
use crate::rule::{Rule, RuleBase};
use crate::set::DEFAULT_RESOLUTION;
use crate::variable::LinguisticVariable;
use crate::{FuzzyError, Truth};
use std::collections::HashMap;
use std::ops::Index;

/// Tunable knobs of an [`Engine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Clipping (max–min, the paper) vs. scaling (max–product).
    pub inference: InferenceMethod,
    /// How aggregated sets become crisp values (leftmost-max, the paper).
    pub defuzzifier: Defuzzifier,
    /// Samples per output universe.
    pub resolution: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            inference: InferenceMethod::MaxMin,
            defuzzifier: Defuzzifier::LeftmostMax,
            resolution: DEFAULT_RESOLUTION,
        }
    }
}

/// Crisp outputs of one controller cycle, keyed by output variable name.
///
/// Indexing with an unknown name panics (tests read better); use
/// [`Outputs::get`] for fallible access. [`Outputs::ranked`] returns the
/// variables sorted by descending crisp value — the "actions sorted by their
/// applicability" list of Section 4.1.
#[derive(Debug, Clone, Default)]
pub struct Outputs {
    values: HashMap<String, f64>,
}

impl Outputs {
    /// The crisp value of `name`, if that output variable exists.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// All `(name, value)` pairs sorted by descending value; ties broken by
    /// name for determinism.
    pub fn ranked(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<(&str, f64)> = self
            .values
            .iter()
            .map(|(k, &val)| (k.as_str(), val))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(b.0)));
        v
    }

    /// Iterate over `(name, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of output variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if there are no outputs.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl Index<&str> for Outputs {
    type Output = f64;
    fn index(&self, name: &str) -> &f64 {
        self.values
            .get(name)
            .unwrap_or_else(|| panic!("no output variable `{name}`"))
    }
}

/// A complete fuzzy controller: input/output variables, a rule base, and the
/// inference/defuzzification configuration.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    inputs: HashMap<String, LinguisticVariable>,
    outputs: HashMap<String, LinguisticVariable>,
    rules: RuleBase,
    config: EngineConfig,
}

impl Engine {
    /// An empty engine with the paper's default configuration.
    pub fn new() -> Self {
        Engine::default()
    }

    /// An empty engine with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine {
            config,
            ..Engine::default()
        }
    }

    /// The active configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Replace the configuration (useful for ablation sweeps on an otherwise
    /// identical controller).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Declare an input variable. Returns an error if the name is taken.
    pub fn try_add_input(&mut self, var: LinguisticVariable) -> Result<(), FuzzyError> {
        let name = var.name().to_string();
        if self.inputs.contains_key(&name) || self.outputs.contains_key(&name) {
            return Err(FuzzyError::DuplicateVariable { name });
        }
        self.inputs.insert(name, var);
        Ok(())
    }

    /// Declare an input variable.
    ///
    /// # Panics
    /// Panics on duplicate names; use [`Engine::try_add_input`] when the
    /// variable set is dynamic.
    pub fn add_input(&mut self, var: LinguisticVariable) {
        self.try_add_input(var).expect("duplicate variable");
    }

    /// Declare an output variable. Returns an error if the name is taken.
    pub fn try_add_output(&mut self, var: LinguisticVariable) -> Result<(), FuzzyError> {
        let name = var.name().to_string();
        if self.inputs.contains_key(&name) || self.outputs.contains_key(&name) {
            return Err(FuzzyError::DuplicateVariable { name });
        }
        self.outputs.insert(name, var);
        Ok(())
    }

    /// Declare an output variable.
    ///
    /// # Panics
    /// Panics on duplicate names; use [`Engine::try_add_output`] when the
    /// variable set is dynamic.
    pub fn add_output(&mut self, var: LinguisticVariable) {
        self.try_add_output(var).expect("duplicate variable");
    }

    /// The declared input variables.
    pub fn inputs(&self) -> impl Iterator<Item = &LinguisticVariable> {
        self.inputs.values()
    }

    /// The declared output variables.
    pub fn outputs(&self) -> impl Iterator<Item = &LinguisticVariable> {
        self.outputs.values()
    }

    /// Look up a variable (input or output) by name.
    pub fn variable(&self, name: &str) -> Option<&LinguisticVariable> {
        self.inputs.get(name).or_else(|| self.outputs.get(name))
    }

    /// Add a rule, validating that every referenced variable and term exists
    /// and that input/output roles are respected.
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), FuzzyError> {
        self.validate_rule(&rule)?;
        self.rules.push(rule);
        Ok(())
    }

    /// Parse and add a single rule from DSL text.
    pub fn add_rule_str(&mut self, text: &str) -> Result<(), FuzzyError> {
        self.add_rule(parse_rule(text)?)
    }

    /// Parse and add a whole rule base from DSL text.
    pub fn add_rules_str(&mut self, text: &str) -> Result<(), FuzzyError> {
        for rule in parse_rules(text)?.rules() {
            self.add_rule(rule.clone())?;
        }
        Ok(())
    }

    /// The current rule base.
    pub fn rules(&self) -> &RuleBase {
        &self.rules
    }

    fn validate_rule(&self, rule: &Rule) -> Result<(), FuzzyError> {
        for var_name in rule.antecedent.referenced_variables() {
            if self.outputs.contains_key(var_name) {
                return Err(FuzzyError::VariableRoleMismatch {
                    name: var_name.to_string(),
                    reason: "output variable used in a rule antecedent".into(),
                });
            }
            let var = self
                .inputs
                .get(var_name)
                .ok_or_else(|| FuzzyError::UnknownVariable {
                    name: var_name.to_string(),
                })?;
            // Check every atom mentioning this variable names a real term.
            validate_terms(&rule.antecedent, var_name, var)?;
        }
        if self.inputs.contains_key(&rule.consequent.variable) {
            return Err(FuzzyError::VariableRoleMismatch {
                name: rule.consequent.variable.clone(),
                reason: "input variable used in a rule consequent".into(),
            });
        }
        let out = self
            .outputs
            .get(&rule.consequent.variable)
            .ok_or_else(|| FuzzyError::UnknownVariable {
                name: rule.consequent.variable.clone(),
            })?;
        if out.term(&rule.consequent.term).is_none() {
            return Err(FuzzyError::UnknownTerm {
                variable: rule.consequent.variable.clone(),
                term: rule.consequent.term.clone(),
            });
        }
        Ok(())
    }

    /// Run one full controller cycle.
    ///
    /// `measurements` supplies a crisp value per input variable; every input
    /// referenced by at least one rule must be measured. The result holds one
    /// crisp value per *declared* output variable (variables no rule fired
    /// for defuzzify to the left edge of their universe, i.e. 0 for
    /// applicability outputs).
    pub fn run<'a, M>(&self, measurements: M) -> Result<Outputs, FuzzyError>
    where
        M: IntoIterator<Item = (&'a str, f64)>,
    {
        let detailed = self.run_detailed(measurements)?;
        Ok(detailed.outputs)
    }

    /// Like [`Engine::run`], but also returns the aggregated fuzzy sets and
    /// rule truths — used by the AutoGlobe controller console to explain
    /// decisions to the administrator.
    pub fn run_detailed<'a, M>(&self, measurements: M) -> Result<DetailedOutputs, FuzzyError>
    where
        M: IntoIterator<Item = (&'a str, f64)>,
    {
        // 1. Fuzzification of every supplied measurement.
        let mut grades: HashMap<(String, String), Truth> = HashMap::new();
        let mut measured: HashMap<&str, f64> = HashMap::new();
        for (name, value) in measurements {
            let var = self
                .inputs
                .get(name)
                .ok_or_else(|| FuzzyError::UnknownVariable { name: name.into() })?;
            measured.insert(name, value);
            for (term, grade) in var.fuzzify_named(value) {
                grades.insert((name.to_string(), term.to_string()), grade);
            }
        }
        // Every input a rule references must have been measured.
        for var_name in self.rules.input_variables() {
            if !measured.contains_key(var_name) {
                return Err(FuzzyError::MissingMeasurement {
                    name: var_name.to_string(),
                });
            }
        }

        // 2. + 3. Inference.
        let cfg = InferenceConfig {
            method: self.config.inference,
            resolution: self.config.resolution,
        };
        let mut results = infer(&self.rules, &grades, &self.outputs, cfg)?;

        // 4. Defuzzification — every declared output gets a crisp value.
        let mut values = HashMap::with_capacity(self.outputs.len());
        for (name, var) in &self.outputs {
            let crisp = match results.get(name) {
                Some(r) => self.config.defuzzifier.defuzzify(&r.set),
                None => var.range().0,
            };
            values.insert(name.clone(), crisp);
        }
        Ok(DetailedOutputs {
            outputs: Outputs { values },
            inference: std::mem::take(&mut results),
        })
    }
}

fn validate_terms(
    ant: &crate::rule::Antecedent,
    var_name: &str,
    var: &LinguisticVariable,
) -> Result<(), FuzzyError> {
    use crate::rule::Antecedent::*;
    match ant {
        Is { variable, term } => {
            if variable == var_name && var.term(term).is_none() {
                return Err(FuzzyError::UnknownTerm {
                    variable: variable.clone(),
                    term: term.clone(),
                });
            }
            Ok(())
        }
        And(a, b) | Or(a, b) => {
            validate_terms(a, var_name, var)?;
            validate_terms(b, var_name, var)
        }
        Not(a) => validate_terms(a, var_name, var),
    }
}

/// The full result of [`Engine::run_detailed`].
#[derive(Debug, Clone)]
pub struct DetailedOutputs {
    /// The crisp values.
    pub outputs: Outputs,
    /// Per-output aggregated fuzzy sets and rule truths.
    pub inference: HashMap<String, InferenceResult>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipFunction;
    use crate::variable::{load_variable, LinguisticVariable};

    fn paper_engine() -> Engine {
        let mut e = Engine::new();
        e.add_input(load_variable("cpuLoad"));
        e.add_input(
            LinguisticVariable::builder("performanceIndex")
                .range(0.0, 10.0)
                .term("low", MembershipFunction::trapezoid(0.0, 0.0, 1.0, 3.0))
                .term("medium", MembershipFunction::trapezoid(1.0, 3.0, 5.0, 7.0))
                .term("high", MembershipFunction::trapezoid(5.0, 7.0, 10.0, 10.0))
                .build()
                .unwrap(),
        );
        e.add_output(LinguisticVariable::applicability("scaleUp"));
        e.add_output(LinguisticVariable::applicability("scaleOut"));
        e.add_rule_str(
            "IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium) \
             THEN scaleUp IS applicable",
        )
        .unwrap();
        e.add_rule_str(
            "IF cpuLoad IS high AND performanceIndex IS high THEN scaleOut IS applicable",
        )
        .unwrap();
        e
    }

    /// Find a perf-index whose grades equal the paper's example
    /// (μ_low = 0, μ_medium = 0.6, μ_high = 0.3): our knots give
    /// μ_medium(x) = (7 − x)/2 and μ_high(x) = (x − 5)/2 on [5, 7], so
    /// x = 5.8 yields (0.6, 0.4)… instead we use the knots to solve exactly:
    /// need μ_medium = 0.6 → x = 5.8; μ_high(5.8) = 0.4 ≠ 0.3. The paper's
    /// grades are hypothetical ("We assume for this example…"), so the test
    /// fixes them by direct construction instead — see
    /// `inference::tests::paper_worked_example_clips_at_0_6_and_0_3` for the
    /// exact-grade variant. Here we assert end-to-end behaviour: scale-up
    /// must beat scale-out whenever medium dominates high.
    #[test]
    fn end_to_end_scale_up_preferred_on_weak_host() {
        let e = paper_engine();
        let out = e.run([("cpuLoad", 0.9), ("performanceIndex", 1.0)]).unwrap();
        assert!(out["scaleUp"] > 0.7, "weak host → scale-up strongly applicable");
        assert_eq!(out["scaleOut"], 0.0, "weak host → no scale-out");
    }

    #[test]
    fn end_to_end_scale_out_preferred_on_strong_host() {
        let e = paper_engine();
        let out = e.run([("cpuLoad", 0.9), ("performanceIndex", 9.0)]).unwrap();
        assert!(out["scaleOut"] > 0.7, "strong host → scale-out");
        assert_eq!(out["scaleUp"], 0.0);
    }

    #[test]
    fn mixed_host_produces_paper_ordering() {
        // perf index 5.8: μ_medium = 0.6, μ_high = 0.4 → scaleUp 0.6, scaleOut 0.4.
        let e = paper_engine();
        let out = e.run([("cpuLoad", 0.9), ("performanceIndex", 5.8)]).unwrap();
        assert!((out["scaleUp"] - 0.6).abs() < 2e-3);
        assert!((out["scaleOut"] - 0.4).abs() < 2e-3);
        let ranked = out.ranked();
        assert_eq!(ranked[0].0, "scaleUp");
        assert_eq!(ranked[1].0, "scaleOut");
    }

    #[test]
    fn unfired_outputs_defuzzify_to_zero() {
        let e = paper_engine();
        let out = e.run([("cpuLoad", 0.1), ("performanceIndex", 5.0)]).unwrap();
        assert_eq!(out["scaleUp"], 0.0);
        assert_eq!(out["scaleOut"], 0.0);
        assert_eq!(out.len(), 2);
        assert!(!out.is_empty());
    }

    #[test]
    fn missing_measurement_is_reported() {
        let e = paper_engine();
        let err = e.run([("cpuLoad", 0.9)]).unwrap_err();
        assert!(matches!(err, FuzzyError::MissingMeasurement { .. }));
    }

    #[test]
    fn unknown_measurement_is_reported() {
        let e = paper_engine();
        let err = e
            .run([("cpuLoad", 0.9), ("bogusVariable", 1.0)])
            .unwrap_err();
        assert!(matches!(err, FuzzyError::UnknownVariable { .. }));
    }

    #[test]
    fn rules_referencing_unknown_entities_are_rejected_at_add_time() {
        let mut e = paper_engine();
        assert!(e.add_rule_str("IF bogus IS high THEN scaleUp IS applicable").is_err());
        assert!(e.add_rule_str("IF cpuLoad IS gigantic THEN scaleUp IS applicable").is_err());
        assert!(e.add_rule_str("IF cpuLoad IS high THEN bogus IS applicable").is_err());
        assert!(e.add_rule_str("IF cpuLoad IS high THEN scaleUp IS bogus").is_err());
    }

    #[test]
    fn role_mismatch_is_rejected() {
        let mut e = paper_engine();
        // Output used as input.
        assert!(matches!(
            e.add_rule_str("IF scaleUp IS applicable THEN scaleOut IS applicable"),
            Err(FuzzyError::VariableRoleMismatch { .. })
        ));
        // Input used as output.
        assert!(matches!(
            e.add_rule_str("IF cpuLoad IS high THEN cpuLoad IS high"),
            Err(FuzzyError::VariableRoleMismatch { .. })
        ));
    }

    #[test]
    fn duplicate_variables_are_rejected() {
        let mut e = paper_engine();
        assert!(e.try_add_input(load_variable("cpuLoad")).is_err());
        assert!(e.try_add_output(LinguisticVariable::applicability("scaleUp")).is_err());
        assert!(e.try_add_output(LinguisticVariable::applicability("cpuLoad")).is_err());
    }

    #[test]
    fn detailed_run_exposes_rule_truths() {
        let e = paper_engine();
        let detail = e
            .run_detailed([("cpuLoad", 0.9), ("performanceIndex", 1.0)])
            .unwrap();
        let up = &detail.inference["scaleUp"];
        assert_eq!(up.rule_truths.len(), 1);
        assert!(up.rule_truths[0] > 0.7);
    }

    #[test]
    fn ranked_is_deterministic_on_ties() {
        let mut e = Engine::new();
        e.add_input(load_variable("x"));
        e.add_output(LinguisticVariable::applicability("b"));
        e.add_output(LinguisticVariable::applicability("a"));
        e.add_rule_str("IF x IS high THEN a IS applicable").unwrap();
        e.add_rule_str("IF x IS high THEN b IS applicable").unwrap();
        let out = e.run([("x", 1.0)]).unwrap();
        let ranked = out.ranked();
        assert_eq!(ranked[0].0, "a");
        assert_eq!(ranked[1].0, "b");
    }

    #[test]
    fn variable_lookup_spans_inputs_and_outputs() {
        let e = paper_engine();
        assert!(e.variable("cpuLoad").is_some());
        assert!(e.variable("scaleUp").is_some());
        assert!(e.variable("none").is_none());
        assert_eq!(e.inputs().count(), 2);
        assert_eq!(e.outputs().count(), 2);
        assert_eq!(e.rules().len(), 2);
    }
}
