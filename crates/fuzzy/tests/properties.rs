//! Property-based tests for the fuzzy engine's core invariants.

use autoglobe_fuzzy::{
    parse_rule, Antecedent, Defuzzifier, Engine, FuzzySet, LinguisticVariable,
    MembershipFunction, Rule,
};
use proptest::prelude::*;

/// Strategy: a valid trapezoid over [0, 1].
fn trapezoid() -> impl Strategy<Value = MembershipFunction> {
    proptest::collection::vec(0.0f64..=1.0, 4).prop_map(|mut v| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        MembershipFunction::trapezoid(v[0], v[1], v[2], v[3])
    })
}

/// Strategy: an arbitrary membership function over roughly [0, 1].
fn membership() -> impl Strategy<Value = MembershipFunction> {
    prop_oneof![
        trapezoid(),
        (0.0f64..=0.5, 0.5f64..=1.0).prop_map(|(b, c)| MembershipFunction::left_shoulder(b, c)),
        (0.0f64..=0.5, 0.5f64..=1.0).prop_map(|(a, b)| MembershipFunction::right_shoulder(a, b)),
        (0.0f64..=1.0, 0.0f64..=0.2).prop_map(|(at, tol)| MembershipFunction::singleton(at, tol)),
    ]
}

/// Strategy: a random antecedent over variables v0..v2 with terms low/high.
fn antecedent() -> impl Strategy<Value = Antecedent> {
    let leaf = (0usize..3, prop_oneof![Just("low"), Just("high")])
        .prop_map(|(i, t)| Antecedent::is(format!("v{i}"), t));
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    /// μ(x) ∈ [0, 1] for every membership function and input.
    #[test]
    fn membership_grades_stay_in_unit_interval(mf in membership(), x in -2.0f64..=3.0) {
        let g = mf.eval(x);
        prop_assert!((0.0..=1.0).contains(&g), "μ({x}) = {g} out of range");
    }

    /// Trapezoids are non-decreasing up to the core and non-increasing after.
    #[test]
    fn trapezoid_is_unimodal(mf in trapezoid(), a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
        if let MembershipFunction::Trapezoid { b: core_lo, c: core_hi, .. } = mf {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if hi <= core_lo {
                prop_assert!(mf.eval(lo) <= mf.eval(hi) + 1e-12);
            }
            if lo >= core_hi {
                prop_assert!(mf.eval(lo) + 1e-12 >= mf.eval(hi));
            }
        }
    }

    /// Antecedent truth stays within [0, 1] regardless of structure.
    #[test]
    fn antecedent_truth_in_unit_interval(
        ant in antecedent(),
        grades in proptest::collection::vec(0.0f64..=1.0, 6),
    ) {
        let mut lookup = |v: &str, t: &str| {
            let vi: usize = v[1..].parse().unwrap();
            let ti = if t == "low" { 0 } else { 1 };
            Ok(grades[vi * 2 + ti])
        };
        let truth = ant.eval(&mut lookup).unwrap();
        prop_assert!((0.0..=1.0).contains(&truth), "truth {truth} out of range");
    }

    /// De Morgan: NOT (a AND b) == (NOT a) OR (NOT b) under min/max/1−x.
    #[test]
    fn de_morgan_holds(
        ga in 0.0f64..=1.0,
        gb in 0.0f64..=1.0,
    ) {
        let a = || Antecedent::is("a", "t");
        let b = || Antecedent::is("b", "t");
        let mut lookup = |v: &str, _t: &str| Ok(if v == "a" { ga } else { gb });
        let lhs = a().and(b()).not().eval(&mut lookup).unwrap();
        let rhs = a().not().or(b().not()).eval(&mut lookup).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-12);
    }

    /// Clipping at h bounds the set height by h; union height is max of heights.
    #[test]
    fn clip_and_union_height_laws(
        mf1 in membership(),
        mf2 in membership(),
        h1 in 0.0f64..=1.0,
        h2 in 0.0f64..=1.0,
    ) {
        let mut s1 = FuzzySet::from_membership(&mf1, 0.0, 1.0, 201);
        let mut s2 = FuzzySet::from_membership(&mf2, 0.0, 1.0, 201);
        s1.clip(h1);
        s2.clip(h2);
        prop_assert!(s1.height() <= h1 + 1e-12);
        prop_assert!(s2.height() <= h2 + 1e-12);
        let (h1a, h2a) = (s1.height(), s2.height());
        s1.union_assign(&s2);
        prop_assert!((s1.height() - h1a.max(h2a)).abs() < 1e-12);
    }

    /// For the applicability ramp, leftmost-max defuzzification returns the
    /// clip height (the identity the paper's scoring relies on).
    #[test]
    fn leftmost_max_inverts_clip_on_ramp(h in 0.0f64..=1.0) {
        let mut s = FuzzySet::from_membership(
            &MembershipFunction::right_shoulder(0.0, 1.0), 0.0, 1.0, 1001,
        );
        s.clip(h);
        let x = Defuzzifier::LeftmostMax.defuzzify(&s);
        prop_assert!((x - h).abs() < 2e-3, "clip {h} defuzzified to {x}");
    }

    /// Every defuzzifier returns a value inside the universe.
    #[test]
    fn defuzzifiers_stay_in_universe(mf in membership(), h in 0.0f64..=1.0) {
        let mut s = FuzzySet::from_membership(&mf, 0.0, 1.0, 301);
        s.clip(h);
        for d in [Defuzzifier::LeftmostMax, Defuzzifier::MeanOfMaxima, Defuzzifier::Centroid] {
            let x = d.defuzzify(&s);
            prop_assert!((0.0..=1.0).contains(&x), "{d:?} returned {x}");
        }
    }

    /// Engine outputs are monotone in rule weight: a higher weight can never
    /// lower the crisp applicability.
    #[test]
    fn output_monotone_in_rule_weight(
        w1 in 0.0f64..=1.0,
        w2 in 0.0f64..=1.0,
        load in 0.0f64..=1.0,
    ) {
        let (wlo, whi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let run = |w: f64| {
            let mut e = Engine::new();
            e.add_input(autoglobe_fuzzy::variable::load_variable("cpuLoad"));
            e.add_output(LinguisticVariable::applicability("act"));
            e.add_rule(
                Rule::new(Antecedent::is("cpuLoad", "high"), "act", "applicable").with_weight(w),
            )
            .unwrap();
            e.run([("cpuLoad", load)]).unwrap()["act"]
        };
        prop_assert!(run(wlo) <= run(whi) + 2e-3);
    }

    /// The rule DSL round-trips: Display output reparses to the same AST.
    #[test]
    fn rule_display_reparses(ant in antecedent(), w in 0.0f64..=1.0) {
        let rule = Rule::new(ant, "out", "applicable").with_weight((w * 100.0).round() / 100.0);
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        prop_assert_eq!(rule.antecedent, reparsed.antecedent);
        prop_assert_eq!(rule.consequent, reparsed.consequent);
        prop_assert!((rule.weight - reparsed.weight).abs() < 1e-9);
    }

    /// Engine.run never produces values outside the output universe, for any
    /// measured loads.
    #[test]
    fn engine_outputs_bounded(
        l1 in -0.5f64..=1.5,
        l2 in -0.5f64..=1.5,
    ) {
        let mut e = Engine::new();
        e.add_input(autoglobe_fuzzy::variable::load_variable("cpuLoad"));
        e.add_input(autoglobe_fuzzy::variable::load_variable("memLoad"));
        e.add_output(LinguisticVariable::applicability("act"));
        e.add_rule_str("IF cpuLoad IS high OR memLoad IS high THEN act IS applicable").unwrap();
        e.add_rule_str("IF cpuLoad IS low AND NOT memLoad IS medium THEN act IS applicable WITH 0.5").unwrap();
        let out = e.run([("cpuLoad", l1), ("memLoad", l2)]).unwrap();
        prop_assert!((0.0..=1.0).contains(&out["act"]));
    }
}

proptest! {
    /// The rule DSL parser never panics on arbitrary input.
    #[test]
    fn rule_parser_never_panics(input in ".{0,300}") {
        let _ = autoglobe_fuzzy::parse_rule(&input);
        let _ = autoglobe_fuzzy::parse_rules(&input);
    }

    /// Token soup built from valid keywords/identifiers never panics and,
    /// when it parses, re-serializes to something that parses again.
    #[test]
    fn keyword_soup_round_trips_when_valid(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "IF", "THEN", "IS", "AND", "OR", "NOT", "WITH",
                "cpuLoad", "high", "low", "scaleUp", "applicable",
                "(", ")", "0.5",
            ]),
            1..24,
        ),
    ) {
        let text = words.join(" ");
        if let Ok(rule) = autoglobe_fuzzy::parse_rule(&text) {
            let reparsed = autoglobe_fuzzy::parse_rule(&rule.to_string()).unwrap();
            prop_assert_eq!(rule, reparsed);
        }
    }
}
