//! Seeded property tests for the fuzzy engine's core invariants.
//!
//! These run a fixed number of deterministic cases per property (see
//! `autoglobe_rng::check`) so the suite behaves identically on every
//! machine and needs no network-fetched test framework.

use autoglobe_fuzzy::{
    parse_rule, Antecedent, Defuzzifier, Engine, FuzzySet, LinguisticVariable, MembershipFunction,
    Rule,
};
use autoglobe_rng::{check, Rng};

/// A valid trapezoid over [0, 1].
fn trapezoid(rng: &mut Rng) -> MembershipFunction {
    let mut v: Vec<f64> = (0..4).map(|_| rng.random_range(0.0..=1.0)).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    MembershipFunction::trapezoid(v[0], v[1], v[2], v[3])
}

/// An arbitrary membership function over roughly [0, 1].
fn membership(rng: &mut Rng) -> MembershipFunction {
    match rng.random_below(4) {
        0 => trapezoid(rng),
        1 => MembershipFunction::left_shoulder(
            rng.random_range(0.0..=0.5),
            rng.random_range(0.5..=1.0),
        ),
        2 => MembershipFunction::right_shoulder(
            rng.random_range(0.0..=0.5),
            rng.random_range(0.5..=1.0),
        ),
        _ => {
            MembershipFunction::singleton(rng.random_range(0.0..=1.0), rng.random_range(0.0..=0.2))
        }
    }
}

/// A random antecedent over variables v0..v2 with terms low/high.
fn antecedent(rng: &mut Rng, depth: usize) -> Antecedent {
    let leaf = |rng: &mut Rng| {
        let i = rng.random_below(3);
        let t = *rng.choice(&["low", "high"]);
        Antecedent::is(format!("v{i}"), t)
    };
    if depth == 0 || rng.random_below(3) == 0 {
        return leaf(rng);
    }
    match rng.random_below(3) {
        0 => antecedent(rng, depth - 1).and(antecedent(rng, depth - 1)),
        1 => antecedent(rng, depth - 1).or(antecedent(rng, depth - 1)),
        _ => antecedent(rng, depth - 1).not(),
    }
}

#[test]
fn membership_grades_stay_in_unit_interval() {
    check::cases(512, |rng| {
        let mf = membership(rng);
        let x = rng.random_range(-2.0..=3.0);
        let g = mf.eval(x);
        assert!((0.0..=1.0).contains(&g), "μ({x}) = {g} out of range");
    });
}

#[test]
fn trapezoid_is_unimodal() {
    check::cases(512, |rng| {
        let mf = trapezoid(rng);
        let (a, b) = (rng.random_range(0.0..=1.0), rng.random_range(0.0..=1.0));
        if let MembershipFunction::Trapezoid {
            b: core_lo,
            c: core_hi,
            ..
        } = mf
        {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if hi <= core_lo {
                assert!(mf.eval(lo) <= mf.eval(hi) + 1e-12);
            }
            if lo >= core_hi {
                assert!(mf.eval(lo) + 1e-12 >= mf.eval(hi));
            }
        }
    });
}

#[test]
fn antecedent_truth_in_unit_interval() {
    check::cases(512, |rng| {
        let ant = antecedent(rng, 3);
        let grades: Vec<f64> = (0..6).map(|_| rng.random_range(0.0..=1.0)).collect();
        let mut lookup = |v: &str, t: &str| {
            let vi: usize = v[1..].parse().unwrap();
            let ti = if t == "low" { 0 } else { 1 };
            Ok(grades[vi * 2 + ti])
        };
        let truth = ant.eval(&mut lookup).unwrap();
        assert!((0.0..=1.0).contains(&truth), "truth {truth} out of range");
    });
}

#[test]
fn de_morgan_holds() {
    check::cases(512, |rng| {
        let ga = rng.random_range(0.0..=1.0);
        let gb = rng.random_range(0.0..=1.0);
        let a = || Antecedent::is("a", "t");
        let b = || Antecedent::is("b", "t");
        let mut lookup = |v: &str, _t: &str| Ok(if v == "a" { ga } else { gb });
        let lhs = a().and(b()).not().eval(&mut lookup).unwrap();
        let rhs = a().not().or(b().not()).eval(&mut lookup).unwrap();
        assert!((lhs - rhs).abs() < 1e-12);
    });
}

#[test]
fn clip_and_union_height_laws() {
    check::cases(256, |rng| {
        let mf1 = membership(rng);
        let mf2 = membership(rng);
        let h1 = rng.random_range(0.0..=1.0);
        let h2 = rng.random_range(0.0..=1.0);
        let mut s1 = FuzzySet::from_membership(&mf1, 0.0, 1.0, 201);
        let mut s2 = FuzzySet::from_membership(&mf2, 0.0, 1.0, 201);
        s1.clip(h1);
        s2.clip(h2);
        assert!(s1.height() <= h1 + 1e-12);
        assert!(s2.height() <= h2 + 1e-12);
        let (h1a, h2a) = (s1.height(), s2.height());
        s1.union_assign(&s2);
        assert!((s1.height() - h1a.max(h2a)).abs() < 1e-12);
    });
}

#[test]
fn leftmost_max_inverts_clip_on_ramp() {
    // For the applicability ramp, leftmost-max defuzzification returns the
    // clip height exactly — the identity the paper's scoring relies on.
    check::cases(256, |rng| {
        let h = rng.random_range(0.0..=1.0);
        let mut s = FuzzySet::from_membership(
            &MembershipFunction::right_shoulder(0.0, 1.0),
            0.0,
            1.0,
            1001,
        );
        s.clip(h);
        let x = Defuzzifier::LeftmostMax.defuzzify(&s);
        assert!((x - h).abs() < 2e-3, "clip {h} defuzzified to {x}");
    });
}

#[test]
fn defuzzifiers_stay_in_universe() {
    check::cases(256, |rng| {
        let mf = membership(rng);
        let h = rng.random_range(0.0..=1.0);
        let mut s = FuzzySet::from_membership(&mf, 0.0, 1.0, 301);
        s.clip(h);
        for d in [
            Defuzzifier::LeftmostMax,
            Defuzzifier::MeanOfMaxima,
            Defuzzifier::Centroid,
        ] {
            let x = d.defuzzify(&s);
            assert!((0.0..=1.0).contains(&x), "{d:?} returned {x}");
        }
    });
}

#[test]
fn output_monotone_in_rule_weight() {
    // A higher rule weight can never lower the crisp applicability.
    check::cases(128, |rng| {
        let w1 = rng.random_range(0.0..=1.0);
        let w2 = rng.random_range(0.0..=1.0);
        let load = rng.random_range(0.0..=1.0);
        let (wlo, whi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        let run = |w: f64| {
            let mut e = Engine::new();
            e.add_input(autoglobe_fuzzy::variable::load_variable("cpuLoad"));
            e.add_output(LinguisticVariable::applicability("act"));
            e.add_rule(
                Rule::new(Antecedent::is("cpuLoad", "high"), "act", "applicable").with_weight(w),
            )
            .unwrap();
            e.run([("cpuLoad", load)]).unwrap()["act"]
        };
        assert!(run(wlo) <= run(whi) + 2e-3);
    });
}

#[test]
fn rule_display_reparses() {
    check::cases(256, |rng| {
        let ant = antecedent(rng, 3);
        let w = (rng.random_range(0.0..=1.0) * 100.0).round() / 100.0;
        let rule = Rule::new(ant, "out", "applicable").with_weight(w);
        let text = rule.to_string();
        let reparsed = parse_rule(&text).unwrap();
        assert_eq!(rule.antecedent, reparsed.antecedent);
        assert_eq!(rule.consequent, reparsed.consequent);
        assert!((rule.weight - reparsed.weight).abs() < 1e-9);
    });
}

#[test]
fn engine_outputs_bounded() {
    check::cases(128, |rng| {
        let l1 = rng.random_range(-0.5..=1.5);
        let l2 = rng.random_range(-0.5..=1.5);
        let mut e = Engine::new();
        e.add_input(autoglobe_fuzzy::variable::load_variable("cpuLoad"));
        e.add_input(autoglobe_fuzzy::variable::load_variable("memLoad"));
        e.add_output(LinguisticVariable::applicability("act"));
        e.add_rule_str("IF cpuLoad IS high OR memLoad IS high THEN act IS applicable")
            .unwrap();
        e.add_rule_str(
            "IF cpuLoad IS low AND NOT memLoad IS medium THEN act IS applicable WITH 0.5",
        )
        .unwrap();
        let out = e.run([("cpuLoad", l1), ("memLoad", l2)]).unwrap();
        assert!((0.0..=1.0).contains(&out["act"]));
    });
}

#[test]
fn rule_parser_never_panics() {
    check::cases(512, |rng| {
        // Arbitrary (mostly printable) input of up to 300 chars.
        let len = rng.random_below(300);
        let input: String = (0..len)
            .map(|_| char::from_u32(rng.random_int(1..=0x2FF) as u32).unwrap_or('?'))
            .collect();
        let _ = autoglobe_fuzzy::parse_rule(&input);
        let _ = autoglobe_fuzzy::parse_rules(&input);
    });
}

#[test]
fn keyword_soup_round_trips_when_valid() {
    const WORDS: [&str; 15] = [
        "IF",
        "THEN",
        "IS",
        "AND",
        "OR",
        "NOT",
        "WITH",
        "cpuLoad",
        "high",
        "low",
        "scaleUp",
        "applicable",
        "(",
        ")",
        "0.5",
    ];
    check::cases(2048, |rng| {
        let n = 1 + rng.random_below(23);
        let text = (0..n)
            .map(|_| *rng.choice(&WORDS))
            .collect::<Vec<_>>()
            .join(" ");
        if let Ok(rule) = autoglobe_fuzzy::parse_rule(&text) {
            let reparsed = autoglobe_fuzzy::parse_rule(&rule.to_string()).unwrap();
            assert_eq!(rule, reparsed);
        }
    });
}
