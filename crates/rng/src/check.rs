//! A miniature seeded property-check harness.
//!
//! The workspace's `tests/properties.rs` suites assert invariants over many
//! generated inputs. `proptest` cannot be fetched in an offline build, and
//! its value here — random exploration plus shrinking — matters less than
//! *reproducibility*: a failure must replay identically on every machine.
//! So this harness is deliberately simple: a fixed number of cases, each
//! driven by an [`Rng`] seeded from `(suite seed, case index)`, with the
//! failing case index and seed printed on panic so a failure can be re-run
//! in isolation.
//!
//! ```
//! use autoglobe_rng::check;
//!
//! check::cases(256, |rng| {
//!     let x = rng.random_range(0.0..=1.0);
//!     assert!(x * x <= x + 1e-12);
//! });
//! ```

use crate::Rng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default seed for [`cases`]; mixed with the case index per case.
pub const DEFAULT_SEED: u64 = 0xA07_0610BE;

/// Run `f` against `n` independently seeded generators ([`DEFAULT_SEED`]).
///
/// Panics propagate after printing the failing case index and seed.
pub fn cases(n: usize, f: impl FnMut(&mut Rng)) {
    cases_seeded(DEFAULT_SEED, n, f);
}

/// Like [`cases`] with an explicit suite seed.
///
/// Case `i` uses `Rng::seed_from_u64(splitmix64-mix(seed, i))`, so a single
/// failing case can be replayed with [`case_rng`] without running the rest.
pub fn cases_seeded(seed: u64, n: usize, mut f: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let mut rng = case_rng(seed, i);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
            eprintln!("property failed at case {i}/{n} (suite seed {seed:#x}); replay with check::case_rng({seed:#x}, {i})");
            resume_unwind(payload);
        }
    }
}

/// The generator used for case `i` of a suite — for replaying one failure.
pub fn case_rng(seed: u64, i: usize) -> Rng {
    let mut s = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    Rng::seed_from_u64(crate::splitmix64(&mut s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_with_distinct_streams() {
        let mut seen = Vec::new();
        cases(16, |rng| seen.push(rng.next_u64()));
        assert_eq!(seen.len(), 16);
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 16, "case streams must be distinct");
    }

    #[test]
    fn case_rng_is_reproducible() {
        let mut a = case_rng(1, 5);
        let mut b = case_rng(1, 5);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = case_rng(1, 6);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        cases(4, |_| panic!("boom"));
    }
}
