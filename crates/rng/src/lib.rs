//! # autoglobe-rng — deterministic, dependency-free random numbers
//!
//! The workspace must build and test **offline**, and the paper's figures
//! must be reproducible **bit for bit** across toolchains and years. Both
//! rule out an external `rand` dependency: crates.io may be unreachable, and
//! `StdRng` explicitly does not promise a stable stream across versions.
//!
//! This crate pins the stream forever: a [`Rng`] is a xoshiro256++ generator
//! (Blackman & Vigna) seeded through SplitMix64 — the same construction the
//! reference implementation recommends — in ~60 lines of portable integer
//! arithmetic. The simulator seeds one per run from `SimConfig::seed`, so a
//! `(scenario, multiplier, hours, seed)` tuple fully determines a simulation
//! no matter which thread of the experiment pool executes it.
//!
//! The [`check`] module is a miniature property-test harness (seeded cases,
//! failure reporting with the case index) used by the `tests/properties.rs`
//! suites that previously required `proptest`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a 64-bit seed into xoshiro's 256-bit state, and handy on
/// its own for deriving per-entity sub-seeds from a master seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random generator with a frozen output stream.
///
/// Not cryptographic — it drives simulations and test-case generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    ///
    /// Distinct seeds yield statistically independent streams, so parallel
    /// experiment runs simply use distinct seeds.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped into `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform `f64` in the closed interval `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn random_range(&mut self, range: std::ops::RangeInclusive<f64>) -> f64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(
            lo <= hi && lo.is_finite() && hi.is_finite(),
            "bad range {lo}..={hi}"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer in `[0, bound)` (multiply-shift reduction).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn random_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "random_below(0)");
        // Lemire's multiply-shift; the modulo bias is < 2^-64 per draw,
        // irrelevant for simulation and far below any test's sensitivity.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// A uniform integer in the closed interval `[lo, hi]`.
    #[inline]
    pub fn random_int(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "bad range {lo}..={hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + ((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    /// Panics if `items` is empty.
    #[inline]
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.random_below(items.len())]
    }

    /// Derive an independent child generator (e.g. one per parallel task).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_frozen() {
        // Reference values computed from the published xoshiro256++ and
        // SplitMix64 algorithms; these must never change — figure
        // reproducibility depends on it.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        // SplitMix64 from state 0 is a published test vector.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_lands_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = rng.random_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&x));
        }
        // Degenerate interval.
        assert_eq!(rng.random_range(0.5..=0.5), 0.5);
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = Rng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn random_below_and_int_cover_their_ranges() {
        let mut rng = Rng::seed_from_u64(17);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_int(10..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let mut parent = Rng::seed_from_u64(42);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
        let mut parent2 = Rng::seed_from_u64(42);
        let mut c1b = parent2.fork();
        c1b.next_u64(); // same position as c1 above
        assert_eq!(c1.next_u64(), c1b.next_u64());
    }
}
