//! # autoglobe-designer — statically optimized service pre-assignment
//!
//! The paper's future work (Section 7): "we plan to develop a landscape
//! designer tool. This tool calculates a statically optimized
//! pre-assignment of all services to improve the dynamic optimization
//! potential of the fuzzy controller." Section 5.3 motivates it: "our
//! controller can improve the capability of current IT-infrastructures if
//! static services like databases and central instances are deployed well."
//!
//! Given the declarative landscape (servers with performance indices and
//! constraints) and per-instance **demand profiles** (CPU demand by
//! time-of-day slot — from the load archive via
//! `autoglobe_forecast`'s daily profiles, or synthetic), the designer
//! computes an initial allocation that minimizes the worst per-server load
//! across the day:
//!
//! 1. **First-fit decreasing**: instances sorted by peak demand, each placed
//!    on the feasible server that minimizes the resulting peak load —
//!    naturally co-locating *complementary* patterns (nightly batch next to
//!    daytime interactive work).
//! 2. **Local search**: single-instance relocations accepted while they
//!    reduce the objective (peak load, tie-broken by load variance).
//!
//! All declarative constraints are honored: exclusivity, minimum
//! performance index, and memory capacity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use autoglobe_landscape::{Landscape, ServerId, ServiceId};
use std::collections::BTreeMap;
use std::fmt;

/// Per-instance CPU demand of one service, by time-of-day slot, in
/// performance-index-1 units.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceDemand {
    /// The service (its constraints are read from the landscape).
    pub service: ServiceId,
    /// How many instances to place.
    pub instances: u32,
    /// Demand per instance, one value per time slot (all demands must use
    /// the same slot count).
    pub profile: Vec<f64>,
}

/// The designer's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// One `(service, server)` pair per placed instance.
    pub assignments: Vec<(ServiceId, ServerId)>,
    /// The worst per-server load over all time slots, in `[0, ∞)`.
    pub peak_load: f64,
    /// Mean load over servers and slots.
    pub mean_load: f64,
}

impl Placement {
    /// Instances per server (for rendering).
    pub fn per_server(&self) -> BTreeMap<ServerId, Vec<ServiceId>> {
        let mut map: BTreeMap<ServerId, Vec<ServiceId>> = BTreeMap::new();
        for &(service, server) in &self.assignments {
            map.entry(server).or_default().push(service);
        }
        map
    }
}

/// Why the designer failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// Demand profiles disagree on slot count or are empty.
    InconsistentProfiles,
    /// A referenced service does not exist in the landscape.
    UnknownService(ServiceId),
    /// No feasible server exists for an instance of this service.
    Infeasible(ServiceId),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::InconsistentProfiles => {
                f.write_str("demand profiles are empty or differ in slot count")
            }
            DesignError::UnknownService(id) => write!(f, "unknown service {id}"),
            DesignError::Infeasible(id) => {
                write!(f, "no feasible server for an instance of {id}")
            }
        }
    }
}

impl std::error::Error for DesignError {}

/// Internal placement state per server.
struct ServerState {
    id: ServerId,
    performance_index: f64,
    memory_free_mb: u64,
    /// Total demand per slot in perf-1 units.
    demand: Vec<f64>,
    /// Distinct services currently placed here (with multiplicity).
    services: Vec<ServiceId>,
    /// An exclusive service occupies the host alone.
    exclusive_resident: bool,
}

impl ServerState {
    fn load_at(&self, slot: usize) -> f64 {
        self.demand[slot] / self.performance_index
    }

    fn peak_with(&self, profile: &[f64]) -> f64 {
        self.demand
            .iter()
            .zip(profile)
            .map(|(d, p)| (d + p) / self.performance_index)
            .fold(0.0, f64::max)
    }
}

/// Compute a statically optimized pre-assignment.
///
/// The landscape supplies servers and service constraints; any existing
/// instances in it are ignored (the designer plans from scratch).
pub fn design(landscape: &Landscape, demands: &[ServiceDemand]) -> Result<Placement, DesignError> {
    let slots = demands
        .first()
        .map(|d| d.profile.len())
        .ok_or(DesignError::InconsistentProfiles)?;
    if slots == 0 || demands.iter().any(|d| d.profile.len() != slots) {
        return Err(DesignError::InconsistentProfiles);
    }

    let mut servers: Vec<ServerState> = landscape
        .server_ids()
        .map(|id| {
            let spec = landscape.server(id).expect("listed server exists");
            ServerState {
                id,
                performance_index: spec.performance_index,
                memory_free_mb: spec.memory_mb,
                demand: vec![0.0; slots],
                services: Vec::new(),
                exclusive_resident: false,
            }
        })
        .collect();

    // One work item per instance, sorted by peak demand descending
    // (first-fit decreasing).
    let mut items: Vec<(ServiceId, &[f64])> = Vec::new();
    for demand in demands {
        landscape
            .service(demand.service)
            .map_err(|_| DesignError::UnknownService(demand.service))?;
        for _ in 0..demand.instances {
            items.push((demand.service, &demand.profile));
        }
    }
    items.sort_by(|a, b| {
        let peak = |p: &[f64]| p.iter().copied().fold(0.0, f64::max);
        peak(b.1)
            .partial_cmp(&peak(a.1))
            .unwrap()
            .then_with(|| a.0.cmp(&b.0))
    });

    let mut assignment: Vec<usize> = Vec::with_capacity(items.len());

    // Phase 1: first-fit decreasing by resulting peak.
    for &(service, profile) in &items {
        let best = servers
            .iter()
            .enumerate()
            .filter(|(_, s)| feasible(landscape, service, s))
            .min_by(|(_, a), (_, b)| {
                a.peak_with(profile)
                    .partial_cmp(&b.peak_with(profile))
                    .unwrap()
                    .then_with(|| a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
            .ok_or(DesignError::Infeasible(service))?;
        place(landscape, &mut servers[best], service, profile);
        assignment.push(best);
    }

    // Phase 2: local search — relocate single instances while the
    // objective (peak, then variance) improves.
    let mut improved = true;
    let mut rounds = 0;
    while improved && rounds < 32 {
        improved = false;
        rounds += 1;
        for idx in 0..assignment.len() {
            let (service, profile) = items[idx];
            let current = assignment[idx];
            let before = objective(&servers);
            let mut best_move: Option<(usize, (f64, f64))> = None;
            for target in 0..servers.len() {
                if target == current {
                    continue;
                }
                unplace(landscape, &mut servers[current], service, profile);
                let ok = feasible(landscape, service, &servers[target]);
                if ok {
                    place(landscape, &mut servers[target], service, profile);
                    let score = objective(&servers);
                    unplace(landscape, &mut servers[target], service, profile);
                    if score_lt(score, before)
                        && best_move.as_ref().is_none_or(|(_, s)| score_lt(score, *s))
                    {
                        best_move = Some((target, score));
                    }
                }
                place(landscape, &mut servers[current], service, profile);
            }
            if let Some((target, _)) = best_move {
                unplace(landscape, &mut servers[current], service, profile);
                place(landscape, &mut servers[target], service, profile);
                assignment[idx] = target;
                improved = true;
            }
        }
    }

    let (peak_load, _) = objective(&servers);
    let mean_load = {
        let mut sum = 0.0;
        let mut n = 0.0;
        for s in &servers {
            for slot in 0..slots {
                sum += s.load_at(slot);
                n += 1.0;
            }
        }
        sum / n
    };
    Ok(Placement {
        assignments: items
            .iter()
            .zip(&assignment)
            .map(|(&(service, _), &i)| (service, servers[i].id))
            .collect(),
        peak_load,
        mean_load,
    })
}

/// `(peak, variance)` of per-server per-slot loads.
fn objective(servers: &[ServerState]) -> (f64, f64) {
    let mut peak: f64 = 0.0;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut n = 0.0;
    for s in servers {
        for slot in 0..s.demand.len() {
            let load = s.load_at(slot);
            peak = peak.max(load);
            sum += load;
            sum_sq += load * load;
            n += 1.0;
        }
    }
    let mean = sum / n;
    (peak, sum_sq / n - mean * mean)
}

/// Lexicographic with a small tolerance on peak so variance can break ties.
fn score_lt(a: (f64, f64), b: (f64, f64)) -> bool {
    if a.0 < b.0 - 1e-9 {
        true
    } else if a.0 > b.0 + 1e-9 {
        false
    } else {
        a.1 < b.1 - 1e-12
    }
}

fn feasible(landscape: &Landscape, service: ServiceId, server: &ServerState) -> bool {
    let spec = landscape.service(service).expect("validated service");
    if let Some(min_idx) = spec.min_performance_index {
        if server.performance_index < min_idx {
            return false;
        }
    }
    if server.exclusive_resident && !server.services.contains(&service) {
        return false;
    }
    if spec.exclusive && server.services.iter().any(|&s| s != service) {
        return false;
    }
    spec.memory_per_instance_mb <= server.memory_free_mb
}

fn place(landscape: &Landscape, server: &mut ServerState, service: ServiceId, profile: &[f64]) {
    let spec = landscape.service(service).expect("validated service");
    for (d, p) in server.demand.iter_mut().zip(profile) {
        *d += p;
    }
    server.memory_free_mb = server
        .memory_free_mb
        .saturating_sub(spec.memory_per_instance_mb);
    server.services.push(service);
    if spec.exclusive {
        server.exclusive_resident = true;
    }
}

fn unplace(landscape: &Landscape, server: &mut ServerState, service: ServiceId, profile: &[f64]) {
    let spec = landscape.service(service).expect("validated service");
    for (d, p) in server.demand.iter_mut().zip(profile) {
        *d -= p;
    }
    server.memory_free_mb += spec.memory_per_instance_mb;
    if let Some(pos) = server.services.iter().position(|&s| s == service) {
        server.services.remove(pos);
    }
    if spec.exclusive && !server.services.contains(&service) {
        server.exclusive_resident = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};

    fn flat(level: f64, slots: usize) -> Vec<f64> {
        vec![level; slots]
    }

    /// Daytime profile: hot 8–18 h, cold otherwise (24 hourly slots).
    fn daytime(level: f64) -> Vec<f64> {
        (0..24)
            .map(|h| if (8..18).contains(&h) { level } else { 0.05 })
            .collect()
    }

    /// Nighttime profile: complement of daytime.
    fn nighttime(level: f64) -> Vec<f64> {
        (0..24)
            .map(|h| if !(6..20).contains(&h) { level } else { 0.05 })
            .collect()
    }

    fn two_blade_landscape() -> (Landscape, ServiceId, ServiceId) {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::fsc_bx300("A")).unwrap();
        l.add_server(ServerSpec::fsc_bx300("B")).unwrap();
        let day = l
            .add_service(ServiceSpec::new("day", ServiceKind::ApplicationServer))
            .unwrap();
        let night = l
            .add_service(ServiceSpec::new("night", ServiceKind::ApplicationServer))
            .unwrap();
        (l, day, night)
    }

    #[test]
    fn complementary_profiles_share_a_host() {
        // Two daytime + two nighttime instances on two equal blades: the
        // optimum pairs one day with one night instance per blade
        // (peak ≈ 0.65) instead of stacking two daytime instances (1.2).
        let (l, day, night) = two_blade_landscape();
        let placement = design(
            &l,
            &[
                ServiceDemand {
                    service: day,
                    instances: 2,
                    profile: daytime(0.6),
                },
                ServiceDemand {
                    service: night,
                    instances: 2,
                    profile: nighttime(0.6),
                },
            ],
        )
        .unwrap();
        assert!(placement.peak_load < 0.7, "peak {}", placement.peak_load);
        for (_, services) in placement.per_server() {
            assert_eq!(services.len(), 2);
            assert!(services.contains(&day) && services.contains(&night));
        }
    }

    #[test]
    fn heavy_services_go_to_powerful_hosts() {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::fsc_bx300("blade")).unwrap();
        let big = l.add_server(ServerSpec::hp_bl40p("big")).unwrap();
        let db = l
            .add_service(ServiceSpec::new("db", ServiceKind::Database))
            .unwrap();
        let app = l
            .add_service(ServiceSpec::new("app", ServiceKind::ApplicationServer))
            .unwrap();
        let placement = design(
            &l,
            &[
                ServiceDemand {
                    service: db,
                    instances: 1,
                    profile: flat(4.0, 24),
                },
                ServiceDemand {
                    service: app,
                    instances: 1,
                    profile: flat(0.5, 24),
                },
            ],
        )
        .unwrap();
        let db_server = placement
            .assignments
            .iter()
            .find(|(s, _)| *s == db)
            .unwrap()
            .1;
        assert_eq!(db_server, big, "the 4-unit database needs the 9-index host");
        assert!(placement.peak_load < 0.8, "peak {}", placement.peak_load);
    }

    #[test]
    fn min_performance_index_is_respected() {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::fsc_bx300("blade")).unwrap();
        let big = l.add_server(ServerSpec::hp_bl40p("big")).unwrap();
        let db = l
            .add_service(
                ServiceSpec::new("db", ServiceKind::Database).with_min_performance_index(5.0),
            )
            .unwrap();
        let placement = design(
            &l,
            &[ServiceDemand {
                service: db,
                instances: 1,
                profile: flat(0.1, 4),
            }],
        )
        .unwrap();
        assert_eq!(placement.assignments[0].1, big);
    }

    #[test]
    fn exclusivity_is_respected() {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::hp_bl40p("big1")).unwrap();
        l.add_server(ServerSpec::hp_bl40p("big2")).unwrap();
        let db = l
            .add_service(ServiceSpec::new("db", ServiceKind::Database).with_exclusive(true))
            .unwrap();
        let app = l
            .add_service(ServiceSpec::new("app", ServiceKind::ApplicationServer))
            .unwrap();
        let placement = design(
            &l,
            &[
                ServiceDemand {
                    service: db,
                    instances: 1,
                    profile: flat(1.0, 8),
                },
                ServiceDemand {
                    service: app,
                    instances: 3,
                    profile: flat(0.3, 8),
                },
            ],
        )
        .unwrap();
        for (_, services) in placement.per_server() {
            if services.contains(&db) {
                assert!(
                    services.iter().all(|&s| s == db),
                    "exclusive db stays alone"
                );
            }
        }
    }

    #[test]
    fn infeasible_demands_are_reported() {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::fsc_bx300("blade")).unwrap();
        let db = l
            .add_service(
                ServiceSpec::new("db", ServiceKind::Database).with_min_performance_index(5.0),
            )
            .unwrap();
        let result = design(
            &l,
            &[ServiceDemand {
                service: db,
                instances: 1,
                profile: flat(0.1, 4),
            }],
        );
        assert_eq!(result.unwrap_err(), DesignError::Infeasible(db));
    }

    #[test]
    fn memory_capacity_limits_colocation() {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::fsc_bx300("a")).unwrap(); // 2048 MB
        l.add_server(ServerSpec::fsc_bx300("b")).unwrap();
        let fat = l
            .add_service(ServiceSpec::new("fat", ServiceKind::Generic).with_memory(1500))
            .unwrap();
        let placement = design(
            &l,
            &[ServiceDemand {
                service: fat,
                instances: 2,
                profile: flat(0.1, 4),
            }],
        )
        .unwrap();
        // 2 × 1500 MB does not fit one 2048 MB blade.
        assert_eq!(placement.per_server().len(), 2);
    }

    #[test]
    fn inconsistent_profiles_are_rejected() {
        let (l, day, night) = two_blade_landscape();
        assert_eq!(design(&l, &[]), Err(DesignError::InconsistentProfiles));
        assert_eq!(
            design(
                &l,
                &[
                    ServiceDemand {
                        service: day,
                        instances: 1,
                        profile: flat(0.1, 4)
                    },
                    ServiceDemand {
                        service: night,
                        instances: 1,
                        profile: flat(0.1, 8)
                    },
                ]
            ),
            Err(DesignError::InconsistentProfiles)
        );
        assert_eq!(
            design(
                &l,
                &[ServiceDemand {
                    service: day,
                    instances: 1,
                    profile: vec![]
                }]
            ),
            Err(DesignError::InconsistentProfiles)
        );
    }

    #[test]
    fn design_is_deterministic() {
        let (l, day, night) = two_blade_landscape();
        let demands = [
            ServiceDemand {
                service: day,
                instances: 2,
                profile: daytime(0.4),
            },
            ServiceDemand {
                service: night,
                instances: 2,
                profile: nighttime(0.4),
            },
        ];
        assert_eq!(design(&l, &demands), design(&l, &demands));
    }

    #[test]
    fn spreads_load_across_the_paper_hardware_mix() {
        let mut l = Landscape::new();
        for i in 0..4 {
            l.add_server(ServerSpec::fsc_bx300(format!("b{i}")))
                .unwrap();
        }
        l.add_server(ServerSpec::fsc_bx600("bx")).unwrap();
        let day = l
            .add_service(ServiceSpec::new("day", ServiceKind::ApplicationServer))
            .unwrap();
        let night = l
            .add_service(ServiceSpec::new("night", ServiceKind::ApplicationServer))
            .unwrap();
        let placement = design(
            &l,
            &[
                ServiceDemand {
                    service: day,
                    instances: 4,
                    profile: daytime(0.5),
                },
                ServiceDemand {
                    service: night,
                    instances: 4,
                    profile: nighttime(0.5),
                },
            ],
        )
        .unwrap();
        assert!(placement.peak_load <= 0.7, "peak {}", placement.peak_load);
        assert!(placement.mean_load > 0.0);
        assert_eq!(placement.assignments.len(), 8);
    }
}
