//! Property-based tests for controller invariants: rankings stay bounded,
//! decisions are deterministic, and executed actions never violate the
//! declarative constraints.

use autoglobe_controller::inputs::{ActionInputs, TableLoads};
use autoglobe_controller::{ActionSelector, AutoGlobeController, RuleBases};
use autoglobe_fuzzy::EngineConfig;
use autoglobe_landscape::{
    check_action, ActionKind, Landscape, ServerSpec, ServiceKind, ServiceSpec,
};
use autoglobe_monitor::{SimTime, Subject, TriggerEvent, TriggerKind};
use proptest::prelude::*;

fn inputs_strategy() -> impl Strategy<Value = ActionInputs> {
    (
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.5f64..=10.0,
        0.0f64..=1.0,
        0.0f64..=1.0,
        0.0f64..=10.0,
        0.0f64..=10.0,
    )
        .prop_map(
            |(cpu, mem, perf, inst, svc, on_server, of_service)| ActionInputs {
                cpu_load: cpu,
                mem_load: mem,
                performance_index: perf,
                instance_load: inst,
                service_load: svc,
                instances_on_server: on_server,
                instances_of_service: of_service,
                instance_demand: inst * perf,
            },
        )
}

fn trigger_strategy() -> impl Strategy<Value = TriggerKind> {
    proptest::sample::select(TriggerKind::ALL.to_vec())
}

proptest! {
    /// Rankings always contain all nine actions with applicabilities in
    /// [0, 1], sorted descending — for any inputs and any trigger.
    #[test]
    fn rankings_are_complete_bounded_and_sorted(
        inputs in inputs_strategy(),
        trigger in trigger_strategy(),
    ) {
        let mut selector = ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let ranked = selector.rank(trigger, "svc", &inputs).unwrap();
        prop_assert_eq!(ranked.len(), 9);
        for pair in ranked.windows(2) {
            prop_assert!(pair[0].applicability >= pair[1].applicability);
        }
        for r in &ranked {
            prop_assert!((0.0..=1.0).contains(&r.applicability));
        }
    }

    /// Liveness at saturation: a fully saturated overload situation always
    /// has a strong remedy (≥ the default applicability threshold by a
    /// wide margin), regardless of host power or instance counts. (Note
    /// that *global* monotonicity in load does not hold, by design: the
    /// medium-load rebalancing rules fade out as loads leave "medium".)
    #[test]
    fn saturated_overload_always_has_a_strong_remedy(
        perf in 0.5f64..=10.0,
        on_server in 0.0f64..=10.0,
        of_service in 0.0f64..=10.0,
        mem in 0.0f64..=1.0,
    ) {
        let mut selector = ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let inputs = ActionInputs {
            cpu_load: 1.0,
            mem_load: mem,
            performance_index: perf,
            instance_load: 1.0,
            service_load: 1.0,
            instances_on_server: on_server,
            instances_of_service: of_service,
            instance_demand: perf,
        };
        for trigger in [TriggerKind::ServiceOverloaded, TriggerKind::ServerOverloaded] {
            let top = selector.rank(trigger, "svc", &inputs).unwrap()[0].applicability;
            prop_assert!(top >= 0.8, "{trigger}: top remedy only {top}");
        }
    }

    /// Whatever the controller executes passes the constraint checker in
    /// the pre-action state — for random landscapes and loads.
    #[test]
    fn executed_actions_always_satisfied_constraints(
        server_loads in proptest::collection::vec(0.0f64..=1.0, 4),
        instance_load in 0.5f64..=1.0,
        allowed_mask in 0u16..512,
    ) {
        let mut landscape = Landscape::new();
        let mut servers = Vec::new();
        for (i, spec) in [
            ServerSpec::fsc_bx300("a"),
            ServerSpec::fsc_bx300("b"),
            ServerSpec::fsc_bx600("c"),
            ServerSpec::hp_bl40p("d"),
        ]
        .into_iter()
        .enumerate()
        {
            let _ = i;
            servers.push(landscape.add_server(spec).unwrap());
        }
        let allowed: Vec<ActionKind> = ActionKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| allowed_mask & (1 << i) != 0)
            .map(|(_, k)| k)
            .collect();
        let service = landscape
            .add_service(
                ServiceSpec::new("svc", ServiceKind::ApplicationServer)
                    .with_instances(1, Some(3))
                    .with_allowed_actions(allowed),
            )
            .unwrap();
        let instance = landscape.start_instance(service, servers[0]).unwrap();

        let mut loads = TableLoads::new();
        for (server, &cpu) in servers.iter().zip(&server_loads) {
            loads.set(Subject::Server(*server), cpu, cpu / 2.0);
        }
        loads.set(Subject::Instance(instance), instance_load, 0.0);
        loads.set(Subject::Service(service), instance_load, 0.0);

        let trigger = TriggerEvent {
            kind: TriggerKind::ServiceOverloaded,
            subject: Subject::Service(service),
            time: SimTime::from_minutes(15),
            average_cpu: instance_load,
            average_mem: 0.3,
        };
        // Check on a clone in the pre-action state.
        let pristine = landscape.clone();
        let mut controller = AutoGlobeController::new();
        let outcome = controller.handle_trigger(&trigger, &mut landscape, &loads, trigger.time);
        for record in &outcome.executed {
            prop_assert!(
                check_action(&pristine, &record.action).is_ok(),
                "executed action {} violates constraints",
                record.action
            );
            // And only allowed kinds execute.
            let spec = pristine.service(service).unwrap();
            prop_assert!(spec.allows(record.action.kind()));
        }
    }

    /// Controller decisions are deterministic: identical state produces
    /// identical actions.
    #[test]
    fn decisions_are_deterministic(
        cpu in 0.7f64..=1.0,
        inst in 0.7f64..=1.0,
    ) {
        let build = || {
            let mut landscape = Landscape::new();
            let a = landscape.add_server(ServerSpec::fsc_bx300("a")).unwrap();
            let b = landscape.add_server(ServerSpec::hp_bl40p("b")).unwrap();
            let svc = landscape
                .add_service(ServiceSpec::new("svc", ServiceKind::ApplicationServer))
                .unwrap();
            let i = landscape.start_instance(svc, a).unwrap();
            let mut loads = TableLoads::new();
            loads.set(Subject::Server(a), cpu, 0.4);
            loads.set(Subject::Server(b), 0.1, 0.1);
            loads.set(Subject::Instance(i), inst, 0.0);
            loads.set(Subject::Service(svc), inst, 0.0);
            let trigger = TriggerEvent {
                kind: TriggerKind::ServerOverloaded,
                subject: Subject::Server(a),
                time: SimTime::from_minutes(20),
                average_cpu: cpu,
                average_mem: 0.4,
            };
            let mut controller = AutoGlobeController::new();
            let outcome = controller.handle_trigger(&trigger, &mut landscape, &loads, trigger.time);
            outcome
                .executed
                .iter()
                .map(|r| r.action.to_string())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(build(), build());
    }
}
