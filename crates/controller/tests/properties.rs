//! Seeded property tests for controller invariants: rankings stay bounded,
//! decisions are deterministic, executed actions never violate the
//! declarative constraints — and overload remedies do not fade out as the
//! overload worsens (the regression that motivated `NOT cpuLoad IS low`).

use autoglobe_controller::inputs::{ActionInputs, TableLoads};
use autoglobe_controller::{ActionSelector, AutoGlobeController, RuleBases};
use autoglobe_fuzzy::EngineConfig;
use autoglobe_landscape::{
    check_action, ActionKind, Landscape, ServerSpec, ServiceKind, ServiceSpec,
};
use autoglobe_monitor::{SimTime, Subject, TriggerEvent, TriggerKind};
use autoglobe_rng::{check, Rng};

fn random_inputs(rng: &mut Rng) -> ActionInputs {
    let inst = rng.random_range(0.0..=1.0);
    let perf = rng.random_range(0.5..=10.0);
    ActionInputs {
        cpu_load: rng.random_range(0.0..=1.0),
        mem_load: rng.random_range(0.0..=1.0),
        performance_index: perf,
        instance_load: inst,
        service_load: rng.random_range(0.0..=1.0),
        instances_on_server: rng.random_range(0.0..=10.0),
        instances_of_service: rng.random_range(0.0..=10.0),
        instance_demand: inst * perf,
    }
}

#[test]
fn rankings_are_complete_bounded_and_sorted() {
    // Rankings always contain all nine actions with applicabilities in
    // [0, 1], sorted descending — for any inputs and any trigger.
    check::cases(192, |rng| {
        let inputs = random_inputs(rng);
        let trigger = *rng.choice(&TriggerKind::ALL);
        let mut selector =
            ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let ranked = selector.rank(trigger, "svc", &inputs).unwrap();
        assert_eq!(ranked.len(), 9);
        for pair in ranked.windows(2) {
            assert!(pair[0].applicability >= pair[1].applicability);
        }
        for r in &ranked {
            assert!((0.0..=1.0).contains(&r.applicability));
        }
    });
}

#[test]
fn saturated_overload_always_has_a_strong_remedy() {
    // Liveness at saturation: a fully saturated overload situation always
    // has a strong remedy (≥ the default applicability threshold by a wide
    // margin), regardless of host power or instance counts.
    check::cases(128, |rng| {
        let perf = rng.random_range(0.5..=10.0);
        let mut selector =
            ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let inputs = ActionInputs {
            cpu_load: 1.0,
            mem_load: rng.random_range(0.0..=1.0),
            performance_index: perf,
            instance_load: 1.0,
            service_load: 1.0,
            instances_on_server: rng.random_range(0.0..=10.0),
            instances_of_service: rng.random_range(0.0..=10.0),
            instance_demand: perf,
        };
        for trigger in [
            TriggerKind::ServiceOverloaded,
            TriggerKind::ServerOverloaded,
        ] {
            let top = selector.rank(trigger, "svc", &inputs).unwrap()[0].applicability;
            assert!(top >= 0.8, "{trigger}: top remedy only {top}");
        }
    });
}

/// Regression (was a checked-in proptest shrink): at `cpu_load ≈ 0.389`,
/// `service_load ≈ 0.892`, raising the host's CPU load by `Δ ≈ 0.2206`
/// used to *drop* the best ServiceOverloaded remedy from 0.47 to 0.27 —
/// below the 0.4 execution threshold — because the bridging scale-out rule
/// was gated on `cpuLoad IS medium`, whose grade collapses on [0.5, 0.7]
/// before `high` picks up. The rule now reads `NOT cpuLoad IS low`
/// (identical on [0, 0.5] since μ_low's falling edge mirrors μ_medium's
/// rising edge) so a hotter host can never weaken the remedy.
#[test]
fn overload_remedy_does_not_fade_as_load_rises() {
    let mut selector = ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
    let base = ActionInputs {
        cpu_load: 0.38899001084580637,
        mem_load: 0.0,
        performance_index: 0.5,
        instance_load: 0.0,
        service_load: 0.8921368697754872,
        instances_on_server: 0.0,
        instances_of_service: 4.558842029512322,
        instance_demand: 0.0,
    };
    let delta = 0.2206226088921194;
    let top = |selector: &mut ActionSelector, inputs: &ActionInputs| {
        selector
            .rank(TriggerKind::ServiceOverloaded, "svc", inputs)
            .unwrap()[0]
            .applicability
    };
    let before = top(&mut selector, &base);
    let after = top(
        &mut selector,
        &ActionInputs {
            cpu_load: base.cpu_load + delta,
            ..base
        },
    );
    assert!(
        after + 1e-9 >= before,
        "raising cpu_load by {delta} dropped the top remedy {before} → {after}"
    );
    // Both sides must stay actionable (≥ the 0.4 default threshold).
    assert!(before >= 0.4, "remedy below execution threshold: {before}");
    assert!(after >= 0.4, "remedy below execution threshold: {after}");
}

#[test]
fn service_overload_remedy_is_monotone_in_cpu_load() {
    // Generalization of the regression above: while a service stays
    // overloaded, sweeping the host's CPU load upward from any starting
    // point must never weaken the best remedy.
    check::cases(96, |rng| {
        let mut selector =
            ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let service_load = rng.random_range(0.75..=1.0);
        let of_service = rng.random_range(0.0..=10.0);
        let perf = rng.random_range(0.5..=10.0);
        let mut last = 0.0f64;
        for step in 0..=20 {
            let cpu = 0.4 + 0.6 * step as f64 / 20.0;
            let inputs = ActionInputs {
                cpu_load: cpu,
                mem_load: 0.0,
                performance_index: perf,
                instance_load: 0.0,
                service_load,
                instances_on_server: 0.0,
                instances_of_service: of_service,
                instance_demand: 0.0,
            };
            let top = selector
                .rank(TriggerKind::ServiceOverloaded, "svc", &inputs)
                .unwrap()[0]
                .applicability;
            assert!(
                top + 1e-9 >= last,
                "remedy fades as cpu rises: {last} → {top} at cpuLoad {cpu} \
                 (serviceLoad {service_load}, instancesOfService {of_service})"
            );
            last = top;
        }
    });
}

#[test]
fn rank_matches_the_per_call_sampling_reference() {
    // `ActionSelector::rank` no longer samples membership functions per
    // invocation (term grids are precomputed at construction and ramp
    // outputs defuzzify in closed form). Its results must still match the
    // legacy pipeline — fuzzify, `infer` with per-call
    // `FuzzySet::from_membership` sampling, leftmost-max defuzzification —
    // to within one grid step, for any inputs and any trigger.
    use autoglobe_controller::variables;
    use autoglobe_fuzzy::{infer, Defuzzifier, InferenceConfig, LinguisticVariable};
    use std::collections::HashMap;

    let step = 1.0 / 1000.0; // universe [0, 1] at DEFAULT_RESOLUTION = 1001
    let in_vars = variables::action_selection_inputs();
    let out_vars: HashMap<String, LinguisticVariable> = variables::action_selection_outputs()
        .into_iter()
        .map(|v| (v.name().to_string(), v))
        .collect();
    check::cases(64, |rng| {
        let inputs = random_inputs(rng);
        let trigger = *rng.choice(&TriggerKind::ALL);
        let mut selector =
            ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let ranked = selector.rank(trigger, "svc", &inputs).unwrap();

        let rules = RuleBases::paper_defaults().for_trigger(trigger, "svc");
        let mut grades = HashMap::new();
        for (name, value) in inputs.measurements() {
            let var = in_vars.iter().find(|v| v.name() == name).unwrap();
            for (term, grade) in var.fuzzify_named(value) {
                grades.insert((name.to_string(), term.to_string()), grade);
            }
        }
        let results = infer(&rules, &grades, &out_vars, InferenceConfig::default()).unwrap();
        for r in &ranked {
            let name = r.kind.variable_name();
            let reference = match results.get(name) {
                Some(res) => Defuzzifier::LeftmostMax.defuzzify(&res.set),
                None => 0.0,
            };
            assert!(
                (r.applicability - reference).abs() <= step + 1e-12,
                "{trigger}/{name}: rank {} vs sampled reference {reference}",
                r.applicability
            );
        }
    });
}

#[test]
fn executed_actions_always_satisfied_constraints() {
    // Whatever the controller executes passes the constraint checker in the
    // pre-action state — for random landscapes and loads.
    check::cases(128, |rng| {
        let server_loads: Vec<f64> = (0..4).map(|_| rng.random_range(0.0..=1.0)).collect();
        let instance_load = rng.random_range(0.5..=1.0);
        let allowed_mask = rng.random_int(0..=511) as u16;
        let mut landscape = Landscape::new();
        let mut servers = Vec::new();
        for spec in [
            ServerSpec::fsc_bx300("a"),
            ServerSpec::fsc_bx300("b"),
            ServerSpec::fsc_bx600("c"),
            ServerSpec::hp_bl40p("d"),
        ] {
            servers.push(landscape.add_server(spec).unwrap());
        }
        let allowed: Vec<ActionKind> = ActionKind::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| allowed_mask & (1 << i) != 0)
            .map(|(_, k)| k)
            .collect();
        let service = landscape
            .add_service(
                ServiceSpec::new("svc", ServiceKind::ApplicationServer)
                    .with_instances(1, Some(3))
                    .with_allowed_actions(allowed),
            )
            .unwrap();
        let instance = landscape.start_instance(service, servers[0]).unwrap();

        let mut loads = TableLoads::new();
        for (server, &cpu) in servers.iter().zip(&server_loads) {
            loads.set(Subject::Server(*server), cpu, cpu / 2.0);
        }
        loads.set(Subject::Instance(instance), instance_load, 0.0);
        loads.set(Subject::Service(service), instance_load, 0.0);

        let trigger = TriggerEvent {
            kind: TriggerKind::ServiceOverloaded,
            subject: Subject::Service(service),
            time: SimTime::from_minutes(15),
            average_cpu: instance_load,
            average_mem: 0.3,
        };
        // Check on a clone in the pre-action state.
        let pristine = landscape.clone();
        let mut controller = AutoGlobeController::new();
        let outcome = controller.handle_trigger(&trigger, &mut landscape, &loads, trigger.time);
        for record in &outcome.executed {
            assert!(
                check_action(&pristine, &record.action).is_ok(),
                "executed action {} violates constraints",
                record.action
            );
            // And only allowed kinds execute.
            let spec = pristine.service(service).unwrap();
            assert!(spec.allows(record.action.kind()));
        }
    });
}

#[test]
fn decisions_are_deterministic() {
    // Controller decisions are deterministic: identical state produces
    // identical actions.
    check::cases(64, |rng| {
        let cpu = rng.random_range(0.7..=1.0);
        let inst = rng.random_range(0.7..=1.0);
        let build = || {
            let mut landscape = Landscape::new();
            let a = landscape.add_server(ServerSpec::fsc_bx300("a")).unwrap();
            let b = landscape.add_server(ServerSpec::hp_bl40p("b")).unwrap();
            let svc = landscape
                .add_service(ServiceSpec::new("svc", ServiceKind::ApplicationServer))
                .unwrap();
            let i = landscape.start_instance(svc, a).unwrap();
            let mut loads = TableLoads::new();
            loads.set(Subject::Server(a), cpu, 0.4);
            loads.set(Subject::Server(b), 0.1, 0.1);
            loads.set(Subject::Instance(i), inst, 0.0);
            loads.set(Subject::Service(svc), inst, 0.0);
            let trigger = TriggerEvent {
                kind: TriggerKind::ServerOverloaded,
                subject: Subject::Server(a),
                time: SimTime::from_minutes(20),
                average_cpu: cpu,
                average_mem: 0.4,
            };
            let mut controller = AutoGlobeController::new();
            let outcome = controller.handle_trigger(&trigger, &mut landscape, &loads, trigger.time);
            outcome
                .executed
                .iter()
                .map(|r| r.action.to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    });
}
