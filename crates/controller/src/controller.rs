//! The AutoGlobe controller: the full interaction of Figure 6.
//!
//! Detection of an exceptional situation → selection of an action (fuzzy
//! controller #1) → if needed, selection of a host (fuzzy controller #2) →
//! constraint verification → execution — with fallback to the next host and
//! then the next action on failure, protection of the involved entities on
//! success, and an administrator alert when nothing sufficiently applicable
//! remains.

use crate::cache::{FastMap, ScoreCache, ScoreCacheStats};
use crate::executor::{DecidedAction, PlannedTrigger};
use crate::index::HostIndex;
use crate::inputs::{ActionInputs, LoadView, ServerInputs};
use crate::log::{ActionRecord, ControllerEvent};
use crate::protection::ProtectionRegistry;
use crate::rulebase::RuleBases;
use crate::selection::{ActionSelector, RankedAction, ServerSelector};
use autoglobe_fuzzy::EngineConfig;
use autoglobe_landscape::{
    check_action, Action, ActionKind, InstanceId, Landscape, ServerId, ServiceId,
};
use autoglobe_monitor::{SimDuration, SimTime, Subject, TriggerEvent, TriggerKind};

/// Tunables of the controller.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Actions below this applicability are discarded — "an
    /// administrator-controlled minimum threshold" (Section 4.1).
    pub min_applicability: f64,
    /// Target hosts scoring below this are not considered (Section 4.2's
    /// "sufficient applicability" for hosts).
    pub min_host_score: f64,
    /// How long involved services and servers are protected after an action
    /// (Section 5.1: 30 minutes).
    pub protection_time: SimDuration,
    /// Fuzzy engine configuration (inference method, defuzzifier).
    pub engine: EngineConfig,
    /// Which evaluation path host scoring takes (batched column-wise
    /// inference by default; the seed scalar path stays selectable).
    pub scoring: ScoringMode,
    /// Epsilon for the incremental scoring layer (batched mode only): a
    /// server whose ten input lanes all moved less than this since its last
    /// evaluation keeps its cached verdict without re-inference. `0.0` (the
    /// default) means the gate is exact input-bit equality, so every result
    /// stays bit-identical to scalar evaluation; a positive value is the
    /// opt-in approximate fast mode. Non-finite or negative values are
    /// treated as `0.0`.
    pub score_epsilon: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            min_applicability: 0.4,
            min_host_score: 0.2,
            protection_time: SimDuration::from_minutes(30),
            engine: EngineConfig::default(),
            scoring: ScoringMode::default(),
            score_epsilon: 0.0,
        }
    }
}

/// Which evaluation path [`AutoGlobeController`] uses to score candidate
/// hosts (see [`ControllerConfig::scoring`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// Column-wise batched fuzzy inference over all eligible candidates at
    /// once, with a cross-trigger pattern memo and the epsilon-gated
    /// incremental layer. Bit-identical to [`ScoringMode::Scalar`] when
    /// [`ControllerConfig::score_epsilon`] is `0.0` (test- and CI-enforced).
    #[default]
    Batched,
    /// One scalar engine run per candidate with a per-call memo — the seed
    /// behavior, kept selectable as the reference for equivalence diffs and
    /// the `triggers_per_second` benchmark baseline.
    Scalar,
}

/// Automatic vs. semi-automatic operation (Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Log and execute immediately.
    #[default]
    Automatic,
    /// Queue actions; a human confirms via
    /// [`AutoGlobeController::confirm_pending`].
    SemiAutomatic,
}

/// An action awaiting administrator confirmation (semi-automatic mode).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingAction {
    /// Identifier for confirm/reject calls.
    pub id: u64,
    /// When it was proposed.
    pub time: SimTime,
    /// The trigger that led to it.
    pub trigger: TriggerKind,
    /// The proposed action.
    pub action: Action,
    /// Fuzzy applicability of the action.
    pub applicability: f64,
    /// Host score, if a target was selected.
    pub host_score: Option<f64>,
}

/// The result of handling one trigger.
#[derive(Debug, Clone, Default)]
pub struct TriggerOutcome {
    /// Actions that were executed (empty in semi-automatic mode).
    pub executed: Vec<ActionRecord>,
    /// Everything logged while handling the trigger (including rejections
    /// and alerts).
    pub events: Vec<ControllerEvent>,
}

impl TriggerOutcome {
    /// True if at least one action was executed.
    pub fn acted(&self) -> bool {
        !self.executed.is_empty()
    }
}

/// One candidate produced by the action-selection phase.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    service: ServiceId,
    /// The instance the action would operate on (None for scale-out/start
    /// style actions that create instances).
    instance: Option<InstanceId>,
    kind: ActionKind,
    applicability: f64,
}

/// The complete AutoGlobe controller.
#[derive(Debug)]
pub struct AutoGlobeController {
    action_selector: ActionSelector,
    server_selector: ServerSelector,
    protection: ProtectionRegistry,
    config: ControllerConfig,
    mode: ExecutionMode,
    log: Vec<ControllerEvent>,
    pending: Vec<PendingAction>,
    next_pending_id: u64,
    /// Cross-trigger fuzzy-score cache (batched mode): bounded, cleared
    /// whenever the landscape revision moves.
    score_cache: ScoreCache,
    /// Cross-trigger [`HostIndex`] memo, keyed by landscape revision. The
    /// index is a pure function of the allocation, and every landscape
    /// mutation bumps the revision, so a revision hit replays the identical
    /// index a fresh build would produce. Same caveat as the score cache:
    /// the controller assumes it is driven against one landscape, which
    /// every supervisor upholds.
    host_index: Option<(u64, HostIndex)>,
    /// Reusable pass-1 buffer of [`Self::rank_hosts_over_batched`]: one
    /// entry per eligible server, ~250 bytes each, so letting each rank
    /// call grow a fresh vector would re-copy hundreds of kilobytes per
    /// trigger. Length is meaningless between calls.
    eligible_scratch: Vec<(ServerId, ServerInputs, [u64; 10], [f64; 10])>,
}

impl AutoGlobeController {
    /// A controller with the paper's default rule bases and configuration.
    pub fn new() -> Self {
        Self::with_rule_bases(RuleBases::paper_defaults(), ControllerConfig::default())
    }

    /// A controller with explicit rule bases and configuration.
    pub fn with_rule_bases(rule_bases: RuleBases, config: ControllerConfig) -> Self {
        AutoGlobeController {
            action_selector: ActionSelector::new(rule_bases.clone(), config.engine),
            server_selector: ServerSelector::new(rule_bases, config.engine),
            protection: ProtectionRegistry::new(),
            config,
            mode: ExecutionMode::Automatic,
            log: Vec::new(),
            pending: Vec::new(),
            next_pending_id: 0,
            score_cache: ScoreCache::default(),
            host_index: None,
            eligible_scratch: Vec::new(),
        }
    }

    /// Counters and sizes of the cross-trigger score cache (batched mode).
    pub fn score_cache_stats(&self) -> ScoreCacheStats {
        self.score_cache.stats()
    }

    /// Flush the cross-trigger score cache. Invalidation on landscape
    /// changes is automatic (revision-tracked); call this after swapping
    /// rule bases or engine configuration out from under the controller.
    pub fn clear_score_cache(&mut self) {
        self.score_cache.clear();
    }

    /// Switch between automatic and semi-automatic operation.
    pub fn set_mode(&mut self, mode: ExecutionMode) {
        self.mode = mode;
    }

    /// The current execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The controller configuration.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// The protection registry (read access for consoles and tests).
    pub fn protection(&self) -> &ProtectionRegistry {
        &self.protection
    }

    /// Manually protect a subject (administrator override).
    pub fn protect(&mut self, subject: Subject, now: SimTime, duration: SimDuration) {
        self.protection.protect(subject, now, duration);
    }

    /// The full event log, oldest first.
    pub fn log(&self) -> &[ControllerEvent] {
        &self.log
    }

    /// Drain the event log (consoles poll this).
    pub fn drain_log(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.log)
    }

    /// Actions awaiting confirmation (semi-automatic mode).
    pub fn pending(&self) -> &[PendingAction] {
        &self.pending
    }

    /// Append to the event log (used by the recovery path).
    pub(crate) fn push_log(&mut self, event: ControllerEvent) {
        self.log.push(event);
    }

    /// Mutable access to the server-selection controller (used by the
    /// recovery path to score restart targets).
    pub(crate) fn server_selector_mut(&mut self) -> &mut ServerSelector {
        &mut self.server_selector
    }

    /// Handle one confirmed trigger: the complete Figure 6 flow.
    pub fn handle_trigger(
        &mut self,
        event: &TriggerEvent,
        landscape: &mut Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> TriggerOutcome {
        let mut outcome = TriggerOutcome::default();
        self.protection.expire(now);

        // Protected subjects are excluded from further actions.
        if let Some(until) = self.protection.protected_until(event.subject, now) {
            let e = ControllerEvent::SuppressedByProtection {
                time: now,
                trigger: event.kind,
                protected_until: until,
            };
            self.log.push(e.clone());
            outcome.events.push(e);
            return outcome;
        }

        // Phase 1: action selection (Figure 7) — per considered service.
        let index = self.take_index(landscape);
        let mut candidates = self.collect_candidates(event, landscape, loads, now, &index);
        self.put_index(landscape, index);

        // "Afterwards, the actions are sorted by their applicability in
        // descending order. Actions whose applicability value is lower than
        // an administrator-controlled minimum threshold are discarded."
        candidates.retain(|c| c.applicability >= self.config.min_applicability);
        candidates.sort_unstable_by(candidate_order);

        if candidates.is_empty() {
            // An unresolvable *overload* needs the administrator; an idle
            // subject with nothing worth consolidating is normal operation.
            if event.kind.is_overload() {
                let e = ControllerEvent::AdministratorAlert {
                    time: now,
                    trigger: event.kind,
                    message: format!(
                        "no action with applicability ≥ {:.0}% for {}",
                        self.config.min_applicability * 100.0,
                        event.subject
                    ),
                };
                self.log.push(e.clone());
                outcome.events.push(e);
            }
            return outcome;
        }

        // Phase 2: try candidates best-first; per candidate, try hosts
        // best-first; first success wins.
        for candidate in &candidates {
            if self.try_candidate(candidate, event, landscape, loads, now, &mut outcome) {
                return outcome;
            }
        }

        if event.kind.is_overload() {
            let e = ControllerEvent::AdministratorAlert {
                time: now,
                trigger: event.kind,
                message: format!(
                    "all {} candidate action(s) failed verification for {}",
                    candidates.len(),
                    event.subject
                ),
            };
            self.log.push(e.clone());
            outcome.events.push(e);
        }
        outcome
    }

    /// Plan one confirmed trigger without touching the landscape: the
    /// complete Figure 6 flow up to — but not including — execution. The
    /// winning candidate is returned as a [`DecidedAction`] (carrying the
    /// remaining ranked hosts as retry alternates) for an
    /// [`crate::ActionExecutor`] to carry out asynchronously.
    ///
    /// Planning mirrors [`AutoGlobeController::handle_trigger`] exactly —
    /// same protection handling, same candidate ordering, same constraint
    /// verification, same log messages — so that a zero-latency, infallible
    /// executor reproduces the synchronous path bit for bit.
    pub fn plan_trigger(
        &mut self,
        event: &TriggerEvent,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> PlannedTrigger {
        let mut planned = PlannedTrigger::default();
        self.protection.expire(now);

        if let Some(until) = self.protection.protected_until(event.subject, now) {
            let e = ControllerEvent::SuppressedByProtection {
                time: now,
                trigger: event.kind,
                protected_until: until,
            };
            self.log.push(e.clone());
            planned.events.push(e);
            return planned;
        }

        let index = self.take_index(landscape);
        let mut candidates = self.collect_candidates(event, landscape, loads, now, &index);
        self.put_index(landscape, index);
        candidates.retain(|c| c.applicability >= self.config.min_applicability);
        candidates.sort_unstable_by(candidate_order);

        if candidates.is_empty() {
            if event.kind.is_overload() {
                let e = ControllerEvent::AdministratorAlert {
                    time: now,
                    trigger: event.kind,
                    message: format!(
                        "no action with applicability ≥ {:.0}% for {}",
                        self.config.min_applicability * 100.0,
                        event.subject
                    ),
                };
                self.log.push(e.clone());
                planned.events.push(e);
            }
            return planned;
        }

        for candidate in &candidates {
            if let Some(decided) =
                self.plan_candidate(candidate, event, landscape, loads, now, &mut planned.events)
            {
                planned.decided = Some(decided);
                return planned;
            }
        }

        if event.kind.is_overload() {
            let e = ControllerEvent::AdministratorAlert {
                time: now,
                trigger: event.kind,
                message: format!(
                    "all {} candidate action(s) failed verification for {}",
                    candidates.len(),
                    event.subject
                ),
            };
            self.log.push(e.clone());
            planned.events.push(e);
        }
        planned
    }

    /// Planning counterpart of `try_candidate`: verify without applying.
    fn plan_candidate(
        &mut self,
        candidate: &Candidate,
        event: &TriggerEvent,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        events: &mut Vec<ControllerEvent>,
    ) -> Option<DecidedAction> {
        let service_name = landscape.service(candidate.service).ok()?.name.clone();

        if candidate.kind.needs_target() {
            let hosts = self.rank_hosts(candidate, &service_name, landscape, loads, now);
            for (idx, &(host, score)) in hosts.iter().enumerate() {
                let Some(action) = concretize(candidate, host) else {
                    continue;
                };
                match check_action(landscape, &action) {
                    Ok(()) => {
                        return Some(DecidedAction {
                            action,
                            trigger: event.kind,
                            applicability: candidate.applicability,
                            host_score: Some(score),
                            alternates: hosts[idx + 1..].to_vec(),
                        });
                    }
                    Err(violation) => {
                        // Same wrapping as `Landscape::apply` reports, so
                        // planned and synchronous logs match byte for byte.
                        let e = ControllerEvent::Rejected {
                            time: now,
                            action,
                            reason: autoglobe_landscape::LandscapeError::from(violation)
                                .to_string(),
                        };
                        self.log.push(e.clone());
                        events.push(e);
                    }
                }
            }
            None
        } else {
            let action = concretize(candidate, ServerId::new(0))?;
            match check_action(landscape, &action) {
                Ok(()) => Some(DecidedAction {
                    action,
                    trigger: event.kind,
                    applicability: candidate.applicability,
                    host_score: None,
                    alternates: Vec::new(),
                }),
                Err(violation) => {
                    let e = ControllerEvent::Rejected {
                        time: now,
                        action,
                        reason: autoglobe_landscape::LandscapeError::from(violation).to_string(),
                    };
                    self.log.push(e.clone());
                    events.push(e);
                    None
                }
            }
        }
    }

    /// Gather ranked candidates for the trigger, per Figure 7: a service
    /// trigger considers only that service; a server trigger runs the fuzzy
    /// controller for each service on the host and merges the action lists.
    fn collect_candidates(
        &mut self,
        event: &TriggerEvent,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        index: &HostIndex,
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        // Protected services are "excluded from further actions" (Section
        // 4): they produce no candidates even when another subject's
        // trigger would otherwise involve them.
        let consider = |this: &mut Self,
                        service: ServiceId,
                        instance: InstanceId,
                        out: &mut Vec<Candidate>| {
            if this.protection.is_protected(Subject::Service(service), now) {
                return;
            }
            this.rank_service(event.kind, landscape, loads, service, instance, index, out);
        };
        match event.subject {
            Subject::Service(service) => {
                let prefer = None;
                if let Some(instance) =
                    representative_instance(landscape, index, loads, service, event.kind, prefer)
                {
                    consider(self, service, instance, &mut out);
                }
            }
            Subject::Instance(instance) => {
                if let Ok(inst) = landscape.instance(instance) {
                    let service = inst.service;
                    consider(self, service, instance, &mut out);
                }
            }
            Subject::Server(server) => {
                // One fuzzy evaluation per service on the host.
                let mut seen = std::collections::BTreeSet::new();
                for &instance_id in index.instances_on(server) {
                    let Ok(inst) = landscape.instance(instance_id) else {
                        continue;
                    };
                    if seen.insert(inst.service) {
                        consider(self, inst.service, instance_id, &mut out);
                    }
                }
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn rank_service(
        &mut self,
        trigger: TriggerKind,
        landscape: &Landscape,
        loads: &dyn LoadView,
        service: ServiceId,
        instance: InstanceId,
        index: &HostIndex,
        out: &mut Vec<Candidate>,
    ) {
        let Ok(spec) = landscape.service(service) else {
            return;
        };
        let Some(inputs) = gather_action_inputs(landscape, index, loads, service, instance) else {
            return;
        };
        let Ok(ranked) = self.action_selector.rank(trigger, &spec.name, &inputs) else {
            return;
        };
        for RankedAction {
            kind,
            applicability,
        } in ranked
        {
            // "The fuzzy controller only considers actions that do not
            // violate any given constraint" — the declarative allowed-action
            // sets filter here; stateful constraints are re-verified at
            // execution time.
            if applicability <= 0.0 || !spec.allows(kind) {
                continue;
            }
            let instance_for_action = if kind_uses_instance(kind) {
                Some(instance)
            } else {
                None
            };
            out.push(Candidate {
                service,
                instance: instance_for_action,
                kind,
                applicability,
            });
        }
    }

    /// Try to execute one candidate; returns true if an action was executed
    /// (or queued in semi-automatic mode).
    fn try_candidate(
        &mut self,
        candidate: &Candidate,
        event: &TriggerEvent,
        landscape: &mut Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        outcome: &mut TriggerOutcome,
    ) -> bool {
        let service_name = match landscape.service(candidate.service) {
            Ok(s) => s.name.clone(),
            Err(_) => return false,
        };

        if candidate.kind.needs_target() {
            // Phase 2b: server selection.
            let hosts = self.rank_hosts(candidate, &service_name, landscape, loads, now);
            for (host, score) in hosts {
                let Some(action) = concretize(candidate, host) else {
                    continue;
                };
                if self.execute(
                    &action,
                    event,
                    candidate.applicability,
                    Some(score),
                    landscape,
                    now,
                    outcome,
                ) {
                    return true;
                }
            }
            false
        } else {
            let Some(action) = concretize(candidate, ServerId::new(0)) else {
                return false;
            };
            self.execute(
                &action,
                event,
                candidate.applicability,
                None,
                landscape,
                now,
                outcome,
            )
        }
    }

    /// Score all eligible hosts for a candidate, best first. Runs the
    /// indexed path: one [`HostIndex`] build (O(instances + servers)), then
    /// constant-time constraint prefilters and memoized fuzzy scoring per
    /// server — bit-identical to the exhaustive scan (see
    /// [`AutoGlobeController::rank_hosts_exhaustive`]) but sublinear per
    /// trigger once the idle pool dominates.
    fn rank_hosts(
        &mut self,
        candidate: &Candidate,
        service_name: &str,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Vec<(ServerId, f64)> {
        let index = self.take_index(landscape);
        let ranked = self.rank_hosts_over(candidate, service_name, landscape, loads, now, &index);
        self.put_index(landscape, index);
        ranked
    }

    /// The revision-keyed [`HostIndex`] memo, take side: reuse the cached
    /// index while the allocation is unchanged; any landscape mutation —
    /// including one executed between two candidates of the same trigger —
    /// bumps the revision and forces a rebuild.
    fn take_index(&mut self, landscape: &Landscape) -> HostIndex {
        match self.host_index.take() {
            Some((cached, index)) if cached == landscape.revision() => index,
            // A stale index still owns every buffer the rebuild needs.
            Some((_, mut stale)) => {
                stale.rebuild(landscape);
                stale
            }
            None => HostIndex::build(landscape),
        }
    }

    /// Put side of the memo: re-key the index at the landscape's current
    /// revision. Callers never mutate the landscape while holding the index,
    /// so the revision read here is the one the index was valid for.
    fn put_index(&mut self, landscape: &Landscape, index: HostIndex) {
        self.host_index = Some((landscape.revision(), index));
    }

    /// The indexed ranking pass over a prebuilt [`HostIndex`], dispatched
    /// by [`ControllerConfig::scoring`]. Both paths produce bit-identical
    /// rankings (at `score_epsilon = 0`); batched is the production default.
    fn rank_hosts_over(
        &mut self,
        candidate: &Candidate,
        service_name: &str,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        index: &HostIndex,
    ) -> Vec<(ServerId, f64)> {
        match self.config.scoring {
            ScoringMode::Batched => {
                self.rank_hosts_over_batched(candidate, service_name, landscape, loads, now, index)
            }
            ScoringMode::Scalar => {
                self.rank_hosts_over_scalar(candidate, service_name, landscape, loads, now, index)
            }
        }
    }

    /// Batched ranking: one constraint-prefilter pass gathering the dense
    /// input lanes of every eligible server, cache resolution against the
    /// cross-trigger pattern memo and the epsilon-gated incremental layer,
    /// then a **single** column-wise engine cycle
    /// ([`ServerSelector::score_batch`]) over the distinct uncached input
    /// patterns — no per-server engine call, no per-server `HashMap`.
    fn rank_hosts_over_batched(
        &mut self,
        candidate: &Candidate,
        service_name: &str,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        index: &HostIndex,
    ) -> Vec<(ServerId, f64)> {
        self.score_cache.sync_revision(landscape.revision());
        let slot = {
            let key = self
                .server_selector
                .engine_key(candidate.kind, service_name);
            self.score_cache.engine_slot(candidate.kind, key)
        };
        let epsilon = if self.config.score_epsilon.is_finite() && self.config.score_epsilon > 0.0 {
            self.config.score_epsilon
        } else {
            0.0
        };

        let current_host = candidate
            .instance
            .and_then(|i| landscape.instance(i).ok().map(|inst| inst.server));
        let current_index = current_host
            .and_then(|h| landscape.server(h).ok())
            .map(|s| s.performance_index);

        // Pass 1: constraint prefilters and dense lane gather — identical
        // filters, in identical order, to the scalar path; no engine calls.
        // The protection set is snapshotted once (it is a handful of
        // recently rearranged subjects) so the per-server probe is a
        // binary search of a tiny array, not a tree walk.
        let protected = self.protection.protected_servers(now);
        let mut eligible = std::mem::take(&mut self.eligible_scratch);
        eligible.clear();
        eligible.reserve(landscape.num_servers());
        for server in landscape.server_ids() {
            if protected.binary_search(&server).is_ok() {
                continue;
            }
            if Some(server) == current_host {
                continue;
            }
            if !index.can_host(landscape, candidate.service, server) {
                continue;
            }
            if candidate.kind == ActionKind::ScaleOut
                && index.runs_service(server, candidate.service)
            {
                continue;
            }
            let Ok(spec) = landscape.server(server) else {
                continue;
            };
            if let Some(from_idx) = current_index {
                match candidate.kind {
                    ActionKind::ScaleUp if spec.performance_index <= from_idx => continue,
                    ActionKind::ScaleDown if spec.performance_index >= from_idx => continue,
                    _ => {}
                }
            }
            let inputs = ServerInputs {
                cpu_load: loads.cpu(Subject::Server(server)),
                mem_load: loads.mem(Subject::Server(server)),
                instances_on_server: index.instance_count_on(server) as f64,
                performance_index: spec.performance_index,
                number_of_cpus: spec.num_cpus as f64,
                cpu_clock: spec.cpu_clock_mhz as f64,
                cpu_cache: spec.cpu_cache_kb as f64,
                memory: spec.memory_mb as f64,
                swap_space: spec.swap_mb as f64,
                temp_space: spec.temp_space_mb as f64,
            };
            let mut bits = [0u64; 10];
            let mut lanes = [0.0f64; 10];
            for (i, (_, value)) in inputs.measurements().into_iter().enumerate() {
                bits[i] = value.to_bits();
                lanes[i] = value;
            }
            // The engine rejects non-finite measurements and the scalar path
            // skips such servers on that error; skip them up front here so
            // one poisoned lane cannot abort the whole batch.
            if lanes.iter().any(|v| !v.is_finite()) {
                continue;
            }
            eligible.push((server, inputs, bits, lanes));
        }

        // Pass 2: resolve from the caches; collect the first occurrence of
        // each uncached distinct pattern as a batch row. `refresh` is false
        // for incremental hits — a reused verdict must not re-anchor the
        // epsilon gate, or slow drift would never trigger re-evaluation.
        let mut resolved: Vec<Option<(f64, bool)>> = vec![None; eligible.len()];
        let mut batch_rows: Vec<usize> = Vec::new();
        let mut pending: FastMap<[u64; 10], Vec<usize>> = FastMap::default();
        for (i, (server, _, bits, lanes)) in eligible.iter().enumerate() {
            if let Some(score) = self
                .score_cache
                .incremental_lookup(slot, *server, bits, lanes, epsilon)
            {
                resolved[i] = Some((score, false));
                continue;
            }
            if let Some(score) = self.score_cache.pattern_lookup(slot, bits) {
                resolved[i] = Some((score, true));
                continue;
            }
            pending
                .entry(*bits)
                .or_insert_with(|| {
                    batch_rows.push(i);
                    Vec::new()
                })
                .push(i);
        }
        if !batch_rows.is_empty() {
            let rows: Vec<ServerInputs> = batch_rows.iter().map(|&i| eligible[i].1).collect();
            // On an engine failure (uniform across one rule base's inputs)
            // every unresolved server stays skipped, exactly as the scalar
            // path's per-server skip-on-error behaves.
            if let Ok(scores) =
                self.server_selector
                    .score_batch(candidate.kind, service_name, &rows)
            {
                for (&i, score) in batch_rows.iter().zip(scores) {
                    self.score_cache.insert_pattern(slot, eligible[i].2, score);
                    if let Some(waiters) = pending.get(&eligible[i].2) {
                        for &j in waiters {
                            resolved[j] = Some((score, true));
                        }
                    }
                }
            }
        }

        // Pass 3: anchor fresh verdicts for the epsilon gate and apply the
        // administrator threshold.
        let mut scored = Vec::new();
        for (i, (server, _, bits, lanes)) in eligible.iter().enumerate() {
            let Some((score, refresh)) = resolved[i] else {
                continue;
            };
            if refresh {
                self.score_cache
                    .store_verdict(slot, *server, *bits, *lanes, score);
            }
            if score >= self.config.min_host_score {
                scored.push((*server, score));
            }
        }
        scored.sort_unstable_by(host_order);
        self.eligible_scratch = eligible;
        scored
    }

    /// The seed scalar ranking pass: one engine run per candidate server
    /// with a per-call pattern memo. Kept verbatim as the reference
    /// [`ScoringMode::Scalar`] path.
    fn rank_hosts_over_scalar(
        &mut self,
        candidate: &Candidate,
        service_name: &str,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        index: &HostIndex,
    ) -> Vec<(ServerId, f64)> {
        let current_host = candidate
            .instance
            .and_then(|i| landscape.instance(i).ok().map(|inst| inst.server));
        let current_index = current_host
            .and_then(|h| landscape.server(h).ok())
            .map(|s| s.performance_index);

        // The fuzzy score is a pure function of the ten crisp inputs, and a
        // large pool is mostly identical idle servers (same tier, same zero
        // load) — memoizing on the exact input bit patterns collapses those
        // to one engine evaluation per distinct tier/load combination.
        let mut memo: FastMap<[u64; 10], f64> = FastMap::default();

        let mut scored = Vec::new();
        for server in landscape.server_ids() {
            // "Initially, these are all servers on which an instance of the
            // service can be started and that are not in protection mode."
            if self.protection.is_protected(Subject::Server(server), now) {
                continue;
            }
            if Some(server) == current_host {
                continue;
            }
            if !index.can_host(landscape, candidate.service, server) {
                continue;
            }
            // A scale-out onto a host that already runs the service would
            // split the same saturated CPU without adding capacity.
            if candidate.kind == ActionKind::ScaleOut
                && index.runs_service(server, candidate.service)
            {
                continue;
            }
            // Power direction for scale-up/down (cheap pre-filter; the
            // constraint checker enforces it again at execution).
            let Ok(spec) = landscape.server(server) else {
                continue;
            };
            if let Some(from_idx) = current_index {
                match candidate.kind {
                    ActionKind::ScaleUp if spec.performance_index <= from_idx => continue,
                    ActionKind::ScaleDown if spec.performance_index >= from_idx => continue,
                    _ => {}
                }
            }
            // Field-for-field what `ServerInputs::gather` produces, with the
            // instance count read from the index instead of a table scan.
            let inputs = ServerInputs {
                cpu_load: loads.cpu(Subject::Server(server)),
                mem_load: loads.mem(Subject::Server(server)),
                instances_on_server: index.instance_count_on(server) as f64,
                performance_index: spec.performance_index,
                number_of_cpus: spec.num_cpus as f64,
                cpu_clock: spec.cpu_clock_mhz as f64,
                cpu_cache: spec.cpu_cache_kb as f64,
                memory: spec.memory_mb as f64,
                swap_space: spec.swap_mb as f64,
                temp_space: spec.temp_space_mb as f64,
            };
            let mut key = [0u64; 10];
            for (slot, (_, value)) in key.iter_mut().zip(inputs.measurements()) {
                *slot = value.to_bits();
            }
            let score = match memo.get(&key) {
                Some(&score) => score,
                None => {
                    let Ok(score) =
                        self.server_selector
                            .score(candidate.kind, service_name, &inputs)
                    else {
                        continue;
                    };
                    memo.insert(key, score);
                    score
                }
            };
            if score >= self.config.min_host_score {
                scored.push((server, score));
            }
        }
        scored.sort_unstable_by(host_order);
        scored
    }

    /// Reference implementation of host ranking: the original exhaustive
    /// pass, one full-instance-table scan per server. Kept verbatim as the
    /// oracle the indexed path is proven against.
    fn rank_hosts_scan(
        &mut self,
        candidate: &Candidate,
        service_name: &str,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Vec<(ServerId, f64)> {
        let current_host = candidate
            .instance
            .and_then(|i| landscape.instance(i).ok().map(|inst| inst.server));
        let current_index = current_host
            .and_then(|h| landscape.server(h).ok())
            .map(|s| s.performance_index);

        let mut scored = Vec::new();
        for server in landscape.server_ids() {
            if self.protection.is_protected(Subject::Server(server), now) {
                continue;
            }
            if Some(server) == current_host {
                continue;
            }
            if !landscape.can_host(candidate.service, server) {
                continue;
            }
            if candidate.kind == ActionKind::ScaleOut
                && landscape.instances_on(server).iter().any(|i| {
                    landscape.instance(*i).map(|inst| inst.service) == Ok(candidate.service)
                })
            {
                continue;
            }
            if let (Some(from_idx), Ok(spec)) = (current_index, landscape.server(server)) {
                match candidate.kind {
                    ActionKind::ScaleUp if spec.performance_index <= from_idx => continue,
                    ActionKind::ScaleDown if spec.performance_index >= from_idx => continue,
                    _ => {}
                }
            }
            let Some(inputs) = ServerInputs::gather(landscape, loads, server) else {
                continue;
            };
            let Ok(score) = self
                .server_selector
                .score(candidate.kind, service_name, &inputs)
            else {
                continue;
            };
            if score >= self.config.min_host_score {
                scored.push((server, score));
            }
        }
        scored.sort_unstable_by(host_order);
        scored
    }

    /// Rank target hosts for a prospective `kind` action on `service`
    /// through the indexed fast path — the production route taken by
    /// [`AutoGlobeController::handle_trigger`] /
    /// [`AutoGlobeController::plan_trigger`]. Public so benchmarks and
    /// tests can time and compare host selection in isolation;
    /// `instance` is the instance the action would operate on, if any.
    pub fn rank_hosts_indexed(
        &mut self,
        kind: ActionKind,
        service: ServiceId,
        instance: Option<InstanceId>,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Vec<(ServerId, f64)> {
        let Ok(service_name) = landscape.service(service).map(|s| s.name.clone()) else {
            return Vec::new();
        };
        let candidate = Candidate {
            service,
            instance,
            kind,
            applicability: 1.0,
        };
        self.rank_hosts(&candidate, &service_name, landscape, loads, now)
    }

    /// Rank target hosts through the exhaustive reference scan. Exists to
    /// prove, bit for bit, that the index changes nothing: for any
    /// landscape, loads and action this returns exactly what
    /// [`AutoGlobeController::rank_hosts_indexed`] returns — same hosts,
    /// same order, same score bits.
    pub fn rank_hosts_exhaustive(
        &mut self,
        kind: ActionKind,
        service: ServiceId,
        instance: Option<InstanceId>,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Vec<(ServerId, f64)> {
        let Ok(service_name) = landscape.service(service).map(|s| s.name.clone()) else {
            return Vec::new();
        };
        let candidate = Candidate {
            service,
            instance,
            kind,
            applicability: 1.0,
        };
        self.rank_hosts_scan(&candidate, &service_name, landscape, loads, now)
    }

    /// Verify and execute (or queue) one concrete action.
    #[allow(clippy::too_many_arguments)]
    fn execute(
        &mut self,
        action: &Action,
        event: &TriggerEvent,
        applicability: f64,
        host_score: Option<f64>,
        landscape: &mut Landscape,
        now: SimTime,
        outcome: &mut TriggerOutcome,
    ) -> bool {
        if self.mode == ExecutionMode::SemiAutomatic {
            // Verify without executing, then queue.
            if let Err(violation) = check_action(landscape, action) {
                let e = ControllerEvent::Rejected {
                    time: now,
                    action: *action,
                    reason: violation.to_string(),
                };
                self.log.push(e.clone());
                outcome.events.push(e);
                return false;
            }
            let pending = PendingAction {
                id: self.next_pending_id,
                time: now,
                trigger: event.kind,
                action: *action,
                applicability,
                host_score,
            };
            self.next_pending_id += 1;
            let e = ControllerEvent::PendingConfirmation {
                time: now,
                action: *action,
            };
            self.pending.push(pending);
            self.log.push(e.clone());
            outcome.events.push(e);
            return true;
        }

        match landscape.apply(action) {
            Ok(applied) => {
                self.protect_involved(action, landscape, now);
                let record = ActionRecord {
                    time: now,
                    trigger: event.kind,
                    action: *action,
                    applicability,
                    host_score,
                    outcome: applied,
                };
                let e = ControllerEvent::Executed(record.clone());
                self.log.push(e.clone());
                outcome.events.push(e);
                outcome.executed.push(record);
                true
            }
            Err(err) => {
                let e = ControllerEvent::Rejected {
                    time: now,
                    action: *action,
                    reason: err.to_string(),
                };
                self.log.push(e.clone());
                outcome.events.push(e);
                false
            }
        }
    }

    /// Protect the service and servers involved in an executed action (also
    /// used by the executor after an asynchronous attempt succeeds, and by
    /// a control-plane replica replaying an owner-executed record so its
    /// protection registry matches the owner's).
    pub fn protect_involved(&mut self, action: &Action, landscape: &Landscape, now: SimTime) {
        let d = self.config.protection_time;
        if let Some(target) = action.target() {
            self.protection.protect(Subject::Server(target), now, d);
        }
        let service = match *action {
            Action::Start { service, .. }
            | Action::ScaleOut { service, .. }
            | Action::IncreasePriority { service }
            | Action::ReducePriority { service } => Some(service),
            Action::Stop { instance }
            | Action::ScaleIn { instance }
            | Action::ScaleUp { instance, .. }
            | Action::ScaleDown { instance, .. }
            | Action::Move { instance, .. } => {
                // The instance may already be gone (stop/scale-in) — protect
                // its host if it still resolves.
                if let Ok(inst) = landscape.instance(instance) {
                    self.protection
                        .protect(Subject::Server(inst.server), now, d);
                    Some(inst.service)
                } else {
                    None
                }
            }
        };
        if let Some(svc) = service {
            self.protection.protect(Subject::Service(svc), now, d);
        }
    }

    /// Confirm a pending action (semi-automatic mode). Constraints are
    /// re-verified — the landscape may have changed since the proposal.
    pub fn confirm_pending(
        &mut self,
        id: u64,
        landscape: &mut Landscape,
        now: SimTime,
    ) -> Option<ActionRecord> {
        let idx = self.pending.iter().position(|p| p.id == id)?;
        let pending = self.pending.remove(idx);
        match landscape.apply(&pending.action) {
            Ok(applied) => {
                self.protect_involved(&pending.action, landscape, now);
                let record = ActionRecord {
                    time: now,
                    trigger: pending.trigger,
                    action: pending.action,
                    applicability: pending.applicability,
                    host_score: pending.host_score,
                    outcome: applied,
                };
                self.log.push(ControllerEvent::Executed(record.clone()));
                Some(record)
            }
            Err(err) => {
                self.log.push(ControllerEvent::Rejected {
                    time: now,
                    action: pending.action,
                    reason: err.to_string(),
                });
                None
            }
        }
    }

    /// Reject a pending action (semi-automatic mode).
    pub fn reject_pending(&mut self, id: u64) -> bool {
        let before = self.pending.len();
        self.pending.retain(|p| p.id != id);
        self.pending.len() != before
    }
}

impl Default for AutoGlobeController {
    fn default() -> Self {
        AutoGlobeController::new()
    }
}

/// Total order over candidates: applicability descending, then service id,
/// then action name — a deterministic key with no `partial_cmp().unwrap()`
/// panic path. Equal-applicability candidates from `ActionSelector::rank`
/// arrive sorted by (service, action name) already, so this reproduces the
/// old stable sort's output exactly while tolerating NaN-adjacent scores.
fn candidate_order(a: &Candidate, b: &Candidate) -> std::cmp::Ordering {
    b.applicability
        .total_cmp(&a.applicability)
        .then_with(|| a.service.cmp(&b.service))
        .then_with(|| a.kind.variable_name().cmp(b.kind.variable_name()))
}

/// Total order over scored hosts: score descending, server id ascending.
fn host_order(a: &(ServerId, f64), b: &(ServerId, f64)) -> std::cmp::Ordering {
    b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
}

/// Whether a kind operates on an existing instance.
fn kind_uses_instance(kind: ActionKind) -> bool {
    matches!(
        kind,
        ActionKind::Stop
            | ActionKind::ScaleIn
            | ActionKind::ScaleUp
            | ActionKind::ScaleDown
            | ActionKind::Move
    )
}

/// Pick the instance a service-level trigger should operate on: the hottest
/// instance for overload triggers, the coolest for idle triggers. When
/// `prefer_server` is given (server triggers), instances on that host win.
/// Index-backed [`ActionInputs::gather`]: identical inputs, with the two
/// instance-table count scans answered by the prebuilt [`HostIndex`].
fn gather_action_inputs(
    landscape: &Landscape,
    index: &HostIndex,
    loads: &dyn LoadView,
    service: ServiceId,
    instance: InstanceId,
) -> Option<ActionInputs> {
    let inst = landscape.instance(instance).ok()?;
    let server = inst.server;
    let spec = landscape.server(server).ok()?;
    let instance_load = loads.cpu(Subject::Instance(instance));
    Some(ActionInputs {
        cpu_load: loads.cpu(Subject::Server(server)),
        mem_load: loads.mem(Subject::Server(server)),
        performance_index: spec.performance_index,
        instance_load,
        service_load: loads.cpu(Subject::Service(service)),
        instances_on_server: index.instance_count_on(server) as f64,
        instances_of_service: index.instance_count_of(service) as f64,
        instance_demand: instance_load * spec.performance_index,
    })
}

fn representative_instance(
    landscape: &Landscape,
    index: &HostIndex,
    loads: &dyn LoadView,
    service: ServiceId,
    trigger: TriggerKind,
    prefer_server: Option<ServerId>,
) -> Option<InstanceId> {
    let mut instances = index.instances_of(service).to_vec();
    if let Some(server) = prefer_server {
        let on_server: Vec<InstanceId> = instances
            .iter()
            .copied()
            .filter(|i| {
                landscape
                    .instance(*i)
                    .map(|inst| inst.server == server)
                    .unwrap_or(false)
            })
            .collect();
        if !on_server.is_empty() {
            instances = on_server;
        }
    }
    let key = |i: &InstanceId| loads.cpu(Subject::Instance(*i));
    // `total_cmp` plus the id tiebreak keeps the pick deterministic (and
    // panic-free) when several instances report identical load.
    if trigger.is_overload() {
        instances
            .into_iter()
            .max_by(|a, b| key(a).total_cmp(&key(b)).then_with(|| a.cmp(b)))
    } else {
        instances
            .into_iter()
            .min_by(|a, b| key(a).total_cmp(&key(b)).then_with(|| a.cmp(b)))
    }
}

/// Build the concrete [`Action`] for a candidate and target host.
fn concretize(candidate: &Candidate, target: ServerId) -> Option<Action> {
    Some(match candidate.kind {
        ActionKind::Start => Action::Start {
            service: candidate.service,
            target,
        },
        ActionKind::ScaleOut => Action::ScaleOut {
            service: candidate.service,
            target,
        },
        ActionKind::Stop => Action::Stop {
            instance: candidate.instance?,
        },
        ActionKind::ScaleIn => Action::ScaleIn {
            instance: candidate.instance?,
        },
        ActionKind::ScaleUp => Action::ScaleUp {
            instance: candidate.instance?,
            target,
        },
        ActionKind::ScaleDown => Action::ScaleDown {
            instance: candidate.instance?,
            target,
        },
        ActionKind::Move => Action::Move {
            instance: candidate.instance?,
            target,
        },
        ActionKind::IncreasePriority => Action::IncreasePriority {
            service: candidate.service,
        },
        ActionKind::ReducePriority => Action::ReducePriority {
            service: candidate.service,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::TableLoads;
    use autoglobe_landscape::{ApplyOutcome, ServerSpec, ServiceKind, ServiceSpec};

    /// Landscape: 2 weak blades + 1 strong DB server; FI runs two instances
    /// on the weak blades.
    struct Fixture {
        landscape: Landscape,
        fi: ServiceId,
        blade1: ServerId,
        blade2: ServerId,
        big: ServerId,
        i1: InstanceId,
        i2: InstanceId,
        loads: TableLoads,
    }

    fn fixture() -> Fixture {
        let mut landscape = Landscape::new();
        let blade1 = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let blade2 = landscape
            .add_server(ServerSpec::fsc_bx300("Blade2"))
            .unwrap();
        let big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let fi = landscape
            .add_service(
                ServiceSpec::new("FI", ServiceKind::ApplicationServer).with_instances(1, Some(6)),
            )
            .unwrap();
        let i1 = landscape.start_instance(fi, blade1).unwrap();
        let i2 = landscape.start_instance(fi, blade2).unwrap();
        Fixture {
            landscape,
            fi,
            blade1,
            blade2,
            big,
            i1,
            i2,
            loads: TableLoads::new(),
        }
    }

    fn overload_event(subject: Subject, kind: TriggerKind) -> TriggerEvent {
        TriggerEvent {
            kind,
            subject,
            time: SimTime::from_minutes(30),
            average_cpu: 0.9,
            average_mem: 0.4,
        }
    }

    #[test]
    fn overloaded_service_on_weak_host_scales_up_to_big_server() {
        let mut f = fixture();
        // Everything hot; blades weak → scale-up should win and pick Big.
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Server(f.blade2), 0.9, 0.5);
        f.loads.set(Subject::Server(f.big), 0.1, 0.1);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Instance(f.i2), 0.85, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.9, 0.0);

        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(outcome.acted(), "events: {:?}", outcome.events);
        let record = &outcome.executed[0];
        assert_eq!(record.action.kind(), ActionKind::ScaleUp);
        assert_eq!(record.action.target(), Some(f.big));
        // The hottest instance (i1) moved.
        assert_eq!(f.landscape.instance(f.i1).unwrap().server, f.big);
    }

    #[test]
    fn involved_entities_are_protected_after_action() {
        let mut f = fixture();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.9, 0.0);

        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(outcome.acted());
        // Service protected → the same trigger is now suppressed.
        let outcome2 = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(!outcome2.acted());
        assert!(matches!(
            outcome2.events[0],
            ControllerEvent::SuppressedByProtection { .. }
        ));
        // After protection expires the trigger is handled again.
        let later = event.time + SimDuration::from_minutes(31);
        let outcome3 = c.handle_trigger(&event, &mut f.landscape, &f.loads, later);
        assert!(!matches!(
            outcome3.events.first(),
            Some(ControllerEvent::SuppressedByProtection { .. })
        ));
    }

    #[test]
    fn idle_service_scales_in_the_coolest_instance() {
        let mut f = fixture();
        // Grow the pool to five instances: clearly "many", so the idle
        // scale-in rule fires strongly.
        let i3 = f.landscape.start_instance(f.fi, f.big).unwrap();
        let i4 = f.landscape.start_instance(f.fi, f.big).unwrap();
        let i5 = f.landscape.start_instance(f.fi, f.blade2).unwrap();
        f.loads.set(Subject::Server(f.blade1), 0.05, 0.1);
        f.loads.set(Subject::Server(f.blade2), 0.05, 0.1);
        f.loads.set(Subject::Server(f.big), 0.02, 0.1);
        f.loads.set(Subject::Instance(f.i1), 0.06, 0.0);
        f.loads.set(Subject::Instance(f.i2), 0.04, 0.0);
        f.loads.set(Subject::Instance(i3), 0.01, 0.0);
        f.loads.set(Subject::Instance(i4), 0.03, 0.0);
        f.loads.set(Subject::Instance(i5), 0.05, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.04, 0.0);

        let mut c = AutoGlobeController::new();
        let event = TriggerEvent {
            kind: TriggerKind::ServiceIdle,
            subject: Subject::Service(f.fi),
            time: SimTime::from_hours(2),
            average_cpu: 0.04,
            average_mem: 0.1,
        };
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(outcome.acted(), "events: {:?}", outcome.events);
        let record = &outcome.executed[0];
        assert_eq!(record.action.kind(), ActionKind::ScaleIn);
        // The coolest instance (i3) was stopped.
        assert_eq!(record.outcome, ApplyOutcome::Stopped(i3));
        assert!(f.landscape.instance(i3).is_err());
    }

    #[test]
    fn server_trigger_considers_services_on_that_host() {
        let mut f = fixture();
        // Blade1 overloaded, carries i1; Blade2 calm.
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.6);
        f.loads.set(Subject::Server(f.blade2), 0.2, 0.2);
        f.loads.set(Subject::Server(f.big), 0.05, 0.05);
        f.loads.set(Subject::Instance(f.i1), 0.9, 0.0);
        f.loads.set(Subject::Instance(f.i2), 0.2, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.55, 0.0);

        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Server(f.blade1), TriggerKind::ServerOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(outcome.acted(), "events: {:?}", outcome.events);
        // Whatever action won, it must operate on the instance of Blade1 or
        // create capacity elsewhere — never touch Blade2's instance.
        let record = &outcome.executed[0];
        if let Some(instance) = record.action.instance() {
            assert_eq!(instance, f.i1, "must act on the triggering host's instance");
        }
        if let Some(target) = record.action.target() {
            assert_ne!(target, f.blade1, "target must not be the overloaded host");
        }
    }

    #[test]
    fn constraints_are_respected_falling_back_to_next_action() {
        let mut f = fixture();
        // FI forbids scale-up/move; only scale-out allowed.
        let restricted = f
            .landscape
            .add_service(
                ServiceSpec::new("R", ServiceKind::ApplicationServer)
                    .with_instances(1, Some(4))
                    .with_allowed_actions([ActionKind::ScaleOut]),
            )
            .unwrap();
        let r1 = f.landscape.start_instance(restricted, f.blade1).unwrap();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Server(f.blade2), 0.1, 0.1);
        f.loads.set(Subject::Server(f.big), 0.1, 0.1);
        f.loads.set(Subject::Instance(r1), 0.95, 0.0);
        f.loads.set(Subject::Service(restricted), 0.95, 0.0);

        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Service(restricted), TriggerKind::ServiceOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(outcome.acted(), "events: {:?}", outcome.events);
        assert_eq!(outcome.executed[0].action.kind(), ActionKind::ScaleOut);
    }

    #[test]
    fn alert_when_nothing_is_applicable() {
        let mut f = fixture();
        // Immobile service: no actions allowed at all.
        let frozen = f
            .landscape
            .add_service(ServiceSpec::new("Z", ServiceKind::Database).immobile())
            .unwrap();
        let z1 = f.landscape.start_instance(frozen, f.blade1).unwrap();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Instance(z1), 0.95, 0.0);
        f.loads.set(Subject::Service(frozen), 0.95, 0.0);

        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Service(frozen), TriggerKind::ServiceOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(!outcome.acted());
        assert!(outcome
            .events
            .iter()
            .any(|e| matches!(e, ControllerEvent::AdministratorAlert { .. })));
    }

    #[test]
    fn protected_target_hosts_are_skipped() {
        let mut f = fixture();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Server(f.blade2), 0.05, 0.05);
        f.loads.set(Subject::Server(f.big), 0.05, 0.05);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.9, 0.0);

        let mut c = AutoGlobeController::new();
        // Protect the big host; placement must land on Blade2.
        c.protect(
            Subject::Server(f.big),
            SimTime::from_minutes(29),
            SimDuration::from_minutes(60),
        );
        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        if let Some(record) = outcome.executed.first() {
            assert_ne!(record.action.target(), Some(f.big));
        }
    }

    #[test]
    fn semi_automatic_queues_and_confirms() {
        let mut f = fixture();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Server(f.big), 0.05, 0.05);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.9, 0.0);

        let mut c = AutoGlobeController::new();
        c.set_mode(ExecutionMode::SemiAutomatic);
        assert_eq!(c.mode(), ExecutionMode::SemiAutomatic);

        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);
        let outcome = c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        // Nothing executed, one pending.
        assert!(!outcome.acted());
        assert_eq!(c.pending().len(), 1);
        let instances_before = f.landscape.num_instances();

        let id = c.pending()[0].id;
        let record = c
            .confirm_pending(
                id,
                &mut f.landscape,
                event.time + SimDuration::from_secs(60),
            )
            .expect("confirmation applies the action");
        assert_eq!(f.landscape.num_instances(), instances_before);
        assert!(record.action.kind().needs_target() || record.action.instance().is_some());
        assert!(c.pending().is_empty());
    }

    #[test]
    fn semi_automatic_reject_discards() {
        let mut f = fixture();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.9, 0.0);

        let mut c = AutoGlobeController::new();
        c.set_mode(ExecutionMode::SemiAutomatic);
        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);
        c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        let id = c.pending()[0].id;
        assert!(c.reject_pending(id));
        assert!(!c.reject_pending(id));
        assert!(c.pending().is_empty());
        // Nothing changed in the landscape.
        assert_eq!(f.landscape.num_instances(), 2);
    }

    #[test]
    fn log_accumulates_and_drains() {
        let mut f = fixture();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.9, 0.0);
        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);
        c.handle_trigger(&event, &mut f.landscape, &f.loads, event.time);
        assert!(!c.log().is_empty());
        let drained = c.drain_log();
        assert!(!drained.is_empty());
        assert!(c.log().is_empty());
    }

    #[test]
    fn indexed_ranking_is_bit_identical_to_exhaustive() {
        let mut f = fixture();
        // A mixed landscape state: one hot blade, one idle, the big server
        // partly loaded, plus an instance on Big so the index sees variety.
        f.landscape.start_instance(f.fi, f.big).unwrap();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Server(f.blade2), 0.1, 0.2);
        f.loads.set(Subject::Server(f.big), 0.4, 0.3);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Instance(f.i2), 0.1, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.6, 0.0);

        let mut c = AutoGlobeController::new();
        let now = SimTime::from_minutes(30);
        for kind in ActionKind::ALL {
            let instance = kind_uses_instance(kind).then_some(f.i1);
            let indexed = c.rank_hosts_indexed(kind, f.fi, instance, &f.landscape, &f.loads, now);
            let exhaustive =
                c.rank_hosts_exhaustive(kind, f.fi, instance, &f.landscape, &f.loads, now);
            assert_eq!(
                indexed.len(),
                exhaustive.len(),
                "host count diverged for {kind:?}"
            );
            for (a, b) in indexed.iter().zip(exhaustive.iter()) {
                assert_eq!(a.0, b.0, "host order diverged for {kind:?}");
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "score bits diverged for {kind:?} on {:?}",
                    a.0
                );
            }
        }
    }

    #[test]
    fn candidate_sort_is_deterministic_for_equal_and_nan_scores() {
        // Equal applicability: service id, then action name, decide.
        let mk = |service: u32, kind: ActionKind, applicability: f64| Candidate {
            service: ServiceId::new(service),
            instance: None,
            kind,
            applicability,
        };
        let mut candidates = [
            mk(2, ActionKind::Start, 0.5),
            mk(1, ActionKind::ScaleOut, 0.5),
            mk(1, ActionKind::Move, 0.5),
            mk(3, ActionKind::Stop, 0.9),
        ];
        candidates.sort_unstable_by(candidate_order);
        let key: Vec<(u32, ActionKind)> = candidates
            .iter()
            .map(|c| (c.service.index() as u32, c.kind))
            .collect();
        assert_eq!(
            key,
            vec![
                (3, ActionKind::Stop),
                (1, ActionKind::Move),
                (1, ActionKind::ScaleOut),
                (2, ActionKind::Start),
            ]
        );

        // NaN applicability must not panic; total_cmp orders NaN above all
        // finite values (descending sort), and the run stays deterministic.
        let mut with_nan = [
            mk(1, ActionKind::Start, 0.4),
            mk(2, ActionKind::Start, f64::NAN),
            mk(3, ActionKind::Start, 0.8),
        ];
        with_nan.sort_unstable_by(candidate_order);
        let services: Vec<usize> = with_nan.iter().map(|c| c.service.index()).collect();
        assert_eq!(services, vec![2, 3, 1]);
    }

    #[test]
    fn host_sort_breaks_score_ties_by_server_id() {
        let mut scored = [
            (ServerId::new(5), 0.7),
            (ServerId::new(1), 0.7),
            (ServerId::new(3), 0.9),
            (ServerId::new(2), 0.7),
        ];
        scored.sort_unstable_by(host_order);
        let ids: Vec<usize> = scored.iter().map(|(s, _)| s.index()).collect();
        assert_eq!(ids, vec![3, 1, 2, 5]);

        // -0.0 and 0.0 are distinct under total_cmp (0.0 sorts first in a
        // descending sort); the outcome is deterministic, never a panic.
        let mut signed_zero = [(ServerId::new(1), -0.0), (ServerId::new(2), 0.0)];
        signed_zero.sort_unstable_by(host_order);
        assert_eq!(signed_zero[0].0, ServerId::new(2));
    }

    /// A controller with the paper rule bases and an explicit scoring mode
    /// and incremental epsilon.
    fn controller_with(scoring: ScoringMode, score_epsilon: f64) -> AutoGlobeController {
        let config = ControllerConfig {
            scoring,
            score_epsilon,
            ..ControllerConfig::default()
        };
        AutoGlobeController::with_rule_bases(RuleBases::paper_defaults(), config)
    }

    /// Mixed-load fixture state shared by the mode-equivalence tests.
    fn mixed_loads(f: &mut Fixture) {
        f.landscape.start_instance(f.fi, f.big).unwrap();
        f.loads.set(Subject::Server(f.blade1), 0.95, 0.5);
        f.loads.set(Subject::Server(f.blade2), 0.1, 0.2);
        f.loads.set(Subject::Server(f.big), 0.4, 0.3);
        f.loads.set(Subject::Instance(f.i1), 0.95, 0.0);
        f.loads.set(Subject::Instance(f.i2), 0.1, 0.0);
        f.loads.set(Subject::Service(f.fi), 0.6, 0.0);
    }

    #[test]
    fn batched_ranking_is_bit_identical_to_scalar_mode() {
        let mut f = fixture();
        mixed_loads(&mut f);
        let mut batched = controller_with(ScoringMode::Batched, 0.0);
        let mut scalar = controller_with(ScoringMode::Scalar, 0.0);
        let now = SimTime::from_minutes(30);
        for kind in ActionKind::ALL {
            let instance = kind_uses_instance(kind).then_some(f.i1);
            let b = batched.rank_hosts_indexed(kind, f.fi, instance, &f.landscape, &f.loads, now);
            let s = scalar.rank_hosts_indexed(kind, f.fi, instance, &f.landscape, &f.loads, now);
            assert_eq!(b.len(), s.len(), "host count diverged for {kind:?}");
            for (x, y) in b.iter().zip(s.iter()) {
                assert_eq!(x.0, y.0, "host order diverged for {kind:?}");
                assert_eq!(
                    x.1.to_bits(),
                    y.1.to_bits(),
                    "score bits diverged for {kind:?} on {:?}",
                    x.0
                );
            }
        }
    }

    #[test]
    fn second_trigger_is_served_from_the_hoisted_cache() {
        let mut f = fixture();
        mixed_loads(&mut f);
        let mut c = AutoGlobeController::new();
        let event = overload_event(Subject::Service(f.fi), TriggerKind::ServiceOverloaded);

        // First trigger: all evaluations are fresh (the per-call memo is
        // gone; its replacement lives on the controller).
        let first = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        let after_first = c.score_cache_stats();
        assert!(after_first.misses > 0, "first trigger must evaluate");
        assert!(after_first.pattern_entries > 0);

        // Second trigger on the unchanged landscape: the hoisted cache
        // answers (the seed's per-call HashMap could not carry over).
        let second = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        let after_second = c.score_cache_stats();
        assert!(
            after_second.pattern_hits + after_second.incremental_hits
                > after_first.pattern_hits + after_first.incremental_hits,
            "second trigger must hit the cross-trigger cache: {after_second:?}"
        );
        assert_eq!(
            after_second.clears, after_first.clears,
            "unchanged landscape must not flush the cache"
        );

        // Rankings stay bit-identical: same decision, same scores, and both
        // match a cache-cold fresh controller.
        let mut fresh = AutoGlobeController::new();
        let reference = fresh.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        for planned in [&first, &second] {
            let d = planned.decided.as_ref().expect("a decision");
            let r = reference.decided.as_ref().expect("a decision");
            assert_eq!(d.action, r.action);
            assert_eq!(
                d.host_score.map(f64::to_bits),
                r.host_score.map(f64::to_bits)
            );
            assert_eq!(d.alternates.len(), r.alternates.len());
            for (a, b) in d.alternates.iter().zip(r.alternates.iter()) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits());
            }
        }
    }

    #[test]
    fn landscape_mutation_flushes_the_verdict_layer() {
        let mut f = fixture();
        mixed_loads(&mut f);
        let mut c = AutoGlobeController::new();
        let now = SimTime::from_minutes(30);
        c.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        let before = c.score_cache_stats();
        assert!(before.pattern_entries > 0);

        // Any landscape mutation bumps the revision; the next ranking must
        // drop every per-server verdict anchor (the pure-function pattern
        // memo may stay warm).
        f.landscape.start_instance(f.fi, f.big).unwrap();
        c.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        let after = c.score_cache_stats();
        assert_eq!(after.clears, before.clears + 1);
        assert_eq!(after.incremental_hits, 0);
    }

    #[test]
    fn nan_load_lanes_are_excluded_in_both_scoring_modes() {
        let mut f = fixture();
        mixed_loads(&mut f);
        // Poison one candidate's CPU lane. The engine now rejects non-finite
        // measurements with a typed error, so the server is skipped instead
        // of ranked on a NaN-poisoned score — in both modes, without
        // aborting the rest of the batch.
        f.loads.set(Subject::Server(f.big), f64::NAN, 0.3);
        let now = SimTime::from_minutes(30);
        for (label, mode) in [
            ("batched", ScoringMode::Batched),
            ("scalar", ScoringMode::Scalar),
        ] {
            let mut c = controller_with(mode, 0.0);
            let hosts = c.rank_hosts_indexed(
                ActionKind::Move,
                f.fi,
                Some(f.i1),
                &f.landscape,
                &f.loads,
                now,
            );
            assert!(
                hosts.iter().all(|(s, _)| *s != f.big),
                "{label}: NaN-lane server must not be ranked: {hosts:?}"
            );
            assert!(
                hosts.iter().all(|(_, score)| score.is_finite()),
                "{label}: no NaN score may survive: {hosts:?}"
            );
            assert!(
                !hosts.is_empty(),
                "{label}: healthy candidates must still be ranked"
            );
        }
    }

    #[test]
    fn nonzero_epsilon_skips_reinference_and_zero_epsilon_does_not() {
        let mut f = fixture();
        mixed_loads(&mut f);
        let now = SimTime::from_minutes(30);

        // Opt-in fast mode: a sub-epsilon load move keeps the cached
        // verdicts (same scores, no re-inference).
        let mut fast = controller_with(ScoringMode::Batched, 0.05);
        let before = fast.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        f.loads.set(Subject::Server(f.blade2), 0.11, 0.21);
        let after = fast.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        assert!(
            fast.score_cache_stats().incremental_hits > 0,
            "sub-epsilon drift must reuse verdicts: {:?}",
            fast.score_cache_stats()
        );
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }

        // Pinned equivalence at epsilon 0: the same drift re-evaluates and
        // lands bit-identical to the scalar seed path.
        let mut exact = controller_with(ScoringMode::Batched, 0.0);
        exact.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        f.loads.set(Subject::Server(f.blade2), 0.12, 0.22);
        let exact_hosts = exact.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        let mut scalar = controller_with(ScoringMode::Scalar, 0.0);
        let scalar_hosts = scalar.rank_hosts_indexed(
            ActionKind::Move,
            f.fi,
            Some(f.i1),
            &f.landscape,
            &f.loads,
            now,
        );
        assert_eq!(exact_hosts.len(), scalar_hosts.len());
        for (a, b) in exact_hosts.iter().zip(scalar_hosts.iter()) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits());
        }
    }
}
