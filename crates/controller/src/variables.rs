//! The linguistic variables of the AutoGlobe controller.
//!
//! Tables 1 and 3 of the paper define the input variables for action
//! selection and server selection; Table 2 the output variables (one
//! applicability score per action). This module builds them with the
//! trapezoid membership functions of Figure 3.

use autoglobe_fuzzy::{LinguisticVariable, MembershipFunction};
use autoglobe_landscape::ActionKind;

/// The standard three-term load variable of Figure 3 over `[0, 1]`
/// (*low*, *medium*, *high*), calibrated so that `μ_medium(0.6) = 0.5` and
/// `μ_high(0.6) = 0.2` as in the paper's worked example.
pub fn load(name: &str) -> LinguisticVariable {
    LinguisticVariable::builder(name)
        .term("low", MembershipFunction::trapezoid(0.0, 0.0, 0.2, 0.4))
        .term("medium", MembershipFunction::trapezoid(0.2, 0.4, 0.5, 0.7))
        .term("high", MembershipFunction::trapezoid(0.5, 1.0, 1.0, 1.0))
        .build()
        .expect("load variable is valid")
}

/// Performance index over `[0, 10]` (the paper's pool spans 1–9):
/// *low* ≲ 2, *medium* ≈ 3–5, *high* ≳ 6.
pub fn performance_index() -> LinguisticVariable {
    LinguisticVariable::builder("performanceIndex")
        .range(0.0, 10.0)
        .term("low", MembershipFunction::trapezoid(0.0, 0.0, 1.5, 3.0))
        .term("medium", MembershipFunction::trapezoid(1.5, 3.0, 5.0, 7.0))
        .term("high", MembershipFunction::trapezoid(5.0, 7.0, 10.0, 10.0))
        .build()
        .expect("performance index variable is valid")
}

/// Absolute CPU demand of an instance in performance-index-1 units over
/// `[0, 3]`: *small*, *moderate*, *large*.
///
/// This is an extension beyond Table 1 of the paper: an instance's *load*
/// is relative to its host (an 0.73-unit central instance shows only 8 %
/// load on a 9-index database server), so scale-down decisions need the
/// absolute demand to know whether a weaker host could absorb the instance
/// at all. Without it the controller oscillates: scale-up on overload,
/// "idle" on the big host, scale-down, overload again.
pub fn instance_demand() -> LinguisticVariable {
    LinguisticVariable::builder("instanceDemand")
        .range(0.0, 3.0)
        .term("small", MembershipFunction::trapezoid(0.0, 0.0, 0.3, 0.5))
        .term(
            "moderate",
            MembershipFunction::trapezoid(0.3, 0.5, 0.8, 1.0),
        )
        .term("large", MembershipFunction::trapezoid(0.8, 1.0, 3.0, 3.0))
        .build()
        .expect("instanceDemand variable is valid")
}

/// Instance count on a server over `[0, 10]`: *none*, *one*, *few*, *many*.
pub fn instances_on_server() -> LinguisticVariable {
    LinguisticVariable::builder("instancesOnServer")
        .range(0.0, 10.0)
        .term("none", MembershipFunction::trapezoid(0.0, 0.0, 0.0, 1.0))
        .term("one", MembershipFunction::trapezoid(0.0, 1.0, 1.0, 2.0))
        .term("few", MembershipFunction::trapezoid(1.0, 2.0, 3.0, 5.0))
        .term("many", MembershipFunction::trapezoid(3.0, 5.0, 10.0, 10.0))
        .build()
        .expect("instancesOnServer variable is valid")
}

/// Instance count of a service over `[0, 10]`: *one*, *few*, *many*.
pub fn instances_of_service() -> LinguisticVariable {
    LinguisticVariable::builder("instancesOfService")
        .range(0.0, 10.0)
        .term("one", MembershipFunction::trapezoid(0.0, 0.0, 1.0, 2.0))
        .term("few", MembershipFunction::trapezoid(1.0, 2.0, 3.0, 5.0))
        .term("many", MembershipFunction::trapezoid(3.0, 5.0, 10.0, 10.0))
        .build()
        .expect("instancesOfService variable is valid")
}

/// Number of CPUs over `[0, 16]`: *few*, *several*, *many*.
pub fn number_of_cpus() -> LinguisticVariable {
    LinguisticVariable::builder("numberOfCpus")
        .range(0.0, 16.0)
        .term("few", MembershipFunction::trapezoid(0.0, 0.0, 1.0, 2.0))
        .term("several", MembershipFunction::trapezoid(1.0, 2.0, 4.0, 6.0))
        .term("many", MembershipFunction::trapezoid(4.0, 8.0, 16.0, 16.0))
        .build()
        .expect("numberOfCpus variable is valid")
}

/// CPU clock in MHz over `[0, 4000]`: *slow*, *medium*, *fast*.
pub fn cpu_clock() -> LinguisticVariable {
    LinguisticVariable::builder("cpuClock")
        .range(0.0, 4000.0)
        .term(
            "slow",
            MembershipFunction::trapezoid(0.0, 0.0, 800.0, 1200.0),
        )
        .term(
            "medium",
            MembershipFunction::trapezoid(800.0, 1200.0, 2000.0, 2600.0),
        )
        .term(
            "fast",
            MembershipFunction::trapezoid(2000.0, 2600.0, 4000.0, 4000.0),
        )
        .build()
        .expect("cpuClock variable is valid")
}

/// CPU cache in KB over `[0, 8192]`: *small*, *medium*, *large*.
pub fn cpu_cache() -> LinguisticVariable {
    LinguisticVariable::builder("cpuCache")
        .range(0.0, 8192.0)
        .term(
            "small",
            MembershipFunction::trapezoid(0.0, 0.0, 512.0, 1024.0),
        )
        .term(
            "medium",
            MembershipFunction::trapezoid(512.0, 1024.0, 2048.0, 4096.0),
        )
        .term(
            "large",
            MembershipFunction::trapezoid(2048.0, 4096.0, 8192.0, 8192.0),
        )
        .build()
        .expect("cpuCache variable is valid")
}

/// Memory in MB over `[0, 32768]`: *small*, *medium*, *large*.
pub fn memory() -> LinguisticVariable {
    LinguisticVariable::builder("memory")
        .range(0.0, 32_768.0)
        .term(
            "small",
            MembershipFunction::trapezoid(0.0, 0.0, 2048.0, 4096.0),
        )
        .term(
            "medium",
            MembershipFunction::trapezoid(2048.0, 4096.0, 8192.0, 12_288.0),
        )
        .term(
            "large",
            MembershipFunction::trapezoid(8192.0, 12_288.0, 32_768.0, 32_768.0),
        )
        .build()
        .expect("memory variable is valid")
}

/// Swap space in MB over `[0, 65536]`: *small*, *large*.
pub fn swap_space() -> LinguisticVariable {
    LinguisticVariable::builder("swapSpace")
        .range(0.0, 65_536.0)
        .term(
            "small",
            MembershipFunction::trapezoid(0.0, 0.0, 4096.0, 8192.0),
        )
        .term(
            "large",
            MembershipFunction::trapezoid(4096.0, 8192.0, 65_536.0, 65_536.0),
        )
        .build()
        .expect("swapSpace variable is valid")
}

/// Temporary disk space in MB over `[0, 262144]`: *small*, *large*.
pub fn temp_space() -> LinguisticVariable {
    LinguisticVariable::builder("tempSpace")
        .range(0.0, 262_144.0)
        .term(
            "small",
            MembershipFunction::trapezoid(0.0, 0.0, 10_240.0, 20_480.0),
        )
        .term(
            "large",
            MembershipFunction::trapezoid(10_240.0, 20_480.0, 262_144.0, 262_144.0),
        )
        .build()
        .expect("tempSpace variable is valid")
}

/// All input variables of the action-selection controller (Table 1):
/// `cpuLoad`, `memLoad`, `performanceIndex`, `instanceLoad`, `serviceLoad`,
/// `instancesOnServer`, `instancesOfService`.
pub fn action_selection_inputs() -> Vec<LinguisticVariable> {
    vec![
        load("cpuLoad"),
        load("memLoad"),
        performance_index(),
        load("instanceLoad"),
        load("serviceLoad"),
        instances_on_server(),
        instances_of_service(),
        instance_demand(),
    ]
}

/// All output variables of the action-selection controller (Table 2): one
/// applicability per action kind.
pub fn action_selection_outputs() -> Vec<LinguisticVariable> {
    ActionKind::ALL
        .iter()
        .map(|k| LinguisticVariable::applicability(k.variable_name()))
        .collect()
}

/// All input variables of the server-selection controller (Table 3):
/// `cpuLoad`, `memLoad`, `instancesOnServer`, `performanceIndex`,
/// `numberOfCpus`, `cpuClock`, `cpuCache`, `memory`, `swapSpace`,
/// `tempSpace`.
pub fn server_selection_inputs() -> Vec<LinguisticVariable> {
    vec![
        load("cpuLoad"),
        load("memLoad"),
        instances_on_server(),
        performance_index(),
        number_of_cpus(),
        cpu_clock(),
        cpu_cache(),
        memory(),
        swap_space(),
        temp_space(),
    ]
}

/// The single output variable of the server-selection controller: the
/// host's suitability `score`.
pub fn server_selection_output() -> LinguisticVariable {
    LinguisticVariable::applicability("score")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_variables_are_complete() {
        let names: Vec<String> = action_selection_inputs()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "cpuLoad",
                "memLoad",
                "performanceIndex",
                "instanceLoad",
                "serviceLoad",
                "instancesOnServer",
                "instancesOfService",
                "instanceDemand", // extension, see `instance_demand`
            ]
        );
    }

    #[test]
    fn table_3_variables_are_complete() {
        let names: Vec<String> = server_selection_inputs()
            .iter()
            .map(|v| v.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "cpuLoad",
                "memLoad",
                "instancesOnServer",
                "performanceIndex",
                "numberOfCpus",
                "cpuClock",
                "cpuCache",
                "memory",
                "swapSpace",
                "tempSpace",
            ]
        );
    }

    #[test]
    fn table_2_outputs_cover_all_actions() {
        let outs = action_selection_outputs();
        assert_eq!(outs.len(), 9);
        assert!(outs.iter().any(|v| v.name() == "scaleUp"));
        assert!(outs.iter().any(|v| v.name() == "increasePriority"));
    }

    #[test]
    fn load_variable_matches_figure_3() {
        let v = load("cpuLoad");
        let medium = v.term("medium").unwrap();
        let high = v.term("high").unwrap();
        assert!((medium.grade(0.6) - 0.5).abs() < 1e-12);
        assert!((high.grade(0.6) - 0.2).abs() < 1e-12);
        assert!((high.grade(0.9) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn paper_hardware_maps_to_sensible_terms() {
        // BX300: performance index 1 → low; BL40p: 9 → high.
        let v = performance_index();
        assert!(v.term("low").unwrap().grade(1.0) > 0.9);
        assert!(v.term("high").unwrap().grade(9.0) > 0.9);
        // BX600 index 2 sits between low and medium.
        let low2 = v.term("low").unwrap().grade(2.0);
        let med2 = v.term("medium").unwrap().grade(2.0);
        assert!(low2 > 0.0 && med2 > 0.0);

        // Clock: 933 MHz blades are slow-to-medium; 2800 MHz Xeons fast.
        let clock = cpu_clock();
        assert!(clock.term("fast").unwrap().grade(2800.0) > 0.9);
        assert!(clock.term("slow").unwrap().grade(933.0) > 0.0);

        // Memory: 2 GB small, 12 GB large.
        let mem = memory();
        assert!(mem.term("small").unwrap().grade(2048.0) > 0.9);
        assert!(mem.term("large").unwrap().grade(12_288.0) > 0.9);
    }

    #[test]
    fn instance_counts_have_sane_terms() {
        let v = instances_on_server();
        assert!(v.term("none").unwrap().grade(0.0) > 0.9);
        assert!(v.term("one").unwrap().grade(1.0) > 0.9);
        assert!(v.term("many").unwrap().grade(8.0) > 0.9);
        let v = instances_of_service();
        assert!(v.term("one").unwrap().grade(1.0) > 0.9);
        assert!(v.term("few").unwrap().grade(2.5) > 0.9);
    }
}
