//! The two fuzzy controllers: action selection and server selection.

use crate::cache::FastMap;
use crate::inputs::{ActionInputs, ServerInputs};
use crate::rulebase::RuleBases;
use crate::variables;
use autoglobe_fuzzy::{Engine, EngineConfig, FuzzyError};
use autoglobe_landscape::ActionKind;
use autoglobe_monitor::TriggerKind;
use std::collections::HashMap;

/// One entry in the ranked action list of Section 4.1: an action kind with
/// its applicability in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedAction {
    /// The action kind.
    pub kind: ActionKind,
    /// Crisp applicability ("ratings between 0% and 100%").
    pub applicability: f64,
}

/// The action-selection fuzzy controller: one engine per `(trigger,
/// service-specific rule base)` combination, built at construction time so
/// the per-trigger hot path ([`ActionSelector::rank`]) only evaluates rules
/// — every engine's consequent term grids are precomputed when its rules are
/// added.
#[derive(Debug)]
pub struct ActionSelector {
    rule_bases: RuleBases,
    config: EngineConfig,
    /// Cache key: `(trigger, service name if it has specific rules else "")`.
    ///
    /// Iteration-order audit: this map is only ever probed by key
    /// (`contains_key` / `insert` / index) — never iterated — so `HashMap`'s
    /// arbitrary order cannot leak into decisions. The key *lists* that seed
    /// it come from [`RuleBases::service_trigger_keys`], which is
    /// `BTreeMap`-backed and therefore sorted.
    engines: HashMap<(TriggerKind, String), Engine>,
    /// Interned `(trigger, resolved rule-base key)` pairs; index = memo slot.
    memo_slots: Vec<(TriggerKind, String)>,
    /// Memoized [`ActionSelector::rank`] results keyed by memo slot and the
    /// exact bit pattern of the eight input lanes. A ranking is a pure
    /// function of the engine and those bits, and the rule bases are fixed
    /// at construction, so entries never go stale — a hit returns exactly
    /// the list a fresh evaluation would produce. Bounded: overflowing
    /// [`MAX_RANK_MEMO_ENTRIES`] clears the memo.
    memo: FastMap<(u32, [u64; 8]), Vec<RankedAction>>,
}

/// Rank-memo capacity; overflow clears the memo (entries re-memoize on the
/// next evaluation).
const MAX_RANK_MEMO_ENTRIES: usize = 1 << 14;

impl ActionSelector {
    /// Build a selector over the given rule bases. All engines — one per
    /// trigger for the default bases, plus one per service-specific
    /// extension — are constructed eagerly here.
    pub fn new(rule_bases: RuleBases, config: EngineConfig) -> Self {
        let mut selector = ActionSelector {
            rule_bases,
            config,
            engines: HashMap::new(),
            memo_slots: Vec::new(),
            memo: FastMap::default(),
        };
        let mut keys: Vec<(TriggerKind, String)> = TriggerKind::ALL
            .iter()
            .map(|&t| (t, String::new()))
            .collect();
        keys.extend(
            selector
                .rule_bases
                .service_trigger_keys()
                .map(|(t, s)| (t, s.to_string())),
        );
        for (trigger, service) in keys {
            // If an administrator rule base fails validation the engine
            // stays unbuilt; the first `rank` against it retries the build
            // and reports the error, exactly as lazy construction did.
            if let Ok(engine) =
                Self::build_engine(&selector.rule_bases, selector.config, trigger, &service)
            {
                selector.engines.insert((trigger, service), engine);
            }
        }
        selector
    }

    /// The rule bases in use.
    pub fn rule_bases(&self) -> &RuleBases {
        &self.rule_bases
    }

    fn build_engine(
        rule_bases: &RuleBases,
        config: EngineConfig,
        trigger: TriggerKind,
        service_name: &str,
    ) -> Result<Engine, FuzzyError> {
        let mut engine = Engine::with_config(config);
        for var in variables::action_selection_inputs() {
            engine.add_input(var);
        }
        for var in variables::action_selection_outputs() {
            engine.add_output(var);
        }
        for rule in rule_bases.for_trigger(trigger, service_name).rules() {
            engine.add_rule(rule.clone())?;
        }
        Ok(engine)
    }

    fn engine(&mut self, trigger: TriggerKind, service_name: &str) -> Result<&Engine, FuzzyError> {
        // Services without specific rules share the default-base engine,
        // keyed by the empty service name.
        let service = if self
            .rule_bases
            .has_service_trigger_rules(trigger, service_name)
        {
            service_name
        } else {
            ""
        };
        let key = (trigger, service.to_string());
        if !self.engines.contains_key(&key) {
            let engine = Self::build_engine(&self.rule_bases, self.config, trigger, service)?;
            self.engines.insert(key.clone(), engine);
        }
        Ok(&self.engines[&key])
    }

    /// Evaluate the trigger's rule base for one service and return all nine
    /// actions ranked by applicability (descending; zero-applicability
    /// entries included — the caller applies the administrator threshold).
    ///
    /// Results are memoized on the exact input bit pattern: triggers fire
    /// for every overloaded subject each interval, and a mostly-idle pool
    /// asks the same few questions over and over. A memo hit skips the
    /// fuzzy cycle entirely and is bit-identical to a fresh run.
    pub fn rank(
        &mut self,
        trigger: TriggerKind,
        service_name: &str,
        inputs: &ActionInputs,
    ) -> Result<Vec<RankedAction>, FuzzyError> {
        let resolved = if self
            .rule_bases
            .has_service_trigger_rules(trigger, service_name)
        {
            service_name
        } else {
            ""
        };
        let slot = match self
            .memo_slots
            .iter()
            .position(|(t, s)| *t == trigger && s == resolved)
        {
            Some(i) => i as u32,
            None => {
                self.memo_slots.push((trigger, resolved.to_string()));
                (self.memo_slots.len() - 1) as u32
            }
        };
        let mut bits = [0u64; 8];
        for (i, (_, value)) in inputs.measurements().into_iter().enumerate() {
            bits[i] = value.to_bits();
        }
        if let Some(hit) = self.memo.get(&(slot, bits)) {
            return Ok(hit.clone());
        }

        let engine = self.engine(trigger, service_name)?;
        let outputs = engine.run(inputs.measurements())?;
        let mut ranked: Vec<RankedAction> = outputs
            .ranked()
            .into_iter()
            .filter_map(|(name, value)| {
                ActionKind::from_variable_name(name).map(|kind| RankedAction {
                    kind,
                    applicability: value,
                })
            })
            .collect();
        // Total order (no `partial_cmp().unwrap()` panic path): the action
        // name tiebreak is unique per kind, so the sort is deterministic
        // even for equal or non-finite applicabilities.
        ranked.sort_unstable_by(|a, b| {
            b.applicability
                .total_cmp(&a.applicability)
                .then_with(|| a.kind.variable_name().cmp(b.kind.variable_name()))
        });
        if self.memo.len() >= MAX_RANK_MEMO_ENTRIES {
            self.memo.clear();
        }
        self.memo.insert((slot, bits), ranked.clone());
        Ok(ranked)
    }
}

/// The server-selection fuzzy controller: one engine per `(action,
/// service-specific rule base)` combination, built eagerly like
/// [`ActionSelector`]'s.
#[derive(Debug)]
pub struct ServerSelector {
    rule_bases: RuleBases,
    config: EngineConfig,
    /// Cache key: `(action, service name if it has specific rules else "")`.
    ///
    /// Iteration-order audit: probed by key only, never iterated (see
    /// [`ActionSelector`]); seeded from the sorted
    /// [`RuleBases::service_action_keys`].
    engines: HashMap<(ActionKind, String), Engine>,
}

impl ServerSelector {
    /// Build a selector over the given rule bases, constructing all engines
    /// up front.
    pub fn new(rule_bases: RuleBases, config: EngineConfig) -> Self {
        let mut selector = ServerSelector {
            rule_bases,
            config,
            engines: HashMap::new(),
        };
        let mut keys: Vec<(ActionKind, String)> = ActionKind::ALL
            .iter()
            .map(|&a| (a, String::new()))
            .collect();
        keys.extend(
            selector
                .rule_bases
                .service_action_keys()
                .map(|(a, s)| (a, s.to_string())),
        );
        for (action, service) in keys {
            if let Ok(engine) =
                Self::build_engine(&selector.rule_bases, selector.config, action, &service)
            {
                selector.engines.insert((action, service), engine);
            }
        }
        selector
    }

    fn build_engine(
        rule_bases: &RuleBases,
        config: EngineConfig,
        action: ActionKind,
        service_name: &str,
    ) -> Result<Engine, FuzzyError> {
        let mut engine = Engine::with_config(config);
        for var in variables::server_selection_inputs() {
            engine.add_input(var);
        }
        engine.add_output(variables::server_selection_output());
        for rule in rule_bases.for_action(action, service_name).rules() {
            engine.add_rule(rule.clone())?;
        }
        Ok(engine)
    }

    /// The engine-cache key for `(action, service_name)`: the service's own
    /// name when a service-specific rule extension exists, otherwise the
    /// empty string (all such services share the default-base engine).
    /// Exposed so callers that cache scores can key their caches compatibly
    /// with this engine sharing.
    pub fn engine_key<'a>(&self, action: ActionKind, service_name: &'a str) -> &'a str {
        if self
            .rule_bases
            .has_service_action_rules(action, service_name)
        {
            service_name
        } else {
            ""
        }
    }

    fn engine(&mut self, action: ActionKind, service_name: &str) -> Result<&Engine, FuzzyError> {
        let service = self.engine_key(action, service_name);
        let key = (action, service.to_string());
        if !self.engines.contains_key(&key) {
            let engine = Self::build_engine(&self.rule_bases, self.config, action, service)?;
            self.engines.insert(key.clone(), engine);
        }
        Ok(&self.engines[&key])
    }

    /// Score one candidate host for `action` ("In the defuzzification phase,
    /// the controller calculates a crisp value for every possible host",
    /// Section 4.2).
    pub fn score(
        &mut self,
        action: ActionKind,
        service_name: &str,
        inputs: &ServerInputs,
    ) -> Result<f64, FuzzyError> {
        let engine = self.engine(action, service_name)?;
        let outputs = engine.run(inputs.measurements())?;
        Ok(outputs.get("score").unwrap_or(0.0))
    }

    /// Score a whole slice of candidate hosts for `action` in one batched
    /// engine cycle ([`Engine::run_batch`]): the ten measurement lanes are
    /// laid out as columns and each membership grid is evaluated in one pass
    /// over all candidates. Bit-identical to calling
    /// [`ServerSelector::score`] once per candidate (enforced by tests).
    pub fn score_batch(
        &mut self,
        action: ActionKind,
        service_name: &str,
        inputs: &[ServerInputs],
    ) -> Result<Vec<f64>, FuzzyError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let engine = self.engine(action, service_name)?;
        let rows = inputs.len();
        let mut names = [""; 10];
        let mut columns: Vec<Vec<f64>> = (0..10).map(|_| Vec::with_capacity(rows)).collect();
        for (row, server) in inputs.iter().enumerate() {
            for (lane, (name, value)) in server.measurements().into_iter().enumerate() {
                if row == 0 {
                    names[lane] = name;
                }
                columns[lane].push(value);
            }
        }
        let named: Vec<(&str, &[f64])> = names
            .iter()
            .zip(columns.iter())
            .map(|(name, col)| (*name, col.as_slice()))
            .collect();
        let outputs = engine.run_batch(&named)?;
        Ok(match outputs.column("score") {
            Some(col) => col.to_vec(),
            None => vec![0.0; rows],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_inputs() -> ActionInputs {
        ActionInputs {
            cpu_load: 0.5,
            mem_load: 0.3,
            performance_index: 2.0,
            instance_load: 0.5,
            service_load: 0.5,
            instances_on_server: 2.0,
            instances_of_service: 3.0,
            instance_demand: 1.0,
        }
    }

    fn selector() -> ActionSelector {
        ActionSelector::new(RuleBases::paper_defaults(), EngineConfig::default())
    }

    #[test]
    fn overloaded_weak_host_prefers_scale_up() {
        let mut s = selector();
        let inputs = ActionInputs {
            cpu_load: 0.95,
            instance_load: 0.9,
            service_load: 0.9,
            performance_index: 1.0,
            ..default_inputs()
        };
        let ranked = s
            .rank(TriggerKind::ServiceOverloaded, "FI", &inputs)
            .unwrap();
        assert_eq!(ranked[0].kind, ActionKind::ScaleUp, "ranked: {ranked:?}");
        assert!(ranked[0].applicability > 0.7);
    }

    #[test]
    fn overloaded_strong_host_prefers_scale_out() {
        let mut s = selector();
        let inputs = ActionInputs {
            cpu_load: 0.95,
            instance_load: 0.9,
            service_load: 0.9,
            performance_index: 9.0,
            ..default_inputs()
        };
        let ranked = s
            .rank(TriggerKind::ServiceOverloaded, "FI", &inputs)
            .unwrap();
        assert_eq!(ranked[0].kind, ActionKind::ScaleOut, "ranked: {ranked:?}");
    }

    #[test]
    fn idle_service_prefers_scale_in() {
        let mut s = selector();
        let inputs = ActionInputs {
            cpu_load: 0.05,
            instance_load: 0.03,
            service_load: 0.05,
            instances_of_service: 6.0,
            ..default_inputs()
        };
        let ranked = s.rank(TriggerKind::ServiceIdle, "FI", &inputs).unwrap();
        assert_eq!(ranked[0].kind, ActionKind::ScaleIn, "ranked: {ranked:?}");
        assert!(ranked[0].applicability > 0.7);
    }

    #[test]
    fn calm_situation_ranks_everything_near_zero() {
        let mut s = selector();
        let inputs = ActionInputs {
            cpu_load: 0.45,
            instance_load: 0.45,
            service_load: 0.45,
            mem_load: 0.2,
            ..default_inputs()
        };
        let ranked = s
            .rank(TriggerKind::ServiceOverloaded, "FI", &inputs)
            .unwrap();
        assert!(
            ranked[0].applicability < 0.3,
            "no action should be strongly applicable when calm: {ranked:?}"
        );
    }

    #[test]
    fn ranking_includes_all_nine_actions() {
        let mut s = selector();
        let ranked = s
            .rank(TriggerKind::ServerOverloaded, "FI", &default_inputs())
            .unwrap();
        assert_eq!(ranked.len(), 9);
        // Descending order.
        for w in ranked.windows(2) {
            assert!(w[0].applicability >= w[1].applicability);
        }
    }

    #[test]
    fn server_selector_prefers_idle_hosts_for_placement() {
        let mut s = ServerSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let idle = ServerInputs {
            cpu_load: 0.05,
            mem_load: 0.1,
            instances_on_server: 0.0,
            performance_index: 2.0,
            number_of_cpus: 2.0,
            cpu_clock: 933.0,
            cpu_cache: 512.0,
            memory: 4096.0,
            swap_space: 8192.0,
            temp_space: 20_480.0,
        };
        let busy = ServerInputs {
            cpu_load: 0.85,
            mem_load: 0.7,
            instances_on_server: 5.0,
            ..idle
        };
        let idle_score = s.score(ActionKind::ScaleOut, "FI", &idle).unwrap();
        let busy_score = s.score(ActionKind::ScaleOut, "FI", &busy).unwrap();
        assert!(
            idle_score > busy_score + 0.3,
            "idle {idle_score} vs busy {busy_score}"
        );
    }

    #[test]
    fn scale_up_selection_prefers_powerful_hosts() {
        let mut s = ServerSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let weak = ServerInputs {
            cpu_load: 0.1,
            mem_load: 0.1,
            instances_on_server: 0.0,
            performance_index: 1.0,
            number_of_cpus: 1.0,
            cpu_clock: 933.0,
            cpu_cache: 512.0,
            memory: 2048.0,
            swap_space: 4096.0,
            temp_space: 20_480.0,
        };
        let strong = ServerInputs {
            performance_index: 9.0,
            number_of_cpus: 4.0,
            cpu_clock: 2800.0,
            cpu_cache: 2048.0,
            memory: 12_288.0,
            ..weak
        };
        let weak_score = s.score(ActionKind::ScaleUp, "FI", &weak).unwrap();
        let strong_score = s.score(ActionKind::ScaleUp, "FI", &strong).unwrap();
        assert!(strong_score > weak_score + 0.3);
    }

    #[test]
    fn scale_down_selection_prefers_weak_hosts() {
        let mut s = ServerSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let weak = ServerInputs {
            cpu_load: 0.1,
            mem_load: 0.1,
            instances_on_server: 0.0,
            performance_index: 1.0,
            number_of_cpus: 1.0,
            cpu_clock: 933.0,
            cpu_cache: 512.0,
            memory: 2048.0,
            swap_space: 4096.0,
            temp_space: 20_480.0,
        };
        let strong = ServerInputs {
            performance_index: 9.0,
            ..weak
        };
        let weak_score = s.score(ActionKind::ScaleDown, "FI", &weak).unwrap();
        let strong_score = s.score(ActionKind::ScaleDown, "FI", &strong).unwrap();
        assert!(weak_score > strong_score);
    }

    #[test]
    fn score_batch_is_bit_identical_to_scalar_scores() {
        let mut s = ServerSelector::new(RuleBases::paper_defaults(), EngineConfig::default());
        let base = ServerInputs {
            cpu_load: 0.05,
            mem_load: 0.1,
            instances_on_server: 0.0,
            performance_index: 2.0,
            number_of_cpus: 2.0,
            cpu_clock: 933.0,
            cpu_cache: 512.0,
            memory: 4096.0,
            swap_space: 8192.0,
            temp_space: 20_480.0,
        };
        let candidates: Vec<ServerInputs> = (0..40)
            .map(|i| ServerInputs {
                cpu_load: i as f64 / 40.0,
                mem_load: (40 - i) as f64 / 50.0,
                instances_on_server: (i % 7) as f64,
                performance_index: (i % 10) as f64,
                ..base
            })
            .collect();
        for kind in ActionKind::ALL {
            let batched = s.score_batch(kind, "FI", &candidates).unwrap();
            assert_eq!(batched.len(), candidates.len());
            for (row, inputs) in candidates.iter().enumerate() {
                let scalar = s.score(kind, "FI", inputs).unwrap();
                assert_eq!(
                    batched[row].to_bits(),
                    scalar.to_bits(),
                    "{kind:?} row {row}: batch {} vs scalar {scalar}",
                    batched[row]
                );
            }
        }
        assert!(s
            .score_batch(ActionKind::Move, "FI", &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn engine_key_tracks_service_specific_rules() {
        let mut rb = RuleBases::paper_defaults();
        rb.add_service_action_rules(
            ActionKind::Move,
            "DB",
            autoglobe_fuzzy::parse_rules("IF performanceIndex IS high THEN score IS applicable")
                .unwrap(),
        );
        let s = ServerSelector::new(rb, EngineConfig::default());
        assert_eq!(s.engine_key(ActionKind::Move, "DB"), "DB");
        assert_eq!(s.engine_key(ActionKind::Move, "FI"), "");
        assert_eq!(s.engine_key(ActionKind::ScaleUp, "DB"), "");
    }

    #[test]
    fn actions_without_rules_score_zero() {
        let mut s = ServerSelector::new(RuleBases::empty(), EngineConfig::default());
        let inputs = ServerInputs {
            cpu_load: 0.0,
            mem_load: 0.0,
            instances_on_server: 0.0,
            performance_index: 9.0,
            number_of_cpus: 4.0,
            cpu_clock: 2800.0,
            cpu_cache: 2048.0,
            memory: 12_288.0,
            swap_space: 8192.0,
            temp_space: 20_480.0,
        };
        assert_eq!(s.score(ActionKind::Move, "FI", &inputs).unwrap(), 0.0);
    }
}
