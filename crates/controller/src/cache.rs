//! Cross-trigger fuzzy-score caching for host ranking.
//!
//! The server-selection score is a pure function of the ten crisp
//! [`crate::inputs::ServerInputs`] lanes and the engine (action kind +
//! service-specific rule base, if any). Two layers exploit that:
//!
//! - a **pattern memo** keyed on the exact `[u64; 10]` bit pattern of the
//!   lanes — a large pool is mostly identical idle servers, which collapse
//!   to one engine evaluation per distinct tier/load combination, now
//!   *across* triggers within one landscape revision instead of per call;
//! - an **incremental verdict layer** keyed per server: the lanes and score
//!   of the server's last evaluation. When every lane moved less than a
//!   configurable epsilon since then, re-inference is skipped and the
//!   cached verdict reused. At epsilon 0 (the default) the gate is exact
//!   bit equality, so reuse is trivially bit-identical; a non-zero epsilon
//!   is the opt-in approximate fast mode.
//!
//! Both layers are bounded and epoch-cleared: any landscape mutation (seen
//! via [`autoglobe_landscape::Landscape::revision`]) flushes them, as does
//! overflowing the size caps below.

use autoglobe_landscape::{ActionKind, ServerId};
use std::collections::HashMap;

/// Pattern-memo capacity; overflow clears the memo (a full clear is cheaper
/// and simpler than eviction, and patterns re-memoize in one pass).
const MAX_PATTERN_ENTRIES: usize = 1 << 16;

/// Verdict-layer capacity (naturally bounded by servers × engines, but
/// capped defensively all the same).
const MAX_VERDICT_ENTRIES: usize = 1 << 18;

/// Counters and sizes of the controller's score cache, for tests, consoles
/// and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreCacheStats {
    /// Lookups answered by the exact-bit-pattern memo.
    pub pattern_hits: u64,
    /// Lookups answered by the per-server epsilon-gated verdict layer.
    pub incremental_hits: u64,
    /// Lookups that fell through to engine evaluation.
    pub misses: u64,
    /// Times the cache was flushed (landscape revision change, manual
    /// clear, or capacity overflow).
    pub clears: u64,
    /// Live pattern-memo entries.
    pub pattern_entries: usize,
    /// Live verdict entries.
    pub verdict_entries: usize,
}

/// A server's last evaluated inputs (bits for the exact gate, values for
/// the epsilon gate) and the score they produced.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    bits: [u64; 10],
    lanes: [f64; 10],
    score: f64,
}

/// The bounded, epoch-cleared score cache held by the controller.
#[derive(Debug, Default)]
pub(crate) struct ScoreCache {
    /// Landscape revision the cached entries were computed against.
    revision: Option<u64>,
    /// Interned `(action kind, engine key)` pairs; index = engine slot.
    /// Engine keys follow [`crate::selection::ServerSelector::engine_key`],
    /// so services sharing the default-base engine share cache entries too.
    engines: Vec<(ActionKind, String)>,
    patterns: HashMap<(u32, [u64; 10]), f64>,
    verdicts: HashMap<(u32, ServerId), Verdict>,
    pattern_hits: u64,
    incremental_hits: u64,
    misses: u64,
    clears: u64,
}

impl ScoreCache {
    /// Flush cached scores if the landscape changed since they were
    /// computed. Scores are pure functions of their inputs, so this is about
    /// honoring the epoch contract (and boundedness), not correctness of
    /// individual entries.
    pub(crate) fn sync_revision(&mut self, revision: u64) {
        if self.revision != Some(revision) {
            if self.revision.is_some() {
                self.clears += 1;
            }
            self.patterns.clear();
            self.verdicts.clear();
            self.revision = Some(revision);
        }
    }

    /// Unconditionally flush all cached scores (e.g. after swapping rule
    /// bases or engine configuration).
    pub(crate) fn clear(&mut self) {
        self.patterns.clear();
        self.verdicts.clear();
        self.revision = None;
        self.clears += 1;
    }

    /// Intern an `(action, engine key)` pair into a compact slot id.
    pub(crate) fn engine_slot(&mut self, kind: ActionKind, engine_key: &str) -> u32 {
        if let Some(i) = self
            .engines
            .iter()
            .position(|(k, s)| *k == kind && s == engine_key)
        {
            return i as u32;
        }
        self.engines.push((kind, engine_key.to_string()));
        (self.engines.len() - 1) as u32
    }

    /// The incremental layer: the cached verdict for `server`, if its lanes
    /// moved less than `epsilon` since the last evaluation (exact bit
    /// equality at `epsilon == 0`).
    pub(crate) fn incremental_lookup(
        &mut self,
        slot: u32,
        server: ServerId,
        bits: &[u64; 10],
        lanes: &[f64; 10],
        epsilon: f64,
    ) -> Option<f64> {
        let verdict = self.verdicts.get(&(slot, server))?;
        let within = if epsilon == 0.0 {
            verdict.bits == *bits
        } else {
            verdict
                .lanes
                .iter()
                .zip(lanes.iter())
                .all(|(old, new)| (old - new).abs() <= epsilon)
        };
        if within {
            self.incremental_hits += 1;
            Some(verdict.score)
        } else {
            None
        }
    }

    /// The pattern memo: the score of an exact input bit pattern, if any
    /// server with these inputs was evaluated this epoch.
    pub(crate) fn pattern_lookup(&mut self, slot: u32, bits: &[u64; 10]) -> Option<f64> {
        match self.patterns.get(&(slot, *bits)) {
            Some(&score) => {
                self.pattern_hits += 1;
                Some(score)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a freshly evaluated pattern.
    pub(crate) fn insert_pattern(&mut self, slot: u32, bits: [u64; 10], score: f64) {
        if self.patterns.len() >= MAX_PATTERN_ENTRIES {
            self.patterns.clear();
            self.clears += 1;
        }
        self.patterns.insert((slot, bits), score);
    }

    /// Anchor a server's verdict at the inputs it was (actually) evaluated
    /// at. Deliberately *not* called on incremental hits: re-anchoring on a
    /// skipped evaluation would let a slow drift stay forever within epsilon
    /// of a moving anchor and never re-evaluate.
    pub(crate) fn store_verdict(
        &mut self,
        slot: u32,
        server: ServerId,
        bits: [u64; 10],
        lanes: [f64; 10],
        score: f64,
    ) {
        if self.verdicts.len() >= MAX_VERDICT_ENTRIES {
            self.verdicts.clear();
            self.clears += 1;
        }
        self.verdicts
            .insert((slot, server), Verdict { bits, lanes, score });
    }

    /// Current counters and sizes.
    pub(crate) fn stats(&self) -> ScoreCacheStats {
        ScoreCacheStats {
            pattern_hits: self.pattern_hits,
            incremental_hits: self.incremental_hits,
            misses: self.misses,
            clears: self.clears,
            pattern_entries: self.patterns.len(),
            verdict_entries: self.verdicts.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: [u64; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
    const LANES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    #[test]
    fn pattern_memo_hits_and_epoch_clears() {
        let mut cache = ScoreCache::default();
        cache.sync_revision(7);
        let slot = cache.engine_slot(ActionKind::Move, "");
        assert_eq!(cache.pattern_lookup(slot, &BITS), None);
        cache.insert_pattern(slot, BITS, 0.75);
        assert_eq!(cache.pattern_lookup(slot, &BITS), Some(0.75));
        // Same revision: entries survive.
        cache.sync_revision(7);
        assert_eq!(cache.pattern_lookup(slot, &BITS), Some(0.75));
        // Landscape changed: flushed.
        cache.sync_revision(8);
        assert_eq!(cache.pattern_lookup(slot, &BITS), None);
        let stats = cache.stats();
        assert_eq!(stats.pattern_hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.clears, 1);
    }

    #[test]
    fn engine_slots_separate_actions_and_service_keys() {
        let mut cache = ScoreCache::default();
        let a = cache.engine_slot(ActionKind::Move, "");
        let b = cache.engine_slot(ActionKind::ScaleUp, "");
        let c = cache.engine_slot(ActionKind::Move, "DB");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cache.engine_slot(ActionKind::Move, ""));
        cache.insert_pattern(a, BITS, 0.5);
        assert_eq!(cache.pattern_lookup(b, &BITS), None, "slots are isolated");
    }

    #[test]
    fn incremental_gate_is_exact_at_zero_epsilon() {
        let mut cache = ScoreCache::default();
        let slot = cache.engine_slot(ActionKind::Move, "");
        let server = ServerId::new(3);
        cache.store_verdict(slot, server, BITS, LANES, 0.6);
        assert_eq!(
            cache.incremental_lookup(slot, server, &BITS, &LANES, 0.0),
            Some(0.6)
        );
        let mut moved_bits = BITS;
        moved_bits[0] ^= 1;
        assert_eq!(
            cache.incremental_lookup(slot, server, &moved_bits, &LANES, 0.0),
            None,
            "any bit change defeats the exact gate"
        );
    }

    #[test]
    fn incremental_gate_tolerates_small_moves_at_nonzero_epsilon() {
        let mut cache = ScoreCache::default();
        let slot = cache.engine_slot(ActionKind::Move, "");
        let server = ServerId::new(3);
        cache.store_verdict(slot, server, BITS, LANES, 0.6);
        let mut nearby = LANES;
        nearby[0] += 0.005;
        let mut far = LANES;
        far[4] += 0.5;
        let nearby_bits = [0u64; 10]; // bits are ignored at nonzero epsilon
        assert_eq!(
            cache.incremental_lookup(slot, server, &nearby_bits, &nearby, 0.01),
            Some(0.6)
        );
        assert_eq!(
            cache.incremental_lookup(slot, server, &nearby_bits, &far, 0.01),
            None
        );
    }

    #[test]
    fn capacity_overflow_flushes_instead_of_growing() {
        let mut cache = ScoreCache::default();
        let slot = cache.engine_slot(ActionKind::Move, "");
        for i in 0..(MAX_PATTERN_ENTRIES + 10) as u64 {
            let mut bits = BITS;
            bits[0] = i;
            cache.insert_pattern(slot, bits, 0.5);
        }
        assert!(cache.stats().pattern_entries <= MAX_PATTERN_ENTRIES);
        assert!(cache.stats().clears >= 1);
    }
}
