//! Cross-trigger fuzzy-score caching for host ranking.
//!
//! The server-selection score is a pure function of the ten crisp
//! [`crate::inputs::ServerInputs`] lanes and the engine (action kind +
//! service-specific rule base, if any). Two layers exploit that:
//!
//! - a **pattern memo** keyed on the exact `[u64; 10]` bit pattern of the
//!   lanes — a large pool is mostly identical idle servers, which collapse
//!   to one engine evaluation per distinct tier/load combination. Because
//!   the score depends on nothing but the engine and the bit pattern, the
//!   memo is *revision-independent*: it survives landscape mutations and
//!   only empties on engine swaps ([`ScoreCache::clear`]) or capacity
//!   overflow. A hit returns the exact bits an engine evaluation of the
//!   same pattern produced, so persistence cannot perturb outputs;
//! - an **incremental verdict layer** keyed per server: the lanes and score
//!   of the server's last evaluation. When every lane moved less than a
//!   configurable epsilon since then, re-inference is skipped and the
//!   cached verdict reused. At epsilon 0 (the default) the gate is exact
//!   bit equality, so reuse is trivially bit-identical; a non-zero epsilon
//!   is the opt-in approximate fast mode. Unlike the pattern memo this
//!   layer is epoch-cleared: any landscape mutation (seen via
//!   [`autoglobe_landscape::Landscape::revision`]) flushes it, keeping the
//!   per-server anchors scoped to one allocation.
//!
//! Both layers are bounded; overflowing the size caps below flushes the
//! overflowing layer.

use autoglobe_landscape::{ActionKind, ServerId};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// A deterministic multiply-rotate hasher for the cache maps.
///
/// The keys here are content-derived (`[u64; 10]` input lanes, server ids,
/// engine slots), not attacker-controlled, and map iteration order is never
/// observed — only `get`/`insert` — so SipHash's DoS resistance buys
/// nothing while dominating lookup cost on the 88-byte pattern keys. One
/// multiply + rotate per word is plenty of diffusion for bit patterns of
/// load values, and being deterministic it cannot perturb reproducibility.
#[derive(Default)]
pub(crate) struct FastHasher(u64);

impl FastHasher {
    const SEED: u64 = 0x517c_c1b7_2722_0a95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` over the deterministic [`FastHasher`].
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// Pattern-memo capacity; overflow clears the memo (a full clear is cheaper
/// and simpler than eviction, and patterns re-memoize in one pass).
const MAX_PATTERN_ENTRIES: usize = 1 << 16;

/// Verdict-layer capacity (naturally bounded by servers × engines, but
/// capped defensively all the same).
const MAX_VERDICT_ENTRIES: usize = 1 << 18;

/// Counters and sizes of the controller's score cache, for tests, consoles
/// and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoreCacheStats {
    /// Lookups answered by the exact-bit-pattern memo.
    pub pattern_hits: u64,
    /// Lookups answered by the per-server epsilon-gated verdict layer.
    pub incremental_hits: u64,
    /// Lookups that fell through to engine evaluation.
    pub misses: u64,
    /// Times the cache was flushed (landscape revision change, manual
    /// clear, or capacity overflow).
    pub clears: u64,
    /// Live pattern-memo entries.
    pub pattern_entries: usize,
    /// Live verdict entries.
    pub verdict_entries: usize,
}

/// A server's last evaluated inputs (bits for the exact gate, values for
/// the epsilon gate) and the score they produced. `epoch` stamps the flush
/// generation the verdict was stored in; a stale stamp reads as absent, so
/// flushing the dense layer is one counter bump instead of a wipe.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    epoch: u64,
    bits: [u64; 10],
    lanes: [f64; 10],
    score: f64,
}

impl Verdict {
    /// A never-valid slot filler: epoch 0 predates the first live epoch.
    const EMPTY: Verdict = Verdict {
        epoch: 0,
        bits: [0; 10],
        lanes: [0.0; 10],
        score: 0.0,
    };
}

/// The bounded, epoch-cleared score cache held by the controller.
#[derive(Debug)]
pub(crate) struct ScoreCache {
    /// Landscape revision the cached entries were computed against.
    revision: Option<u64>,
    /// Interned `(action kind, engine key)` pairs; index = engine slot.
    /// Engine keys follow [`crate::selection::ServerSelector::engine_key`],
    /// so services sharing the default-base engine share cache entries too.
    engines: Vec<(ActionKind, String)>,
    patterns: FastMap<(u32, [u64; 10]), f64>,
    /// Dense verdict layer: `verdicts[slot][server.index()]`, epoch-stamped.
    /// Ranking touches every eligible server each call, so the layer is hit
    /// and re-anchored thousands of times per tick — a direct array access
    /// beats hashing an 88-byte key on both sides, and an epoch bump makes
    /// the per-revision flush free instead of a full-map wipe.
    verdicts: Vec<Vec<Verdict>>,
    /// Flush generation; only verdicts stamped with it are live.
    epoch: u64,
    /// Live verdict count (entries stamped with the current epoch).
    verdict_count: usize,
    pattern_hits: u64,
    incremental_hits: u64,
    misses: u64,
    clears: u64,
}

impl Default for ScoreCache {
    fn default() -> Self {
        ScoreCache {
            revision: None,
            engines: Vec::new(),
            patterns: FastMap::default(),
            verdicts: Vec::new(),
            // Epoch 0 is reserved for [`Verdict::EMPTY`]; live epochs start
            // above it so freshly grown slots never read as valid.
            epoch: 1,
            verdict_count: 0,
            pattern_hits: 0,
            incremental_hits: 0,
            misses: 0,
            clears: 0,
        }
    }
}

impl ScoreCache {
    /// Flush the per-server verdict layer if the landscape changed since its
    /// anchors were stored. The pattern memo deliberately survives: a score
    /// is a pure function of engine slot and input bits, so a pattern entry
    /// stays exact across any allocation change, while verdict anchors are
    /// per-server state that should not outlive the allocation they
    /// described.
    pub(crate) fn sync_revision(&mut self, revision: u64) {
        if self.revision != Some(revision) {
            if self.revision.is_some() {
                self.clears += 1;
            }
            self.flush_verdicts();
            self.revision = Some(revision);
        }
    }

    /// Invalidate every verdict by moving to the next epoch; storage is
    /// kept for reuse.
    fn flush_verdicts(&mut self) {
        self.epoch += 1;
        self.verdict_count = 0;
    }

    /// Unconditionally flush all cached scores (e.g. after swapping rule
    /// bases or engine configuration).
    pub(crate) fn clear(&mut self) {
        self.patterns.clear();
        self.flush_verdicts();
        self.revision = None;
        self.clears += 1;
    }

    /// Intern an `(action, engine key)` pair into a compact slot id.
    pub(crate) fn engine_slot(&mut self, kind: ActionKind, engine_key: &str) -> u32 {
        if let Some(i) = self
            .engines
            .iter()
            .position(|(k, s)| *k == kind && s == engine_key)
        {
            return i as u32;
        }
        self.engines.push((kind, engine_key.to_string()));
        (self.engines.len() - 1) as u32
    }

    /// The incremental layer: the cached verdict for `server`, if its lanes
    /// moved less than `epsilon` since the last evaluation (exact bit
    /// equality at `epsilon == 0`).
    pub(crate) fn incremental_lookup(
        &mut self,
        slot: u32,
        server: ServerId,
        bits: &[u64; 10],
        lanes: &[f64; 10],
        epsilon: f64,
    ) -> Option<f64> {
        let verdict = self
            .verdicts
            .get(slot as usize)?
            .get(server.index())
            .filter(|v| v.epoch == self.epoch)?;
        let within = if epsilon == 0.0 {
            verdict.bits == *bits
        } else {
            verdict
                .lanes
                .iter()
                .zip(lanes.iter())
                .all(|(old, new)| (old - new).abs() <= epsilon)
        };
        if within {
            self.incremental_hits += 1;
            Some(verdict.score)
        } else {
            None
        }
    }

    /// The pattern memo: the score of an exact input bit pattern, if any
    /// server with these inputs was evaluated this epoch.
    pub(crate) fn pattern_lookup(&mut self, slot: u32, bits: &[u64; 10]) -> Option<f64> {
        match self.patterns.get(&(slot, *bits)) {
            Some(&score) => {
                self.pattern_hits += 1;
                Some(score)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Record a freshly evaluated pattern.
    pub(crate) fn insert_pattern(&mut self, slot: u32, bits: [u64; 10], score: f64) {
        if self.patterns.len() >= MAX_PATTERN_ENTRIES {
            self.patterns.clear();
            self.clears += 1;
        }
        self.patterns.insert((slot, bits), score);
    }

    /// Anchor a server's verdict at the inputs it was (actually) evaluated
    /// at. Deliberately *not* called on incremental hits: re-anchoring on a
    /// skipped evaluation would let a slow drift stay forever within epsilon
    /// of a moving anchor and never re-evaluate.
    pub(crate) fn store_verdict(
        &mut self,
        slot: u32,
        server: ServerId,
        bits: [u64; 10],
        lanes: [f64; 10],
        score: f64,
    ) {
        if self.verdict_count >= MAX_VERDICT_ENTRIES {
            self.flush_verdicts();
            self.clears += 1;
        }
        let slot = slot as usize;
        if self.verdicts.len() <= slot {
            self.verdicts.resize(slot + 1, Vec::new());
        }
        let lane = &mut self.verdicts[slot];
        let at = server.index();
        if lane.len() <= at {
            lane.resize(at + 1, Verdict::EMPTY);
        }
        if lane[at].epoch != self.epoch {
            self.verdict_count += 1;
        }
        lane[at] = Verdict {
            epoch: self.epoch,
            bits,
            lanes,
            score,
        };
    }

    /// Current counters and sizes.
    pub(crate) fn stats(&self) -> ScoreCacheStats {
        ScoreCacheStats {
            pattern_hits: self.pattern_hits,
            incremental_hits: self.incremental_hits,
            misses: self.misses,
            clears: self.clears,
            pattern_entries: self.patterns.len(),
            verdict_entries: self.verdict_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: [u64; 10] = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
    const LANES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    #[test]
    fn pattern_memo_survives_revisions_while_verdicts_flush() {
        let mut cache = ScoreCache::default();
        cache.sync_revision(7);
        let slot = cache.engine_slot(ActionKind::Move, "");
        let server = ServerId::new(3);
        assert_eq!(cache.pattern_lookup(slot, &BITS), None);
        cache.insert_pattern(slot, BITS, 0.75);
        cache.store_verdict(slot, server, BITS, LANES, 0.75);
        assert_eq!(cache.pattern_lookup(slot, &BITS), Some(0.75));
        // Same revision: both layers survive.
        cache.sync_revision(7);
        assert_eq!(cache.pattern_lookup(slot, &BITS), Some(0.75));
        assert_eq!(
            cache.incremental_lookup(slot, server, &BITS, &LANES, 0.0),
            Some(0.75)
        );
        // Landscape changed: verdict anchors flush, the pure-function
        // pattern memo stays warm.
        cache.sync_revision(8);
        assert_eq!(
            cache.incremental_lookup(slot, server, &BITS, &LANES, 0.0),
            None
        );
        assert_eq!(cache.pattern_lookup(slot, &BITS), Some(0.75));
        let stats = cache.stats();
        assert_eq!(stats.clears, 1);
        assert_eq!(stats.verdict_entries, 0);
        assert_eq!(stats.pattern_entries, 1);
        // Engine swap: everything goes.
        cache.clear();
        assert_eq!(cache.pattern_lookup(slot, &BITS), None);
    }

    #[test]
    fn engine_slots_separate_actions_and_service_keys() {
        let mut cache = ScoreCache::default();
        let a = cache.engine_slot(ActionKind::Move, "");
        let b = cache.engine_slot(ActionKind::ScaleUp, "");
        let c = cache.engine_slot(ActionKind::Move, "DB");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cache.engine_slot(ActionKind::Move, ""));
        cache.insert_pattern(a, BITS, 0.5);
        assert_eq!(cache.pattern_lookup(b, &BITS), None, "slots are isolated");
    }

    #[test]
    fn incremental_gate_is_exact_at_zero_epsilon() {
        let mut cache = ScoreCache::default();
        let slot = cache.engine_slot(ActionKind::Move, "");
        let server = ServerId::new(3);
        cache.store_verdict(slot, server, BITS, LANES, 0.6);
        assert_eq!(
            cache.incremental_lookup(slot, server, &BITS, &LANES, 0.0),
            Some(0.6)
        );
        let mut moved_bits = BITS;
        moved_bits[0] ^= 1;
        assert_eq!(
            cache.incremental_lookup(slot, server, &moved_bits, &LANES, 0.0),
            None,
            "any bit change defeats the exact gate"
        );
    }

    #[test]
    fn incremental_gate_tolerates_small_moves_at_nonzero_epsilon() {
        let mut cache = ScoreCache::default();
        let slot = cache.engine_slot(ActionKind::Move, "");
        let server = ServerId::new(3);
        cache.store_verdict(slot, server, BITS, LANES, 0.6);
        let mut nearby = LANES;
        nearby[0] += 0.005;
        let mut far = LANES;
        far[4] += 0.5;
        let nearby_bits = [0u64; 10]; // bits are ignored at nonzero epsilon
        assert_eq!(
            cache.incremental_lookup(slot, server, &nearby_bits, &nearby, 0.01),
            Some(0.6)
        );
        assert_eq!(
            cache.incremental_lookup(slot, server, &nearby_bits, &far, 0.01),
            None
        );
    }

    #[test]
    fn capacity_overflow_flushes_instead_of_growing() {
        let mut cache = ScoreCache::default();
        let slot = cache.engine_slot(ActionKind::Move, "");
        for i in 0..(MAX_PATTERN_ENTRIES + 10) as u64 {
            let mut bits = BITS;
            bits[0] = i;
            cache.insert_pattern(slot, bits, 0.5);
        }
        assert!(cache.stats().pattern_entries <= MAX_PATTERN_ENTRIES);
        assert!(cache.stats().clears >= 1);
    }
}
