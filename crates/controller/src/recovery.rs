//! Self-healing: remedying failure situations.
//!
//! "The controller also reacts upon idle situations. ... Failure situations
//! like a program crash are remedied for example with a restart."
//! (Section 2.) Unlike load triggers, a failure needs no watch time and no
//! applicability threshold — the crashed instance is already gone; the only
//! fuzzy decision left is *where* to restart it, which reuses the
//! server-selection controller with the placement rule base.
//!
//! A crashed *instance* restarts on its own host when that host can still
//! take it, else on the best-scoring other host. A failed *server* is marked
//! unavailable and every instance it ran is restarted elsewhere; instances
//! with no feasible host are reported as lost via an administrator alert.

use crate::controller::AutoGlobeController;
use crate::inputs::{LoadView, ServerInputs};
use crate::log::ControllerEvent;
use autoglobe_landscape::{ActionKind, InstanceId, Landscape, ServerId, ServiceId};
use autoglobe_monitor::{FailureEvent, FailureKind, SimTime, TriggerKind};

/// The outcome of handling one failure.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// `(crashed instance, restarted instance, host)` per recovery.
    pub recovered: Vec<(InstanceId, InstanceId, ServerId)>,
    /// Instances that could not be restarted anywhere, with their service —
    /// so callers can queue them for a retry once capacity returns.
    pub lost: Vec<(InstanceId, ServiceId)>,
    /// Everything logged while handling the failure.
    pub events: Vec<ControllerEvent>,
}

impl AutoGlobeController {
    /// Handle a failure notification (Figure 2's failure path).
    ///
    /// Restarts bypass the declarative *action* constraints — a service that
    /// forbids `move` still gets its crashed instance restarted, exactly as
    /// a human administrator would restart a crashed SAP work process —
    /// but respect all *placement* constraints (exclusivity, minimum
    /// performance index, memory, availability).
    pub fn handle_failure(
        &mut self,
        event: &FailureEvent,
        landscape: &mut Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> RecoveryOutcome {
        let mut outcome = RecoveryOutcome::default();
        match event.kind {
            FailureKind::InstanceCrashed(instance) => {
                self.recover_instance(instance, landscape, loads, now, &mut outcome);
            }
            FailureKind::ServerFailed(server) => {
                let _ = landscape.set_available(server, false);
                for instance in landscape.instances_on(server) {
                    self.recover_instance(instance, landscape, loads, now, &mut outcome);
                }
            }
        }
        outcome
    }

    fn recover_instance(
        &mut self,
        crashed: InstanceId,
        landscape: &mut Landscape,
        loads: &dyn LoadView,
        now: SimTime,
        outcome: &mut RecoveryOutcome,
    ) {
        let Ok(instance) = landscape.instance(crashed) else {
            return;
        };
        let service = instance.service;
        let old_host = instance.server;
        // The crash already terminated the process; reflect that first.
        let _ = landscape.stop_instance(crashed);

        let target = self.restart_target(service, old_host, landscape, loads, now);
        match target {
            Some(host) => {
                let new_instance = landscape
                    .start_instance(service, host)
                    .expect("restart target was validated");
                let e = ControllerEvent::Recovered {
                    time: now,
                    service,
                    old_instance: crashed,
                    new_instance,
                    server: host,
                };
                self.push_log(e.clone());
                outcome.events.push(e);
                outcome.recovered.push((crashed, new_instance, host));
            }
            None => {
                let e = ControllerEvent::AdministratorAlert {
                    time: now,
                    trigger: TriggerKind::ServiceOverloaded,
                    message: format!(
                        "instance {crashed} of {service} lost: no feasible host for a restart"
                    ),
                };
                self.push_log(e.clone());
                outcome.events.push(e);
                outcome.lost.push((crashed, service));
            }
        }
    }

    /// Where to restart: the old host when it can still take the instance,
    /// otherwise the best placement-scored feasible host.
    fn restart_target(
        &mut self,
        service: ServiceId,
        old_host: ServerId,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Option<ServerId> {
        if landscape.can_host(service, old_host) {
            return Some(old_host);
        }
        self.best_restart_host(service, landscape, loads, now)
    }

    /// The best feasible host for restarting an instance of `service`, or
    /// `None` only when no server can take it at all.
    ///
    /// A host that cannot be gathered or scored (e.g. a broken
    /// service-specific placement rule base) is skipped, not allowed to
    /// abort the whole search; if *no* candidate could be scored the first
    /// feasible host wins — losing an instance is strictly worse than an
    /// unscored placement.
    pub fn best_restart_host(
        &mut self,
        service: ServiceId,
        landscape: &Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Option<ServerId> {
        let service_name = landscape.service(service).ok()?.name.clone();
        let mut best: Option<(ServerId, f64)> = None;
        let mut fallback: Option<ServerId> = None;
        for server in landscape.server_ids() {
            if !landscape.can_host(service, server) {
                continue;
            }
            fallback = fallback.or(Some(server));
            // Protected hosts are still acceptable for recovery — losing an
            // instance is worse than disturbing a protected host — but they
            // score last among equals.
            let penalty = if self
                .protection()
                .is_protected(autoglobe_monitor::Subject::Server(server), now)
            {
                0.5
            } else {
                1.0
            };
            let Some(inputs) = ServerInputs::gather(landscape, loads, server) else {
                continue;
            };
            let Ok(score) =
                self.server_selector_mut()
                    .score(ActionKind::Start, &service_name, &inputs)
            else {
                continue;
            };
            let score = score * penalty;
            if best.as_ref().is_none_or(|&(_, s)| score > s) {
                best = Some((server, score));
            }
        }
        best.map(|(server, _)| server).or(fallback)
    }

    /// Retry the restart of a previously lost instance once capacity may
    /// have returned (a repaired host, a freed exclusive server).
    ///
    /// On success the new instance is started, a
    /// [`ControllerEvent::Recovered`] is logged, and
    /// `(new instance, host)` is returned; with no feasible host the queue
    /// entry stays pending and `None` is returned (silently — the loss was
    /// already alerted when it happened).
    pub fn retry_restart(
        &mut self,
        service: ServiceId,
        old_instance: InstanceId,
        landscape: &mut Landscape,
        loads: &dyn LoadView,
        now: SimTime,
    ) -> Option<(InstanceId, ServerId)> {
        let host = self.best_restart_host(service, landscape, loads, now)?;
        let new_instance = landscape.start_instance(service, host).ok()?;
        let e = ControllerEvent::Recovered {
            time: now,
            service,
            old_instance,
            new_instance,
            server: host,
        };
        self.push_log(e);
        Some((new_instance, host))
    }

    /// Log that a previously failed host finished its repair and rejoined
    /// the pool. Returns the logged event so callers can forward it.
    pub fn note_repaired(&mut self, server: ServerId, now: SimTime) -> ControllerEvent {
        let e = ControllerEvent::Repaired { time: now, server };
        self.push_log(e.clone());
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::TableLoads;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};
    use autoglobe_monitor::Subject;

    struct Fixture {
        landscape: Landscape,
        blade1: ServerId,
        blade2: ServerId,
        big: ServerId,
        app: ServiceId,
        instance: InstanceId,
        loads: TableLoads,
    }

    fn fixture() -> Fixture {
        let mut landscape = Landscape::new();
        let blade1 = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let blade2 = landscape
            .add_server(ServerSpec::fsc_bx600("Blade2"))
            .unwrap();
        let big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        // Immobile service: restarts must work even when no action is allowed.
        let app = landscape
            .add_service(ServiceSpec::new("app", ServiceKind::ApplicationServer).immobile())
            .unwrap();
        let instance = landscape.start_instance(app, blade1).unwrap();
        let mut loads = TableLoads::new();
        loads.set(Subject::Server(blade1), 0.4, 0.3);
        loads.set(Subject::Server(blade2), 0.2, 0.2);
        loads.set(Subject::Server(big), 0.1, 0.1);
        Fixture {
            landscape,
            blade1,
            blade2,
            big,
            app,
            instance,
            loads,
        }
    }

    fn crash(instance: InstanceId) -> FailureEvent {
        FailureEvent {
            kind: FailureKind::InstanceCrashed(instance),
            time: SimTime::from_minutes(90),
        }
    }

    #[test]
    fn crashed_instance_restarts_on_its_own_host() {
        let mut f = fixture();
        let mut c = AutoGlobeController::new();
        let outcome = c.handle_failure(
            &crash(f.instance),
            &mut f.landscape,
            &f.loads,
            SimTime::from_minutes(90),
        );
        assert_eq!(outcome.recovered.len(), 1);
        assert!(outcome.lost.is_empty());
        let (old, new, host) = outcome.recovered[0];
        assert_eq!(old, f.instance);
        assert_ne!(new, f.instance, "a restart is a new process with a new id");
        assert_eq!(host, f.blade1, "same host preferred");
        assert_eq!(f.landscape.instance_count_of(f.app), 1);
        // The event log recorded the recovery.
        assert!(c
            .log()
            .iter()
            .any(|e| matches!(e, ControllerEvent::Recovered { .. })));
    }

    #[test]
    fn server_failure_relocates_all_instances_and_disables_host() {
        let mut f = fixture();
        let second = f.landscape.start_instance(f.app, f.blade1).unwrap();
        let mut c = AutoGlobeController::new();
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(f.blade1),
            time: SimTime::from_hours(2),
        };
        let outcome = c.handle_failure(&event, &mut f.landscape, &f.loads, SimTime::from_hours(2));
        assert_eq!(outcome.recovered.len(), 2);
        assert!(!f.landscape.is_available(f.blade1));
        for &(_, new, host) in &outcome.recovered {
            assert_ne!(host, f.blade1, "failed host cannot receive restarts");
            assert!(f.landscape.instance(new).is_ok());
        }
        let _ = second;
        assert_eq!(f.landscape.instance_count_of(f.app), 2);
        // Subsequent placements avoid the failed host too.
        assert!(!f.landscape.can_host(f.app, f.blade1));
        // Repair restores it.
        f.landscape.set_available(f.blade1, true).unwrap();
        assert!(f.landscape.can_host(f.app, f.blade1));
    }

    #[test]
    fn restart_respects_placement_constraints() {
        // Exclusive DB on its host: the crashed app instance must not land
        // there even if it is the only idle host.
        let mut f = fixture();
        let db = f
            .landscape
            .add_service(ServiceSpec::new("db", ServiceKind::Database).with_exclusive(true))
            .unwrap();
        f.landscape.start_instance(db, f.big).unwrap();
        // Fail the app's host.
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(f.blade1),
            time: SimTime::from_hours(1),
        };
        let mut c = AutoGlobeController::new();
        let outcome = c.handle_failure(&event, &mut f.landscape, &f.loads, SimTime::from_hours(1));
        assert_eq!(outcome.recovered.len(), 1);
        assert_eq!(
            outcome.recovered[0].2, f.blade2,
            "exclusive Big is off-limits"
        );
    }

    #[test]
    fn unrecoverable_instance_is_reported_lost() {
        let mut f = fixture();
        // Fail every other host first.
        f.landscape.set_available(f.blade2, false).unwrap();
        f.landscape.set_available(f.big, false).unwrap();
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(f.blade1),
            time: SimTime::from_hours(1),
        };
        let mut c = AutoGlobeController::new();
        let outcome = c.handle_failure(&event, &mut f.landscape, &f.loads, SimTime::from_hours(1));
        assert!(outcome.recovered.is_empty());
        assert_eq!(outcome.lost, vec![(f.instance, f.app)]);
        assert_eq!(f.landscape.instance_count_of(f.app), 0);
        assert!(outcome
            .events
            .iter()
            .any(|e| matches!(e, ControllerEvent::AdministratorAlert { .. })));
    }

    #[test]
    fn unscorable_candidates_do_not_abort_the_restart_search() {
        // Regression: a service-specific placement rule base that fails to
        // build (here: a rule over an action-selection-only variable) makes
        // `ServerSelector::score` return Err for every host. The old code
        // bailed out of the whole candidate loop with `.ok()?` and reported
        // the instance lost even though feasible hosts existed; now the
        // broken candidate is skipped and the first feasible host wins.
        let mut f = fixture();
        let mut bases = crate::rulebase::RuleBases::paper_defaults();
        bases.add_service_action_rules(
            ActionKind::Start,
            "app",
            autoglobe_fuzzy::parse_rules("IF serviceLoad IS high THEN score IS applicable")
                .expect("parses fine; fails engine validation"),
        );
        let mut c = AutoGlobeController::with_rule_bases(
            bases,
            crate::controller::ControllerConfig::default(),
        );
        // The instance's own host fails, so restart_target must search.
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(f.blade1),
            time: SimTime::from_hours(1),
        };
        let outcome = c.handle_failure(&event, &mut f.landscape, &f.loads, SimTime::from_hours(1));
        assert!(
            outcome.lost.is_empty(),
            "feasible hosts exist; nothing may be reported lost: {outcome:?}"
        );
        assert_eq!(outcome.recovered.len(), 1);
        assert_ne!(outcome.recovered[0].2, f.blade1);
    }

    #[test]
    fn retry_restart_succeeds_once_capacity_returns() {
        let mut f = fixture();
        // Everything down: the failure loses the instance.
        f.landscape.set_available(f.blade2, false).unwrap();
        f.landscape.set_available(f.big, false).unwrap();
        let event = FailureEvent {
            kind: FailureKind::ServerFailed(f.blade1),
            time: SimTime::from_hours(1),
        };
        let mut c = AutoGlobeController::new();
        let outcome = c.handle_failure(&event, &mut f.landscape, &f.loads, SimTime::from_hours(1));
        assert_eq!(outcome.lost.len(), 1);
        let (old_instance, service) = outcome.lost[0];

        // While everything is still down the retry stays pending…
        assert!(c
            .retry_restart(
                service,
                old_instance,
                &mut f.landscape,
                &f.loads,
                SimTime::from_hours(2)
            )
            .is_none());

        // …and succeeds as soon as one host repairs.
        f.landscape.set_available(f.blade2, true).unwrap();
        let (new_instance, host) = c
            .retry_restart(
                service,
                old_instance,
                &mut f.landscape,
                &f.loads,
                SimTime::from_hours(3),
            )
            .expect("repaired host takes the restart");
        assert_eq!(host, f.blade2);
        assert!(f.landscape.instance(new_instance).is_ok());
        assert!(c
            .log()
            .iter()
            .any(|e| matches!(e, ControllerEvent::Recovered { .. })));
    }

    #[test]
    fn note_repaired_is_logged() {
        let f = fixture();
        let mut c = AutoGlobeController::new();
        let e = c.note_repaired(f.blade1, SimTime::from_hours(4));
        assert!(matches!(e, ControllerEvent::Repaired { server, .. } if server == f.blade1));
        assert_eq!(c.log(), &[e]);
    }

    #[test]
    fn unknown_instance_crash_is_a_no_op() {
        let mut f = fixture();
        let mut c = AutoGlobeController::new();
        let outcome = c.handle_failure(
            &crash(InstanceId::new(999)),
            &mut f.landscape,
            &f.loads,
            SimTime::ZERO,
        );
        assert!(outcome.recovered.is_empty());
        assert!(outcome.lost.is_empty());
    }
}
