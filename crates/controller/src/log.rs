//! Controller event log: executed actions, alerts and notifications.
//!
//! "In the automatic mode, the actions are logged and then executed"
//! (Section 4.3); the message view of the controller console (Figure 8)
//! renders this log.

use autoglobe_landscape::{Action, ApplyOutcome};
use autoglobe_monitor::{SimTime, TriggerKind};
use std::fmt;

/// Record of one successfully executed action.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionRecord {
    /// When the action executed.
    pub time: SimTime,
    /// The trigger that led to it.
    pub trigger: TriggerKind,
    /// The executed action.
    pub action: Action,
    /// Applicability the fuzzy controller assigned (0–1).
    pub applicability: f64,
    /// Host score from server selection, if a target was chosen.
    pub host_score: Option<f64>,
    /// What the landscape reported.
    pub outcome: ApplyOutcome,
}

impl fmt::Display for ActionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} ⇒ {} ({:.0}%",
            self.time,
            self.trigger,
            self.action,
            self.applicability * 100.0
        )?;
        if let Some(score) = self.host_score {
            write!(f, ", host score {:.0}%", score * 100.0)?;
        }
        write!(f, ")")
    }
}

/// Everything the controller reports to the log / console.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerEvent {
    /// An action was executed.
    Executed(ActionRecord),
    /// A candidate action failed constraint verification and was skipped
    /// (Figure 6's "failure" edges).
    Rejected {
        /// When.
        time: SimTime,
        /// The rejected action.
        action: Action,
        /// Why it was rejected.
        reason: String,
    },
    /// No action/host combination had sufficient applicability — "the
    /// controller requests human interaction by alerting the system
    /// administrator" (Section 4.3).
    AdministratorAlert {
        /// When.
        time: SimTime,
        /// The unresolved trigger.
        trigger: TriggerKind,
        /// Description of the stuck situation.
        message: String,
    },
    /// A trigger arrived for a protected subject and was ignored.
    SuppressedByProtection {
        /// When.
        time: SimTime,
        /// The suppressed trigger.
        trigger: TriggerKind,
        /// Until when the subject is protected.
        protected_until: SimTime,
    },
    /// Semi-automatic mode queued an action for confirmation.
    PendingConfirmation {
        /// When.
        time: SimTime,
        /// The queued action.
        action: Action,
    },
    /// Self-healing: a crashed instance was restarted ("Failure situations
    /// like a program crash are remedied for example with a restart").
    Recovered {
        /// When.
        time: SimTime,
        /// The service whose instance crashed.
        service: autoglobe_landscape::ServiceId,
        /// The crashed instance.
        old_instance: autoglobe_landscape::InstanceId,
        /// The restarted instance.
        new_instance: autoglobe_landscape::InstanceId,
        /// The host the restart landed on.
        server: autoglobe_landscape::ServerId,
    },
    /// A previously failed host finished its repair and rejoined the pool.
    Repaired {
        /// When.
        time: SimTime,
        /// The host that came back.
        server: autoglobe_landscape::ServerId,
    },
}

impl ControllerEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            ControllerEvent::Executed(r) => r.time,
            ControllerEvent::Rejected { time, .. }
            | ControllerEvent::AdministratorAlert { time, .. }
            | ControllerEvent::SuppressedByProtection { time, .. }
            | ControllerEvent::PendingConfirmation { time, .. }
            | ControllerEvent::Recovered { time, .. }
            | ControllerEvent::Repaired { time, .. } => *time,
        }
    }
}

impl fmt::Display for ControllerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerEvent::Executed(r) => write!(f, "{r}"),
            ControllerEvent::Rejected { time, action, reason } => {
                write!(f, "[{time}] rejected {action}: {reason}")
            }
            ControllerEvent::AdministratorAlert { time, trigger, message } => {
                write!(f, "[{time}] ALERT ({trigger}): {message}")
            }
            ControllerEvent::SuppressedByProtection {
                time,
                trigger,
                protected_until,
            } => write!(
                f,
                "[{time}] {trigger} suppressed (protected until {protected_until})"
            ),
            ControllerEvent::PendingConfirmation { time, action } => {
                write!(f, "[{time}] awaiting confirmation: {action}")
            }
            ControllerEvent::Recovered {
                time,
                service,
                old_instance,
                new_instance,
                server,
            } => write!(
                f,
                "[{time}] recovered {service}: {old_instance} crashed, restarted as {new_instance} on {server}"
            ),
            ControllerEvent::Repaired { time, server } => {
                write!(f, "[{time}] {server} repaired and back in the pool")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_landscape::{InstanceId, ServerId};

    #[test]
    fn record_display() {
        let r = ActionRecord {
            time: SimTime::from_minutes(125),
            trigger: TriggerKind::ServerOverloaded,
            action: Action::Move {
                instance: InstanceId::new(1),
                target: ServerId::new(2),
            },
            applicability: 0.85,
            host_score: Some(0.6),
            outcome: ApplyOutcome::Moved {
                instance: InstanceId::new(1),
                from: ServerId::new(0),
                to: ServerId::new(2),
            },
        };
        assert_eq!(
            r.to_string(),
            "[02:05] serverOverloaded ⇒ move inst#1 to srv#2 (85%, host score 60%)"
        );
    }

    #[test]
    fn event_time_extraction() {
        let e = ControllerEvent::AdministratorAlert {
            time: SimTime::from_hours(3),
            trigger: TriggerKind::ServiceOverloaded,
            message: "no host".into(),
        };
        assert_eq!(e.time(), SimTime::from_hours(3));
        assert!(e.to_string().contains("ALERT"));
    }

    #[test]
    fn repaired_event_display() {
        let e = ControllerEvent::Repaired {
            time: SimTime::from_minutes(150),
            server: ServerId::new(3),
        };
        assert_eq!(e.time(), SimTime::from_minutes(150));
        assert_eq!(e.to_string(), "[02:30] srv#3 repaired and back in the pool");
    }

    #[test]
    fn suppressed_event_display() {
        let e = ControllerEvent::SuppressedByProtection {
            time: SimTime::from_minutes(5),
            trigger: TriggerKind::ServerIdle,
            protected_until: SimTime::from_minutes(30),
        };
        assert_eq!(
            e.to_string(),
            "[00:05] serverIdle suppressed (protected until 00:30)"
        );
    }
}
