//! Dense per-server aggregates for sublinear host ranking.
//!
//! [`Landscape::can_host`] and [`crate::ServerInputs::gather`] each scan
//! the full instance table, so ranking hosts for one trigger used to cost
//! O(servers × instances) — superlinear in landscape size and the latent
//! blowup the scale ladder exposed at the 1,000-server rung. [`HostIndex`]
//! folds the instance table once into dense per-server arrays (instance
//! count, memory in use, distinct resident services), after which every
//! per-server constraint question is O(log residents) or O(1) and a whole
//! trigger decision is O(instances + servers).
//!
//! The index answers exactly the same questions as the exhaustive scans —
//! [`AutoGlobeController::rank_hosts_indexed`] is proven bit-identical to
//! [`AutoGlobeController::rank_hosts_exhaustive`] by tests and by the
//! `experiments scale` harness at every ladder rung.
//!
//! [`AutoGlobeController::rank_hosts_indexed`]: crate::AutoGlobeController::rank_hosts_indexed
//! [`AutoGlobeController::rank_hosts_exhaustive`]: crate::AutoGlobeController::rank_hosts_exhaustive
//! [`Landscape::can_host`]: autoglobe_landscape::Landscape::can_host

use autoglobe_landscape::{InstanceId, Landscape, ServerId, ServiceId};

/// Per-server aggregates of the current allocation, built in two passes
/// over the instance table.
///
/// The per-server and per-service id lists use a CSR layout (one flat id
/// array plus prefix-sum offsets) instead of a `Vec` per server: the
/// controller rebuilds the index whenever the landscape revision moves,
/// which happens several times per tick under churn, and a build that
/// allocates O(servers) small vectors costs more than the scans it
/// replaces. The flat layout keeps a rebuild at a handful of exact-sized
/// allocations.
#[derive(Debug, Clone, Default)]
pub struct HostIndex {
    /// Instances on each server.
    instance_count: Vec<u32>,
    /// Memory in use on each server, MB (order-independent u64 sum).
    mem_used: Vec<u64>,
    /// How many distinct resident services on each server are exclusive.
    exclusive_residents: Vec<u32>,
    /// CSR offsets into `server_instances`, len `n + 1`.
    server_starts: Vec<u32>,
    /// Instance ids grouped by server, each group ascending — the id order
    /// [`Landscape::instances_on`] produces.
    ///
    /// [`Landscape::instances_on`]: autoglobe_landscape::Landscape::instances_on
    server_instances: Vec<InstanceId>,
    /// CSR offsets into `residents`, len `n + 1`.
    resident_starts: Vec<u32>,
    /// Distinct services resident on each server, each group ascending.
    residents: Vec<ServiceId>,
    /// CSR offsets into `service_instances`, len `services + 1`.
    service_starts: Vec<u32>,
    /// Instance ids grouped by service, each group ascending — the id
    /// order [`Landscape::instances_of`] produces.
    ///
    /// [`Landscape::instances_of`]: autoglobe_landscape::Landscape::instances_of
    service_instances: Vec<InstanceId>,
    /// Build-time temporaries retained across [`HostIndex::rebuild`] calls
    /// so a revision bump costs refills, not reallocations.
    scratch: BuildScratch,
}

/// Reusable build-time buffers. Lengths are meaningless between builds;
/// every [`HostIndex::rebuild`] resets them before use.
#[derive(Debug, Clone, Default)]
struct BuildScratch {
    /// `memory_per_instance_mb` per service index (spec-table hoist).
    mem_per_service: Vec<u64>,
    /// `exclusive` flag per service index (spec-table hoist).
    exclusive: Vec<bool>,
    /// Instances of each service (prefix-sum input).
    per_service: Vec<u32>,
    /// One flat copy of the instance table, in ascending-id walk order —
    /// the fill pass re-reads this instead of walking the table again.
    table: Vec<(ServerId, ServiceId, InstanceId)>,
    /// Resident service of each `server_instances` slot (pre-dedup).
    server_services: Vec<ServiceId>,
    /// Per-server fill cursor into `server_instances`.
    server_cursor: Vec<u32>,
    /// Per-service fill cursor into `service_instances`.
    service_cursor: Vec<u32>,
    /// Sort + dedup workspace for one server's resident group.
    dedup: Vec<ServiceId>,
}

/// Reset `v` to `n` copies of `fill`, reusing its allocation.
fn refill<T: Clone>(v: &mut Vec<T>, n: usize, fill: T) {
    v.clear();
    v.resize(n, fill);
}

impl HostIndex {
    /// Build the index for the landscape's current allocation.
    pub fn build(landscape: &Landscape) -> HostIndex {
        let mut index = HostIndex::default();
        index.rebuild(landscape);
        index
    }

    /// Rebuild in place for the landscape's current allocation, reusing
    /// every buffer of the previous build. The result is identical to a
    /// fresh [`HostIndex::build`]; only the allocations differ.
    pub fn rebuild(&mut self, landscape: &Landscape) {
        let n = landscape.num_servers();
        let services = landscape.num_services();

        // Per-service spec lookups hoisted out of the instance loops.
        refill(&mut self.scratch.mem_per_service, services, 0u64);
        refill(&mut self.scratch.exclusive, services, false);
        for service in landscape.service_ids() {
            let idx = service.index();
            if idx >= services {
                continue;
            }
            if let Ok(spec) = landscape.service(service) {
                self.scratch.mem_per_service[idx] = spec.memory_per_instance_mb;
                self.scratch.exclusive[idx] = spec.exclusive;
            }
        }

        // Pass 1: counts and memory sums. The one tree walk also flattens
        // the instance table — `instances()` ascends by instance id, so
        // every per-server / per-service group filled from the flat copy
        // inherits the id order the landscape's own scans produce.
        refill(&mut self.instance_count, n, 0u32);
        refill(&mut self.mem_used, n, 0u64);
        refill(&mut self.scratch.per_service, services, 0u32);
        self.scratch.table.clear();
        for inst in landscape.instances() {
            self.scratch
                .table
                .push((inst.server, inst.service, inst.id));
            let svc = inst.service.index();
            if svc < services {
                self.scratch.per_service[svc] += 1;
            }
            let s = inst.server.index();
            if s >= n {
                continue;
            }
            self.instance_count[s] += 1;
            self.mem_used[s] += self
                .scratch
                .mem_per_service
                .get(inst.service.index())
                .copied()
                .unwrap_or(0);
        }

        // Prefix sums give each group its slice in the flat arrays.
        refill(&mut self.server_starts, n + 1, 0u32);
        for s in 0..n {
            self.server_starts[s + 1] = self.server_starts[s] + self.instance_count[s];
        }
        refill(&mut self.service_starts, services + 1, 0u32);
        for svc in 0..services {
            self.service_starts[svc + 1] = self.service_starts[svc] + self.scratch.per_service[svc];
        }

        // Pass 2: fill the flat arrays from the flattened table.
        let total_on_servers = self.server_starts[n] as usize;
        let total_of_services = self.service_starts[services] as usize;
        refill(
            &mut self.server_instances,
            total_on_servers,
            InstanceId::new(0),
        );
        refill(
            &mut self.scratch.server_services,
            total_on_servers,
            ServiceId::new(0),
        );
        refill(
            &mut self.service_instances,
            total_of_services,
            InstanceId::new(0),
        );
        self.scratch.server_cursor.clear();
        self.scratch
            .server_cursor
            .extend_from_slice(&self.server_starts[..n]);
        self.scratch.service_cursor.clear();
        self.scratch
            .service_cursor
            .extend_from_slice(&self.service_starts[..services]);
        for &(server, service, id) in &self.scratch.table {
            let svc = service.index();
            if svc < services {
                let at = self.scratch.service_cursor[svc] as usize;
                self.service_instances[at] = id;
                self.scratch.service_cursor[svc] += 1;
            }
            let s = server.index();
            if s >= n {
                continue;
            }
            let at = self.scratch.server_cursor[s] as usize;
            self.server_instances[at] = id;
            self.scratch.server_services[at] = service;
            self.scratch.server_cursor[s] += 1;
        }

        // Distinct residents per server: sort + dedup each server's
        // service group in a reusable scratch buffer.
        refill(&mut self.resident_starts, n + 1, 0u32);
        self.residents.clear();
        refill(&mut self.exclusive_residents, n, 0u32);
        for s in 0..n {
            let group = &self.scratch.server_services
                [self.server_starts[s] as usize..self.server_starts[s + 1] as usize];
            self.scratch.dedup.clear();
            self.scratch.dedup.extend_from_slice(group);
            self.scratch.dedup.sort_unstable();
            self.scratch.dedup.dedup();
            self.exclusive_residents[s] = self
                .scratch
                .dedup
                .iter()
                .filter(|svc| {
                    self.scratch
                        .exclusive
                        .get(svc.index())
                        .copied()
                        .unwrap_or(false)
                })
                .count() as u32;
            self.residents.extend_from_slice(&self.scratch.dedup);
            self.resident_starts[s + 1] = self.residents.len() as u32;
        }
    }

    /// Distinct services resident on `server`, ascending.
    fn residents_on(&self, server: ServerId) -> &[ServiceId] {
        let s = server.index();
        if s + 1 >= self.resident_starts.len() {
            return &[];
        }
        &self.residents[self.resident_starts[s] as usize..self.resident_starts[s + 1] as usize]
    }

    /// Number of instances on `server` (the `instancesOnServer` fuzzy
    /// input) — equals `landscape.instance_count_on(server)`.
    pub fn instance_count_on(&self, server: ServerId) -> u32 {
        self.instance_count
            .get(server.index())
            .copied()
            .unwrap_or(0)
    }

    /// Memory in use on `server`, MB — equals
    /// `landscape.memory_used_on(server)`.
    pub fn memory_used_on(&self, server: ServerId) -> u64 {
        self.mem_used.get(server.index()).copied().unwrap_or(0)
    }

    /// Instance ids on `server`, ascending — equals
    /// `landscape.instances_on(server)` without the scan.
    pub fn instances_on(&self, server: ServerId) -> &[InstanceId] {
        let s = server.index();
        if s + 1 >= self.server_starts.len() {
            return &[];
        }
        &self.server_instances[self.server_starts[s] as usize..self.server_starts[s + 1] as usize]
    }

    /// Instance ids of `service`, ascending — equals
    /// `landscape.instances_of(service)` without the scan.
    pub fn instances_of(&self, service: ServiceId) -> &[InstanceId] {
        let s = service.index();
        if s + 1 >= self.service_starts.len() {
            return &[];
        }
        &self.service_instances
            [self.service_starts[s] as usize..self.service_starts[s + 1] as usize]
    }

    /// Number of instances of `service` (the `instancesOfService` fuzzy
    /// input) — equals `landscape.instance_count_of(service)`.
    pub fn instance_count_of(&self, service: ServiceId) -> u32 {
        self.instances_of(service).len() as u32
    }

    /// Whether at least one instance of `service` runs on `server`.
    pub fn runs_service(&self, server: ServerId, service: ServiceId) -> bool {
        self.residents_on(server).binary_search(&service).is_ok()
    }

    /// Index-backed replica of [`Landscape::can_host`]: available host,
    /// minimum performance index, exclusivity in both directions, memory —
    /// the same checks, the same order, without scanning the instance
    /// table.
    ///
    /// [`Landscape::can_host`]: autoglobe_landscape::Landscape::can_host
    pub fn can_host(&self, landscape: &Landscape, service: ServiceId, server: ServerId) -> bool {
        let Ok(svc) = landscape.service(service) else {
            return false;
        };
        let Ok(srv) = landscape.server(server) else {
            return false;
        };
        if !landscape.is_available(server) {
            return false;
        }
        if let Some(min_idx) = svc.min_performance_index {
            if srv.performance_index < min_idx {
                return false;
            }
        }
        let s = server.index();
        let residents = self.residents_on(server);
        let runs_candidate = residents.binary_search(&service).is_ok();
        // Exclusivity in both directions, over distinct resident services.
        let foreign = residents.len() - usize::from(runs_candidate);
        if svc.exclusive && foreign > 0 {
            return false;
        }
        let foreign_exclusive =
            self.exclusive_residents[s] - u32::from(svc.exclusive && runs_candidate);
        if foreign_exclusive > 0 {
            return false;
        }
        // Memory.
        if self.mem_used[s] + svc.memory_per_instance_mb > srv.memory_mb {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};

    /// A landscape exercising every `can_host` clause: exclusivity both
    /// ways, minimum performance index, tight memory, a failed host.
    fn varied_landscape() -> Landscape {
        let mut l = Landscape::new();
        let b1 = l.add_server(ServerSpec::fsc_bx300("Blade1")).unwrap();
        let b2 = l.add_server(ServerSpec::fsc_bx300("Blade2")).unwrap();
        let b3 = l.add_server(ServerSpec::fsc_bx600("Blade3")).unwrap();
        let big = l.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let down = l.add_server(ServerSpec::fsc_bx600("Down")).unwrap();
        l.set_available(down, false).unwrap();

        let fi = l
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let db = l
            .add_service(
                ServiceSpec::new("DB", ServiceKind::Database)
                    .with_exclusive(true)
                    .with_min_performance_index(5.0),
            )
            .unwrap();
        let fat = l
            .add_service(ServiceSpec::new("Fat", ServiceKind::Generic).with_memory(1500))
            .unwrap();

        l.start_instance(fi, b1).unwrap();
        l.start_instance(fi, b1).unwrap();
        l.start_instance(db, big).unwrap();
        l.start_instance(fat, b2).unwrap();
        let _ = b3;
        l
    }

    #[test]
    fn index_agrees_with_exhaustive_can_host_everywhere() {
        let l = varied_landscape();
        let index = HostIndex::build(&l);
        for service in l.service_ids() {
            for server in l.server_ids() {
                assert_eq!(
                    index.can_host(&l, service, server),
                    l.can_host(service, server),
                    "service {service:?} on server {server:?}"
                );
            }
        }
    }

    #[test]
    fn aggregates_match_the_scans() {
        let l = varied_landscape();
        let index = HostIndex::build(&l);
        for server in l.server_ids() {
            assert_eq!(
                index.instance_count_on(server) as usize,
                l.instance_count_on(server)
            );
            assert_eq!(index.memory_used_on(server), l.memory_used_on(server));
            for service in l.service_ids() {
                let scan = l
                    .instances_on(server)
                    .iter()
                    .any(|i| l.instance(*i).unwrap().service == service);
                assert_eq!(index.runs_service(server, service), scan);
            }
        }
    }

    #[test]
    fn out_of_range_ids_read_as_empty() {
        let l = varied_landscape();
        let index = HostIndex::build(&l);
        let ghost = ServerId::new(999);
        assert_eq!(index.instance_count_on(ghost), 0);
        assert_eq!(index.memory_used_on(ghost), 0);
        assert!(!index.runs_service(ghost, ServiceId::new(0)));
        assert!(!index.can_host(&l, ServiceId::new(0), ghost));
        assert!(!index.can_host(&l, ServiceId::new(999), ServerId::new(0)));
    }
}
