//! Dense per-server aggregates for sublinear host ranking.
//!
//! [`Landscape::can_host`] and [`crate::ServerInputs::gather`] each scan
//! the full instance table, so ranking hosts for one trigger used to cost
//! O(servers × instances) — superlinear in landscape size and the latent
//! blowup the scale ladder exposed at the 1,000-server rung. [`HostIndex`]
//! folds the instance table once into dense per-server arrays (instance
//! count, memory in use, distinct resident services), after which every
//! per-server constraint question is O(log residents) or O(1) and a whole
//! trigger decision is O(instances + servers).
//!
//! The index answers exactly the same questions as the exhaustive scans —
//! [`AutoGlobeController::rank_hosts_indexed`] is proven bit-identical to
//! [`AutoGlobeController::rank_hosts_exhaustive`] by tests and by the
//! `experiments scale` harness at every ladder rung.
//!
//! [`AutoGlobeController::rank_hosts_indexed`]: crate::AutoGlobeController::rank_hosts_indexed
//! [`AutoGlobeController::rank_hosts_exhaustive`]: crate::AutoGlobeController::rank_hosts_exhaustive
//! [`Landscape::can_host`]: autoglobe_landscape::Landscape::can_host

use autoglobe_landscape::{Landscape, ServerId, ServiceId};

/// Per-server aggregates of the current allocation, built in one pass over
/// the instance table.
#[derive(Debug, Clone)]
pub struct HostIndex {
    /// Instances on each server.
    instance_count: Vec<u32>,
    /// Memory in use on each server, MB (order-independent u64 sum).
    mem_used: Vec<u64>,
    /// Distinct services resident on each server, ascending.
    resident_services: Vec<Vec<ServiceId>>,
    /// How many of those distinct residents are exclusive services.
    exclusive_residents: Vec<u32>,
}

impl HostIndex {
    /// Build the index for the landscape's current allocation.
    pub fn build(landscape: &Landscape) -> HostIndex {
        let n = landscape.num_servers();
        let mut index = HostIndex {
            instance_count: vec![0; n],
            mem_used: vec![0; n],
            resident_services: vec![Vec::new(); n],
            exclusive_residents: vec![0; n],
        };
        for inst in landscape.instances() {
            let s = inst.server.index();
            if s >= n {
                continue;
            }
            index.instance_count[s] += 1;
            index.mem_used[s] += landscape
                .service(inst.service)
                .map(|spec| spec.memory_per_instance_mb)
                .unwrap_or(0);
            let residents = &mut index.resident_services[s];
            if let Err(pos) = residents.binary_search(&inst.service) {
                residents.insert(pos, inst.service);
            }
        }
        for s in 0..n {
            index.exclusive_residents[s] = index.resident_services[s]
                .iter()
                .filter(|&&svc| {
                    landscape
                        .service(svc)
                        .map(|spec| spec.exclusive)
                        .unwrap_or(false)
                })
                .count() as u32;
        }
        index
    }

    /// Number of instances on `server` (the `instancesOnServer` fuzzy
    /// input) — equals `landscape.instance_count_on(server)`.
    pub fn instance_count_on(&self, server: ServerId) -> u32 {
        self.instance_count
            .get(server.index())
            .copied()
            .unwrap_or(0)
    }

    /// Memory in use on `server`, MB — equals
    /// `landscape.memory_used_on(server)`.
    pub fn memory_used_on(&self, server: ServerId) -> u64 {
        self.mem_used.get(server.index()).copied().unwrap_or(0)
    }

    /// Whether at least one instance of `service` runs on `server`.
    pub fn runs_service(&self, server: ServerId, service: ServiceId) -> bool {
        self.resident_services
            .get(server.index())
            .map(|r| r.binary_search(&service).is_ok())
            .unwrap_or(false)
    }

    /// Index-backed replica of [`Landscape::can_host`]: available host,
    /// minimum performance index, exclusivity in both directions, memory —
    /// the same checks, the same order, without scanning the instance
    /// table.
    ///
    /// [`Landscape::can_host`]: autoglobe_landscape::Landscape::can_host
    pub fn can_host(&self, landscape: &Landscape, service: ServiceId, server: ServerId) -> bool {
        let Ok(svc) = landscape.service(service) else {
            return false;
        };
        let Ok(srv) = landscape.server(server) else {
            return false;
        };
        if !landscape.is_available(server) {
            return false;
        }
        if let Some(min_idx) = svc.min_performance_index {
            if srv.performance_index < min_idx {
                return false;
            }
        }
        let s = server.index();
        let residents = &self.resident_services[s];
        let runs_candidate = residents.binary_search(&service).is_ok();
        // Exclusivity in both directions, over distinct resident services.
        let foreign = residents.len() - usize::from(runs_candidate);
        if svc.exclusive && foreign > 0 {
            return false;
        }
        let foreign_exclusive =
            self.exclusive_residents[s] - u32::from(svc.exclusive && runs_candidate);
        if foreign_exclusive > 0 {
            return false;
        }
        // Memory.
        if self.mem_used[s] + svc.memory_per_instance_mb > srv.memory_mb {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};

    /// A landscape exercising every `can_host` clause: exclusivity both
    /// ways, minimum performance index, tight memory, a failed host.
    fn varied_landscape() -> Landscape {
        let mut l = Landscape::new();
        let b1 = l.add_server(ServerSpec::fsc_bx300("Blade1")).unwrap();
        let b2 = l.add_server(ServerSpec::fsc_bx300("Blade2")).unwrap();
        let b3 = l.add_server(ServerSpec::fsc_bx600("Blade3")).unwrap();
        let big = l.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let down = l.add_server(ServerSpec::fsc_bx600("Down")).unwrap();
        l.set_available(down, false).unwrap();

        let fi = l
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let db = l
            .add_service(
                ServiceSpec::new("DB", ServiceKind::Database)
                    .with_exclusive(true)
                    .with_min_performance_index(5.0),
            )
            .unwrap();
        let fat = l
            .add_service(ServiceSpec::new("Fat", ServiceKind::Generic).with_memory(1500))
            .unwrap();

        l.start_instance(fi, b1).unwrap();
        l.start_instance(fi, b1).unwrap();
        l.start_instance(db, big).unwrap();
        l.start_instance(fat, b2).unwrap();
        let _ = b3;
        l
    }

    #[test]
    fn index_agrees_with_exhaustive_can_host_everywhere() {
        let l = varied_landscape();
        let index = HostIndex::build(&l);
        for service in l.service_ids() {
            for server in l.server_ids() {
                assert_eq!(
                    index.can_host(&l, service, server),
                    l.can_host(service, server),
                    "service {service:?} on server {server:?}"
                );
            }
        }
    }

    #[test]
    fn aggregates_match_the_scans() {
        let l = varied_landscape();
        let index = HostIndex::build(&l);
        for server in l.server_ids() {
            assert_eq!(
                index.instance_count_on(server) as usize,
                l.instance_count_on(server)
            );
            assert_eq!(index.memory_used_on(server), l.memory_used_on(server));
            for service in l.service_ids() {
                let scan = l
                    .instances_on(server)
                    .iter()
                    .any(|i| l.instance(*i).unwrap().service == service);
                assert_eq!(index.runs_service(server, service), scan);
            }
        }
    }

    #[test]
    fn out_of_range_ids_read_as_empty() {
        let l = varied_landscape();
        let index = HostIndex::build(&l);
        let ghost = ServerId::new(999);
        assert_eq!(index.instance_count_on(ghost), 0);
        assert_eq!(index.memory_used_on(ghost), 0);
        assert!(!index.runs_service(ghost, ServiceId::new(0)));
        assert!(!index.can_host(&l, ServiceId::new(0), ghost));
        assert!(!index.can_host(&l, ServiceId::new(999), ServerId::new(0)));
    }
}
