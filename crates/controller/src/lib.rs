//! # autoglobe-controller — the AutoGlobe fuzzy controller
//!
//! The core contribution of the paper (Sections 3 and 4): a fuzzy-logic
//! controller that supervises all services running on a virtualized hardware
//! pool and remedies exceptional situations automatically.
//!
//! The controller module consists of **two cooperating fuzzy controllers**
//! (Figure 6):
//!
//! 1. **Action selection** ([`ActionSelector`]) — reacts to a confirmed
//!    trigger (`serviceOverloaded`, `serviceIdle`, `serverOverloaded`,
//!    `serverIdle`) and ranks the nine actions of Table 2 by applicability.
//!    Each trigger kind has its own rule base; administrators can layer
//!    service-specific rule bases on top (Section 4.1).
//! 2. **Server selection** ([`ServerSelector`]) — for actions that need a
//!    target host (start, scale-out, scale-up, scale-down, move), scores all
//!    eligible servers with per-action rule bases over the Table 3 input
//!    variables and picks the best one (Section 4.2).
//!
//! [`AutoGlobeController`] glues the two together and implements the full
//! interaction diagram of Figure 6: try the best action; if it needs a host,
//! try hosts best-first; on failure fall back to the next action; if nothing
//! works, alert the administrator. After a successful rearrangement, the
//! involved services and servers enter **protection mode** — they are
//! excluded from further actions for a configurable time, preventing the
//! system from oscillating ("moving services back and forth").
//!
//! The controller operates in *automatic* mode (execute immediately, log) or
//! *semi-automatic* mode (queue for administrator confirmation), Section 4.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod controller;
pub mod executor;
pub mod index;
pub mod inputs;
pub mod log;
pub mod protection;
pub mod recovery;
pub mod rulebase;
pub mod selection;
pub mod variables;

pub use cache::ScoreCacheStats;
pub use controller::{
    AutoGlobeController, ControllerConfig, ExecutionMode, PendingAction, ScoringMode,
    TriggerOutcome,
};
pub use executor::{ActionExecutor, DecidedAction, ExecutionEvent, ExecutorConfig, PlannedTrigger};
pub use index::HostIndex;
pub use inputs::{ActionInputs, LoadView, ServerInputs};
pub use log::{ActionRecord, ControllerEvent};
pub use protection::ProtectionRegistry;
pub use recovery::RecoveryOutcome;
pub use rulebase::RuleBases;
pub use selection::{ActionSelector, RankedAction, ServerSelector};
