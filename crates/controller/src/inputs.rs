//! Gathering the fuzzy controller's input variables from the landscape and
//! the monitoring stack.
//!
//! "First, the input variables of the fuzzy controller are initialized. ...
//! All variables of the fuzzy controller regarding CPU or memory load are
//! set to the arithmetic means of the load values during the service
//! specific watchTime. The other variables are initialized using the current
//! measurements or using available meta data, e.g., for the
//! performanceIndex." (Section 4.1)

use autoglobe_landscape::{InstanceId, Landscape, ServerId, ServiceId};
use autoglobe_monitor::Subject;

/// Source of current/averaged load values for subjects.
///
/// Implemented by the simulator's load model and by the monitor stack's
/// archive; the controller only ever reads through this trait so it works
/// identically against live measurements and simulations.
pub trait LoadView {
    /// CPU load of a subject in `[0, 1]` (averaged over the relevant watch
    /// window where available, else the latest measurement).
    fn cpu(&self, subject: Subject) -> f64;

    /// Memory load of a subject in `[0, 1]`.
    fn mem(&self, subject: Subject) -> f64;
}

/// The action-selection input vector (Table 1), ready for fuzzification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionInputs {
    /// CPU load of the server hosting the considered instance.
    pub cpu_load: f64,
    /// Memory load of that server.
    pub mem_load: f64,
    /// Performance index of that server.
    pub performance_index: f64,
    /// Load of the considered service instance.
    pub instance_load: f64,
    /// Average load over all instances of the service.
    pub service_load: f64,
    /// Number of instances running on the server.
    pub instances_on_server: f64,
    /// Number of instances of the service.
    pub instances_of_service: f64,
    /// Absolute demand of the instance in performance-index-1 units
    /// (`instance_load × performance_index`) — see
    /// [`crate::variables::instance_demand`].
    pub instance_demand: f64,
}

impl ActionInputs {
    /// Gather the inputs for `service` as observed through `instance` on its
    /// current host.
    pub fn gather(
        landscape: &Landscape,
        loads: &dyn LoadView,
        service: ServiceId,
        instance: InstanceId,
    ) -> Option<ActionInputs> {
        let inst = landscape.instance(instance).ok()?;
        let server = inst.server;
        let spec = landscape.server(server).ok()?;
        let instance_load = loads.cpu(Subject::Instance(instance));
        Some(ActionInputs {
            cpu_load: loads.cpu(Subject::Server(server)),
            mem_load: loads.mem(Subject::Server(server)),
            performance_index: spec.performance_index,
            instance_load,
            service_load: loads.cpu(Subject::Service(service)),
            instances_on_server: landscape.instance_count_on(server) as f64,
            instances_of_service: landscape.instance_count_of(service) as f64,
            instance_demand: instance_load * spec.performance_index,
        })
    }

    /// The `(variable name, crisp value)` pairs for [`autoglobe_fuzzy::Engine::run`].
    pub fn measurements(&self) -> [(&'static str, f64); 8] {
        [
            ("cpuLoad", self.cpu_load),
            ("memLoad", self.mem_load),
            ("performanceIndex", self.performance_index),
            ("instanceLoad", self.instance_load),
            ("serviceLoad", self.service_load),
            ("instancesOnServer", self.instances_on_server),
            ("instancesOfService", self.instances_of_service),
            ("instanceDemand", self.instance_demand),
        ]
    }
}

/// The server-selection input vector (Table 3), ready for fuzzification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerInputs {
    /// CPU load on the candidate server (average over all CPUs).
    pub cpu_load: f64,
    /// Memory load on the candidate server.
    pub mem_load: f64,
    /// Number of instances on the candidate.
    pub instances_on_server: f64,
    /// Performance index of the candidate.
    pub performance_index: f64,
    /// Number of CPUs.
    pub number_of_cpus: f64,
    /// CPU clock in MHz.
    pub cpu_clock: f64,
    /// CPU cache size in KB.
    pub cpu_cache: f64,
    /// Memory size in MB.
    pub memory: f64,
    /// Available swap space in MB.
    pub swap_space: f64,
    /// Available temporary disk space in MB.
    pub temp_space: f64,
}

impl ServerInputs {
    /// Gather the inputs for candidate `server`.
    pub fn gather(
        landscape: &Landscape,
        loads: &dyn LoadView,
        server: ServerId,
    ) -> Option<ServerInputs> {
        let spec = landscape.server(server).ok()?;
        Some(ServerInputs {
            cpu_load: loads.cpu(Subject::Server(server)),
            mem_load: loads.mem(Subject::Server(server)),
            instances_on_server: landscape.instance_count_on(server) as f64,
            performance_index: spec.performance_index,
            number_of_cpus: spec.num_cpus as f64,
            cpu_clock: spec.cpu_clock_mhz as f64,
            cpu_cache: spec.cpu_cache_kb as f64,
            memory: spec.memory_mb as f64,
            swap_space: spec.swap_mb as f64,
            temp_space: spec.temp_space_mb as f64,
        })
    }

    /// The `(variable name, crisp value)` pairs for [`autoglobe_fuzzy::Engine::run`].
    pub fn measurements(&self) -> [(&'static str, f64); 10] {
        [
            ("cpuLoad", self.cpu_load),
            ("memLoad", self.mem_load),
            ("instancesOnServer", self.instances_on_server),
            ("performanceIndex", self.performance_index),
            ("numberOfCpus", self.number_of_cpus),
            ("cpuClock", self.cpu_clock),
            ("cpuCache", self.cpu_cache),
            ("memory", self.memory),
            ("swapSpace", self.swap_space),
            ("tempSpace", self.temp_space),
        ]
    }
}

/// A trivially constant [`LoadView`] for tests and examples.
#[derive(Debug, Clone, Default)]
pub struct ConstantLoads {
    /// CPU load returned for every subject.
    pub cpu: f64,
    /// Memory load returned for every subject.
    pub mem: f64,
}

impl LoadView for ConstantLoads {
    fn cpu(&self, _subject: Subject) -> f64 {
        self.cpu
    }
    fn mem(&self, _subject: Subject) -> f64 {
        self.mem
    }
}

/// A [`LoadView`] backed by an explicit per-subject table (tests, console).
#[derive(Debug, Clone, Default)]
pub struct TableLoads {
    entries: std::collections::BTreeMap<Subject, (f64, f64)>,
    /// Returned for subjects without an entry.
    pub default_cpu: f64,
}

impl TableLoads {
    /// Empty table.
    pub fn new() -> Self {
        TableLoads::default()
    }

    /// Set the `(cpu, mem)` loads of a subject.
    pub fn set(&mut self, subject: Subject, cpu: f64, mem: f64) {
        self.entries.insert(subject, (cpu, mem));
    }
}

impl LoadView for TableLoads {
    fn cpu(&self, subject: Subject) -> f64 {
        self.entries
            .get(&subject)
            .map(|&(c, _)| c)
            .unwrap_or(self.default_cpu)
    }
    fn mem(&self, subject: Subject) -> f64 {
        self.entries.get(&subject).map(|&(_, m)| m).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_landscape::{ServerSpec, ServiceKind, ServiceSpec};

    #[test]
    fn gather_action_inputs_from_landscape() {
        let mut l = Landscape::new();
        let blade = l.add_server(ServerSpec::fsc_bx600("Blade")).unwrap();
        let svc = l
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        let i1 = l.start_instance(svc, blade).unwrap();
        let _i2 = l.start_instance(svc, blade).unwrap();

        let mut loads = TableLoads::new();
        loads.set(Subject::Server(blade), 0.8, 0.5);
        loads.set(Subject::Instance(i1), 0.6, 0.0);
        loads.set(Subject::Service(svc), 0.7, 0.0);

        let inputs = ActionInputs::gather(&l, &loads, svc, i1).unwrap();
        assert_eq!(inputs.cpu_load, 0.8);
        assert_eq!(inputs.mem_load, 0.5);
        assert_eq!(inputs.performance_index, 2.0);
        assert_eq!(inputs.instance_load, 0.6);
        assert_eq!(inputs.service_load, 0.7);
        assert_eq!(inputs.instances_on_server, 2.0);
        assert_eq!(inputs.instances_of_service, 2.0);
        // Demand = instance load × host performance index (BX600 → 2).
        assert!((inputs.instance_demand - 1.2).abs() < 1e-12);
        assert_eq!(inputs.measurements().len(), 8);
    }

    #[test]
    fn gather_returns_none_for_unknown_instance() {
        let l = Landscape::new();
        let loads = ConstantLoads::default();
        assert!(ActionInputs::gather(
            &l,
            &loads,
            autoglobe_landscape::ServiceId::new(0),
            InstanceId::new(0)
        )
        .is_none());
    }

    #[test]
    fn gather_server_inputs_reads_spec() {
        let mut l = Landscape::new();
        let db = l.add_server(ServerSpec::hp_bl40p("DBServer1")).unwrap();
        let loads = ConstantLoads { cpu: 0.3, mem: 0.2 };
        let inputs = ServerInputs::gather(&l, &loads, db).unwrap();
        assert_eq!(inputs.performance_index, 9.0);
        assert_eq!(inputs.number_of_cpus, 4.0);
        assert_eq!(inputs.cpu_clock, 2800.0);
        assert_eq!(inputs.memory, 12_288.0);
        assert_eq!(inputs.cpu_load, 0.3);
        assert_eq!(inputs.instances_on_server, 0.0);
        assert_eq!(inputs.measurements().len(), 10);
    }

    #[test]
    fn table_loads_fall_back_to_default() {
        let mut t = TableLoads::new();
        t.default_cpu = 0.42;
        let s = Subject::Server(ServerId::new(5));
        assert_eq!(t.cpu(s), 0.42);
        assert_eq!(t.mem(s), 0.0);
        t.set(s, 0.9, 0.8);
        assert_eq!(t.cpu(s), 0.9);
        assert_eq!(t.mem(s), 0.8);
    }
}
