//! Fallible, asynchronous action execution.
//!
//! The paper assumes remedial actions are carried out by a real
//! virtualization substrate — which takes time, times out, and sometimes
//! simply fails. [`ActionExecutor`] models that substrate: every decided
//! action becomes an in-flight operation with a drawn latency, a per-kind
//! failure probability and a timeout. Failed attempts retry with capped
//! exponential backoff against the next-best server-selection candidate
//! (the ranked alternates captured at planning time); exhausted operations
//! are abandoned with an administrator alert.
//!
//! Two safety properties hold by construction:
//!
//! * **Clean compensation** — the landscape is mutated only when an attempt
//!   *succeeds*, so a failed `Move` trivially leaves the source instance
//!   running and an abandoned operation has no partial effects to undo.
//! * **Fencing** — an attempt that outlives its timeout is declared failed
//!   and its eventual outcome is quarantined as a *latent outcome*; if the
//!   attempt would have succeeded after all, the late success is discarded
//!   (and reported) instead of creating a ghost instance behind the
//!   retried operation's back.
//!
//! The executor owns its own RNG. With zero latency and zero failure
//! probability ([`ExecutorConfig::reliable`]) it performs no draws at all
//! and reproduces the synchronous execution path bit for bit.

use crate::controller::AutoGlobeController;
use crate::log::{ActionRecord, ControllerEvent};
use autoglobe_landscape::{Action, ActionKind, Landscape, ServerId};
use autoglobe_monitor::{SimDuration, SimTime, TriggerKind};
use autoglobe_rng::Rng;
use std::collections::{BTreeMap, VecDeque};

/// Tunables of the fallible execution substrate.
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Minimum time one attempt takes.
    pub min_latency: SimDuration,
    /// Maximum time one attempt takes (drawn uniformly per attempt).
    pub max_latency: SimDuration,
    /// Attempts still running after this long are declared failed and
    /// fenced.
    pub timeout: SimDuration,
    /// Default probability that one attempt fails.
    pub failure_probability: f64,
    /// Per-kind overrides of [`ExecutorConfig::failure_probability`] —
    /// a `Move` (state transfer) fails more often than a `ReducePriority`.
    pub kind_failure_probability: BTreeMap<ActionKind, f64>,
    /// Attempts per operation before it is abandoned (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry k is `min(backoff_base · 2^(k−1), backoff_cap)`.
    pub backoff_base: SimDuration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: SimDuration,
}

impl ExecutorConfig {
    /// An instant, infallible substrate: zero latency, zero failure
    /// probability. Running the executor with this configuration reproduces
    /// the synchronous execution path bit for bit (no RNG draws happen).
    pub fn reliable() -> Self {
        ExecutorConfig {
            min_latency: SimDuration::ZERO,
            max_latency: SimDuration::ZERO,
            timeout: SimDuration::from_minutes(10),
            failure_probability: 0.0,
            kind_failure_probability: BTreeMap::new(),
            max_attempts: 3,
            backoff_base: SimDuration::from_minutes(1),
            backoff_cap: SimDuration::from_minutes(8),
        }
    }

    /// Check the parameters (finite probabilities in `[0, 1]`, coherent
    /// latency range, at least one attempt, a positive timeout).
    pub fn validate(&self) -> Result<(), String> {
        let check_p = |name: &str, p: f64| -> Result<(), String> {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!(
                    "{name} must be a finite probability in [0, 1], got {p}"
                ));
            }
            Ok(())
        };
        check_p("failure_probability", self.failure_probability)?;
        for (kind, &p) in &self.kind_failure_probability {
            check_p(&format!("failure probability for {kind}"), p)?;
        }
        if self.min_latency > self.max_latency {
            return Err(format!(
                "min_latency ({}) exceeds max_latency ({})",
                self.min_latency, self.max_latency
            ));
        }
        if self.timeout == SimDuration::ZERO {
            return Err("timeout must be positive".into());
        }
        if self.max_attempts == 0 {
            return Err("max_attempts must be at least 1".into());
        }
        Ok(())
    }

    /// The failure probability for one attempt of `kind`.
    pub fn probability_for(&self, kind: ActionKind) -> f64 {
        self.kind_failure_probability
            .get(&kind)
            .copied()
            .unwrap_or(self.failure_probability)
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::reliable()
    }
}

/// An action the controller decided on, ready to be dispatched: the chosen
/// concrete action plus the ranked alternate hosts the retry path may fall
/// back to ([`AutoGlobeController::plan_trigger`] produces these).
#[derive(Debug, Clone, PartialEq)]
pub struct DecidedAction {
    /// The concrete action to execute.
    pub action: Action,
    /// The trigger that led to it.
    pub trigger: TriggerKind,
    /// Fuzzy applicability of the action.
    pub applicability: f64,
    /// Host score of the chosen target, if the action has one.
    pub host_score: Option<f64>,
    /// Remaining server-selection candidates, best first — the hosts a
    /// failed targeted attempt retries against.
    pub alternates: Vec<(ServerId, f64)>,
}

/// The result of planning one trigger (the executor-facing counterpart of
/// [`crate::TriggerOutcome`]).
#[derive(Debug, Clone, Default)]
pub struct PlannedTrigger {
    /// The decided action, if any candidate survived verification.
    pub decided: Option<DecidedAction>,
    /// Everything logged while planning (suppressions, rejections, alerts).
    pub events: Vec<ControllerEvent>,
}

/// What the executor reports from [`ActionExecutor::poll`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionEvent {
    /// An attempt succeeded; the action was applied to the landscape and
    /// logged through the controller.
    Completed {
        /// Operation id.
        id: u64,
        /// The executed-action record (timestamped at completion).
        record: ActionRecord,
    },
    /// An attempt failed; the operation backs off and will retry — against
    /// the next-best host for targeted actions.
    Retried {
        /// Operation id.
        id: u64,
        /// The action of the *next* attempt (possibly re-targeted).
        action: Action,
        /// The next attempt's number (1-based).
        attempt: u32,
        /// When the next attempt starts.
        resume_at: SimTime,
    },
    /// An attempt outlived its timeout; its eventual outcome is fenced.
    TimedOut {
        /// Operation id.
        id: u64,
        /// The timed-out action.
        action: Action,
        /// The attempt number that timed out.
        attempt: u32,
        /// When the timeout was declared.
        time: SimTime,
    },
    /// A fenced attempt turned out to succeed after its timeout; the late
    /// success was discarded instead of mutating the landscape.
    FencedLateSuccess {
        /// Operation id.
        id: u64,
        /// The action whose late success was discarded.
        action: Action,
        /// When the late outcome arrived.
        time: SimTime,
    },
    /// The operation was stamped with a lease epoch older than the
    /// executor's fence: its issuer lost ownership (crashed, partitioned,
    /// or was superseded) after dispatching, so the action is discarded
    /// without touching the landscape — a revived old owner cannot issue
    /// ghost moves.
    FencedStaleEpoch {
        /// Operation id.
        id: u64,
        /// The discarded action.
        action: Action,
        /// The stale epoch the operation was issued under.
        epoch: u64,
        /// When the fence caught it.
        time: SimTime,
    },
    /// The operation exhausted its attempts (or alternate hosts) and was
    /// abandoned; nothing was applied, so no compensation beyond the alert
    /// is needed.
    Abandoned {
        /// Operation id.
        id: u64,
        /// The last attempted action.
        action: Action,
        /// Attempts made before giving up.
        attempts: u32,
        /// When the operation was abandoned.
        time: SimTime,
    },
}

#[derive(Debug, Clone, Copy)]
enum OpState {
    /// Backing off; the next attempt starts at `resume_at`.
    Waiting { resume_at: SimTime },
    /// An attempt is executing.
    Running {
        completes_at: SimTime,
        deadline: SimTime,
        will_fail: bool,
    },
}

#[derive(Debug, Clone)]
struct InFlightOp {
    id: u64,
    action: Action,
    trigger: TriggerKind,
    applicability: f64,
    host_score: Option<f64>,
    alternates: VecDeque<(ServerId, f64)>,
    /// 1-based number of the current attempt.
    attempt: u32,
    /// Lease epoch the op was issued under; ops below the fence never apply.
    epoch: u64,
    state: OpState,
}

/// A timed-out attempt whose true outcome is still in flight.
#[derive(Debug, Clone, Copy)]
struct LatentOutcome {
    id: u64,
    action: Action,
    completes_at: SimTime,
    will_fail: bool,
}

/// The fallible asynchronous execution substrate (see the module docs).
#[derive(Debug)]
pub struct ActionExecutor {
    config: ExecutorConfig,
    rng: Rng,
    in_flight: Vec<InFlightOp>,
    fenced: Vec<LatentOutcome>,
    next_op: u64,
    /// Epoch stamped onto newly dispatched operations.
    current_epoch: u64,
    /// Minimum epoch an operation needs to apply; raised by
    /// [`ActionExecutor::fence_below`] when a lease changes hands.
    fence_epoch: u64,
}

impl ActionExecutor {
    /// An executor with its own RNG stream — derive `seed` from the run's
    /// master seed so the executor's draws never perturb the simulation's.
    ///
    /// # Panics
    /// Panics if the configuration fails [`ExecutorConfig::validate`].
    pub fn new(config: ExecutorConfig, seed: u64) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid executor config: {e}");
        }
        ActionExecutor {
            config,
            rng: Rng::seed_from_u64(seed),
            in_flight: Vec::new(),
            fenced: Vec::new(),
            next_op: 0,
            current_epoch: 0,
            fence_epoch: 0,
        }
    }

    /// The lease epoch stamped onto subsequent dispatches. Epoch 0 (the
    /// default) is the single-owner mode every pre-sharded caller runs in.
    pub fn epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Stamp subsequent dispatches with `epoch` — the issuing shard
    /// owner's current lease epoch.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.current_epoch = epoch;
    }

    /// The minimum epoch an operation must carry to be applied.
    pub fn fence_epoch(&self) -> u64 {
        self.fence_epoch
    }

    /// Raise the fence to `min_epoch`: every in-flight operation issued
    /// under an older lease epoch is discarded immediately (returned as
    /// [`ExecutionEvent::FencedStaleEpoch`], in dispatch order), and any
    /// operation dispatched later with a stale stamp is discarded at its
    /// next poll. The coordination layer calls this when a shard lease
    /// changes hands, so the previous owner's in-flight work can never
    /// mutate the landscape after the succession.
    pub fn fence_below(&mut self, min_epoch: u64, now: SimTime) -> Vec<ExecutionEvent> {
        self.fence_epoch = self.fence_epoch.max(min_epoch);
        let mut events = Vec::new();
        let ops = std::mem::take(&mut self.in_flight);
        for op in ops {
            if op.epoch < self.fence_epoch {
                events.push(ExecutionEvent::FencedStaleEpoch {
                    id: op.id,
                    action: op.action,
                    epoch: op.epoch,
                    time: now,
                });
            } else {
                self.in_flight.push(op);
            }
        }
        events
    }

    /// The substrate configuration.
    pub fn config(&self) -> &ExecutorConfig {
        &self.config
    }

    /// Number of operations currently in flight (running or backing off).
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// True when no operation is in flight and no latent outcome is fenced.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.fenced.is_empty()
    }

    /// Start executing a decided action. Returns the operation id.
    pub fn dispatch(&mut self, decided: DecidedAction, now: SimTime) -> u64 {
        let id = self.next_op;
        self.next_op += 1;
        let state = self.draw_attempt(decided.action.kind(), now);
        self.in_flight.push(InFlightOp {
            id,
            action: decided.action,
            trigger: decided.trigger,
            applicability: decided.applicability,
            host_score: decided.host_score,
            alternates: decided.alternates.into_iter().collect(),
            attempt: 1,
            epoch: self.current_epoch,
            state,
        });
        id
    }

    /// Advance every in-flight operation to `now`: resume waits, settle
    /// finished attempts (applying successes through the landscape and the
    /// controller's log), declare timeouts, and discard fenced late
    /// successes. Events are returned in dispatch order.
    pub fn poll(
        &mut self,
        now: SimTime,
        landscape: &mut Landscape,
        controller: &mut AutoGlobeController,
    ) -> Vec<ExecutionEvent> {
        let mut events = Vec::new();

        // Latent outcomes first: a late success arriving now is discarded.
        let fenced = std::mem::take(&mut self.fenced);
        for latent in fenced {
            if latent.completes_at <= now {
                if !latent.will_fail {
                    events.push(ExecutionEvent::FencedLateSuccess {
                        id: latent.id,
                        action: latent.action,
                        time: now,
                    });
                }
            } else {
                self.fenced.push(latent);
            }
        }

        let ops = std::mem::take(&mut self.in_flight);
        for mut op in ops {
            // An op dispatched under a lease epoch the fence has since
            // passed is discarded before its state can advance — late
            // dispatches from a deposed owner never apply.
            if op.epoch < self.fence_epoch {
                events.push(ExecutionEvent::FencedStaleEpoch {
                    id: op.id,
                    action: op.action,
                    epoch: op.epoch,
                    time: now,
                });
                continue;
            }
            // One op can pass through several states within one poll (e.g.
            // resume from backoff and complete instantly at zero latency);
            // max_attempts bounds the loop.
            loop {
                match op.state {
                    OpState::Waiting { resume_at } => {
                        if resume_at > now {
                            self.in_flight.push(op);
                            break;
                        }
                        op.state = self.draw_attempt(op.action.kind(), resume_at.max(now));
                    }
                    OpState::Running {
                        completes_at,
                        deadline,
                        will_fail,
                    } => {
                        if completes_at.min(deadline) > now {
                            self.in_flight.push(op);
                            break;
                        }
                        if completes_at > deadline {
                            // Timed out: fence the still-running attempt so
                            // its eventual outcome cannot mutate anything.
                            events.push(ExecutionEvent::TimedOut {
                                id: op.id,
                                action: op.action,
                                attempt: op.attempt,
                                time: now,
                            });
                            self.fenced.push(LatentOutcome {
                                id: op.id,
                                action: op.action,
                                completes_at,
                                will_fail,
                            });
                            if !self.retry(&mut op, now, controller, &mut events) {
                                break;
                            }
                        } else if will_fail {
                            if !self.retry(&mut op, now, controller, &mut events) {
                                break;
                            }
                        } else {
                            match landscape.apply(&op.action) {
                                Ok(applied) => {
                                    controller.protect_involved(
                                        &op.action,
                                        landscape,
                                        completes_at,
                                    );
                                    let record = ActionRecord {
                                        time: completes_at,
                                        trigger: op.trigger,
                                        action: op.action,
                                        applicability: op.applicability,
                                        host_score: op.host_score,
                                        outcome: applied,
                                    };
                                    controller.push_log(ControllerEvent::Executed(record.clone()));
                                    events.push(ExecutionEvent::Completed { id: op.id, record });
                                    break;
                                }
                                Err(err) => {
                                    // The landscape changed underneath the
                                    // in-flight attempt; treat it like a
                                    // failed attempt.
                                    controller.push_log(ControllerEvent::Rejected {
                                        time: now,
                                        action: op.action,
                                        reason: err.to_string(),
                                    });
                                    if !self.retry(&mut op, now, controller, &mut events) {
                                        break;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        events
    }

    /// Draw one attempt's latency and outcome. With zero latency span and
    /// zero failure probability no RNG draw happens at all.
    fn draw_attempt(&mut self, kind: ActionKind, start: SimTime) -> OpState {
        let span = self
            .config
            .max_latency
            .as_secs()
            .saturating_sub(self.config.min_latency.as_secs());
        let latency = self.config.min_latency.as_secs()
            + if span > 0 {
                self.rng.random_below(span as usize + 1) as u64
            } else {
                0
            };
        let p = self.config.probability_for(kind);
        let will_fail = p > 0.0 && self.rng.random_bool(p);
        OpState::Running {
            completes_at: start + SimDuration::from_secs(latency),
            deadline: start + self.config.timeout,
            will_fail,
        }
    }

    /// Schedule the next attempt with capped exponential backoff, walking
    /// the alternate-host list for targeted actions. Returns false when the
    /// operation was abandoned instead.
    fn retry(
        &mut self,
        op: &mut InFlightOp,
        now: SimTime,
        controller: &mut AutoGlobeController,
        events: &mut Vec<ExecutionEvent>,
    ) -> bool {
        let next_action = if op.action.target().is_some() {
            // The failed host stays failed; try the next-best candidate.
            op.alternates
                .pop_front()
                .and_then(|(host, score)| with_target(&op.action, host).map(|a| (a, Some(score))))
        } else {
            Some((op.action, op.host_score))
        };
        let (next_action, next_score) = match next_action {
            Some(n) if op.attempt < self.config.max_attempts => n,
            _ => {
                let e = ControllerEvent::AdministratorAlert {
                    time: now,
                    trigger: op.trigger,
                    message: format!(
                        "{} abandoned after {} attempt(s); no partial effects were applied",
                        op.action, op.attempt
                    ),
                };
                controller.push_log(e);
                events.push(ExecutionEvent::Abandoned {
                    id: op.id,
                    action: op.action,
                    attempts: op.attempt,
                    time: now,
                });
                return false;
            }
        };
        let shift = (op.attempt - 1).min(32);
        let backoff_secs = self
            .config
            .backoff_base
            .as_secs()
            .saturating_mul(1u64 << shift)
            .min(self.config.backoff_cap.as_secs());
        op.attempt += 1;
        op.action = next_action;
        op.host_score = next_score;
        op.state = OpState::Waiting {
            resume_at: now + SimDuration::from_secs(backoff_secs),
        };
        events.push(ExecutionEvent::Retried {
            id: op.id,
            action: op.action,
            attempt: op.attempt,
            resume_at: now + SimDuration::from_secs(backoff_secs),
        });
        true
    }
}

/// Rebuild a targeted action against a different host.
fn with_target(action: &Action, target: ServerId) -> Option<Action> {
    Some(match *action {
        Action::Start { service, .. } => Action::Start { service, target },
        Action::ScaleOut { service, .. } => Action::ScaleOut { service, target },
        Action::ScaleUp { instance, .. } => Action::ScaleUp { instance, target },
        Action::ScaleDown { instance, .. } => Action::ScaleDown { instance, target },
        Action::Move { instance, .. } => Action::Move { instance, target },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inputs::TableLoads;
    use autoglobe_landscape::{InstanceId, ServerSpec, ServiceId, ServiceKind, ServiceSpec};
    use autoglobe_monitor::{Subject, TriggerEvent};

    struct Fixture {
        landscape: Landscape,
        fi: ServiceId,
        blade1: ServerId,
        blade2: ServerId,
        big: ServerId,
        i1: InstanceId,
        loads: TableLoads,
    }

    fn fixture() -> Fixture {
        let mut landscape = Landscape::new();
        let blade1 = landscape
            .add_server(ServerSpec::fsc_bx300("Blade1"))
            .unwrap();
        let blade2 = landscape
            .add_server(ServerSpec::fsc_bx300("Blade2"))
            .unwrap();
        let big = landscape.add_server(ServerSpec::hp_bl40p("Big")).unwrap();
        let fi = landscape
            .add_service(
                ServiceSpec::new("FI", ServiceKind::ApplicationServer).with_instances(1, Some(6)),
            )
            .unwrap();
        let i1 = landscape.start_instance(fi, blade1).unwrap();
        let mut loads = TableLoads::new();
        loads.set(Subject::Server(blade1), 0.95, 0.5);
        loads.set(Subject::Server(blade2), 0.2, 0.2);
        loads.set(Subject::Server(big), 0.1, 0.1);
        loads.set(Subject::Instance(i1), 0.95, 0.0);
        loads.set(Subject::Service(fi), 0.9, 0.0);
        Fixture {
            landscape,
            fi,
            blade1,
            blade2,
            big,
            i1,
            loads,
        }
    }

    fn overload_event(service: ServiceId) -> TriggerEvent {
        TriggerEvent {
            kind: TriggerKind::ServiceOverloaded,
            subject: Subject::Service(service),
            time: SimTime::from_minutes(30),
            average_cpu: 0.9,
            average_mem: 0.4,
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(ExecutorConfig::reliable().validate().is_ok());
        let mut c = ExecutorConfig::reliable();
        c.failure_probability = f64::NAN;
        assert!(c.validate().is_err());
        c.failure_probability = -0.1;
        assert!(c.validate().is_err());
        c.failure_probability = 1.5;
        assert!(c.validate().is_err());
        let mut c = ExecutorConfig::reliable();
        c.kind_failure_probability.insert(ActionKind::Move, 2.0);
        assert!(c.validate().is_err());
        let mut c = ExecutorConfig::reliable();
        c.min_latency = SimDuration::from_minutes(5);
        c.max_latency = SimDuration::from_minutes(1);
        assert!(c.validate().is_err());
        let mut c = ExecutorConfig::reliable();
        c.timeout = SimDuration::ZERO;
        assert!(c.validate().is_err());
        let mut c = ExecutorConfig::reliable();
        c.max_attempts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn per_kind_probability_overrides_default() {
        let mut c = ExecutorConfig::reliable();
        c.failure_probability = 0.1;
        c.kind_failure_probability.insert(ActionKind::Move, 0.9);
        assert_eq!(c.probability_for(ActionKind::Move), 0.9);
        assert_eq!(c.probability_for(ActionKind::Start), 0.1);
    }

    #[test]
    fn reliable_executor_matches_the_synchronous_path() {
        // Same fixture, same trigger: handle_trigger (synchronous) vs.
        // plan → dispatch → poll through a reliable executor must produce
        // identical records, identical landscapes and identical protection.
        let mut sync_f = fixture();
        let mut sync_c = AutoGlobeController::new();
        let event = overload_event(sync_f.fi);
        let sync_out =
            sync_c.handle_trigger(&event, &mut sync_f.landscape, &sync_f.loads, event.time);
        assert!(sync_out.acted());

        let mut f = fixture();
        let mut c = AutoGlobeController::new();
        let mut exec = ActionExecutor::new(ExecutorConfig::reliable(), 7);
        let event = overload_event(f.fi);
        let planned = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        let decided = planned.decided.expect("same trigger must decide");
        exec.dispatch(decided, event.time);
        let events = exec.poll(event.time, &mut f.landscape, &mut c);
        assert_eq!(events.len(), 1);
        let ExecutionEvent::Completed { record, .. } = &events[0] else {
            panic!("reliable executor completes instantly: {events:?}");
        };
        assert_eq!(record, &sync_out.executed[0]);
        assert!(exec.is_idle());
        // Landscape converged to the same allocation.
        assert_eq!(
            f.landscape.instance(f.i1).unwrap().server,
            sync_f.landscape.instance(sync_f.i1).unwrap().server
        );
        // Protection mirrors the synchronous path: the same trigger is now
        // suppressed in both controllers.
        let again = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        assert!(matches!(
            again.events[0],
            ControllerEvent::SuppressedByProtection { .. }
        ));
    }

    #[test]
    fn failed_move_leaves_the_source_instance_running() {
        // Failure probability 1: every attempt fails. The retry path walks
        // the alternates and finally abandons — and because nothing is
        // applied until an attempt succeeds, the source instance never
        // moves.
        let f = fixture();
        let mut landscape = f.landscape;
        let mut c = AutoGlobeController::new();
        let config = ExecutorConfig {
            failure_probability: 1.0,
            max_attempts: 3,
            backoff_base: SimDuration::from_minutes(1),
            backoff_cap: SimDuration::from_minutes(2),
            ..ExecutorConfig::reliable()
        };
        let mut exec = ActionExecutor::new(config, 11);
        let t0 = SimTime::from_minutes(10);
        exec.dispatch(
            DecidedAction {
                action: Action::Move {
                    instance: f.i1,
                    target: f.blade2,
                },
                trigger: TriggerKind::ServerOverloaded,
                applicability: 0.8,
                host_score: Some(0.6),
                alternates: vec![(f.big, 0.5), (f.blade2, 0.4)],
            },
            t0,
        );
        let mut all = Vec::new();
        let mut t = t0;
        for _ in 0..10 {
            all.extend(exec.poll(t, &mut landscape, &mut c));
            t += SimDuration::from_minutes(1);
        }
        // Attempt 1 (blade2) fails → retry on big; attempt 2 fails → retry
        // on blade2 (next alternate); attempt 3 fails → abandoned.
        let retried: Vec<&ExecutionEvent> = all
            .iter()
            .filter(|e| matches!(e, ExecutionEvent::Retried { .. }))
            .collect();
        assert_eq!(retried.len(), 2);
        let ExecutionEvent::Retried {
            action: retry1,
            attempt: 2,
            ..
        } = retried[0]
        else {
            panic!("unexpected first retry: {:?}", retried[0]);
        };
        assert_eq!(retry1.target(), Some(f.big), "retry walks the alternates");
        assert!(all
            .iter()
            .any(|e| matches!(e, ExecutionEvent::Abandoned { attempts: 3, .. })));
        // Compensation: the source instance is still exactly where it was.
        assert_eq!(landscape.instance(f.i1).unwrap().server, f.blade1);
        assert!(exec.is_idle());
        // The abandonment was alerted through the controller log.
        assert!(c
            .log()
            .iter()
            .any(|e| matches!(e, ControllerEvent::AdministratorAlert { .. })));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let f = fixture();
        let mut landscape = f.landscape;
        let mut c = AutoGlobeController::new();
        let config = ExecutorConfig {
            failure_probability: 1.0,
            max_attempts: 5,
            backoff_base: SimDuration::from_minutes(1),
            backoff_cap: SimDuration::from_minutes(3),
            ..ExecutorConfig::reliable()
        };
        let mut exec = ActionExecutor::new(config, 3);
        let t0 = SimTime::from_hours(1);
        // Untargeted action: retries repeat the same action.
        exec.dispatch(
            DecidedAction {
                action: Action::ReducePriority { service: f.fi },
                trigger: TriggerKind::ServerOverloaded,
                applicability: 0.5,
                host_score: None,
                alternates: Vec::new(),
            },
            t0,
        );
        let mut resumes = Vec::new();
        let mut t = t0;
        for _ in 0..30 {
            for e in exec.poll(t, &mut landscape, &mut c) {
                if let ExecutionEvent::Retried { resume_at, .. } = e {
                    resumes.push(resume_at);
                }
            }
            t += SimDuration::from_minutes(1);
        }
        assert_eq!(resumes.len(), 4);
        // Waits: 1, 2, 3 (capped), 3 (capped) minutes.
        let m = |n| SimDuration::from_minutes(n);
        assert_eq!(resumes[0], t0 + m(1));
        assert_eq!(resumes[1], resumes[0] + m(2));
        assert_eq!(resumes[2], resumes[1] + m(3));
        assert_eq!(resumes[3], resumes[2] + m(3));
    }

    #[test]
    fn timed_out_start_is_fenced_and_cannot_create_a_ghost_instance() {
        let f = fixture();
        let mut landscape = f.landscape;
        let mut c = AutoGlobeController::new();
        // Every attempt takes 5 minutes but times out after 2 — and would
        // have succeeded (failure probability 0): the classic ghost-start
        // hazard.
        let config = ExecutorConfig {
            min_latency: SimDuration::from_minutes(5),
            max_latency: SimDuration::from_minutes(5),
            timeout: SimDuration::from_minutes(2),
            failure_probability: 0.0,
            max_attempts: 2,
            backoff_base: SimDuration::from_minutes(1),
            backoff_cap: SimDuration::from_minutes(1),
            ..ExecutorConfig::reliable()
        };
        let mut exec = ActionExecutor::new(config, 5);
        let before = landscape.num_instances();
        let t0 = SimTime::from_hours(2);
        exec.dispatch(
            DecidedAction {
                action: Action::ScaleOut {
                    service: f.fi,
                    target: f.big,
                },
                trigger: TriggerKind::ServiceOverloaded,
                applicability: 0.9,
                host_score: Some(0.7),
                alternates: vec![(f.blade2, 0.5)],
            },
            t0,
        );
        let mut all = Vec::new();
        let mut t = t0;
        for _ in 0..20 {
            all.extend(exec.poll(t, &mut landscape, &mut c));
            t += SimDuration::from_minutes(1);
        }
        let timeouts = all
            .iter()
            .filter(|e| matches!(e, ExecutionEvent::TimedOut { .. }))
            .count();
        let fenced = all
            .iter()
            .filter(|e| matches!(e, ExecutionEvent::FencedLateSuccess { .. }))
            .count();
        assert_eq!(timeouts, 2, "both attempts time out");
        assert_eq!(fenced, 2, "both late successes are discarded");
        assert!(all
            .iter()
            .any(|e| matches!(e, ExecutionEvent::Abandoned { .. })));
        // The fence held: no ghost instance appeared.
        assert_eq!(landscape.num_instances(), before);
        assert!(exec.is_idle());
    }

    #[test]
    fn dispatch_ids_are_sequential() {
        let f = fixture();
        let mut exec = ActionExecutor::new(ExecutorConfig::reliable(), 1);
        let d = DecidedAction {
            action: Action::ReducePriority { service: f.fi },
            trigger: TriggerKind::ServerIdle,
            applicability: 0.5,
            host_score: None,
            alternates: Vec::new(),
        };
        assert_eq!(exec.dispatch(d.clone(), SimTime::ZERO), 0);
        assert_eq!(exec.dispatch(d, SimTime::ZERO), 1);
        assert_eq!(exec.in_flight(), 2);
    }

    #[test]
    fn stale_epoch_in_flight_work_is_fenced_at_succession() {
        // A shard owner dispatches under lease epoch 1, then loses the
        // lease while the op is still in flight. Raising the fence must
        // discard the op without it ever touching the landscape.
        let mut f = fixture();
        let mut c = AutoGlobeController::new();
        let config = ExecutorConfig {
            min_latency: SimDuration::from_minutes(5),
            max_latency: SimDuration::from_minutes(5),
            timeout: SimDuration::from_minutes(30),
            ..ExecutorConfig::reliable()
        };
        let mut exec = ActionExecutor::new(config, 7);
        exec.set_epoch(1);
        let event = overload_event(f.fi);
        let planned = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        exec.dispatch(planned.decided.expect("trigger must decide"), event.time);
        assert_eq!(exec.in_flight(), 1);
        let before = f.landscape.num_instances();

        let fenced = exec.fence_below(2, event.time + SimDuration::from_minutes(1));
        assert_eq!(fenced.len(), 1);
        assert!(
            matches!(fenced[0], ExecutionEvent::FencedStaleEpoch { epoch: 1, .. }),
            "succession must fence the stale-epoch op: {fenced:?}"
        );
        assert!(exec.is_idle());

        // Long after the op would have completed, nothing applies.
        let later = event.time + SimDuration::from_hours(1);
        let events = exec.poll(later, &mut f.landscape, &mut c);
        assert!(events.is_empty(), "fenced op must stay dead: {events:?}");
        assert_eq!(f.landscape.num_instances(), before);
    }

    #[test]
    fn revived_owner_cannot_issue_ghost_moves() {
        // The deposed owner revives still believing in its old epoch and
        // dispatches after the fence was raised: the op is discarded at
        // its first poll, not applied.
        let mut f = fixture();
        let mut c = AutoGlobeController::new();
        let mut exec = ActionExecutor::new(ExecutorConfig::reliable(), 7);
        exec.set_epoch(1);
        assert!(exec.fence_below(2, SimTime::ZERO).is_empty());

        let event = overload_event(f.fi);
        let planned = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        exec.dispatch(planned.decided.expect("trigger must decide"), event.time);
        let before = f.landscape.num_instances();
        let events = exec.poll(event.time, &mut f.landscape, &mut c);
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], ExecutionEvent::FencedStaleEpoch { epoch: 1, .. }),
            "stale dispatch must fence, not apply: {events:?}"
        );
        assert_eq!(f.landscape.num_instances(), before);
        assert!(exec.is_idle());

        // Re-admitted at the current epoch, the same owner acts normally.
        exec.set_epoch(2);
        let planned = c.plan_trigger(&event, &f.landscape, &f.loads, event.time);
        exec.dispatch(planned.decided.expect("trigger must decide"), event.time);
        let events = exec.poll(event.time, &mut f.landscape, &mut c);
        assert!(
            matches!(events[0], ExecutionEvent::Completed { .. }),
            "current-epoch dispatch must apply: {events:?}"
        );
    }
}
