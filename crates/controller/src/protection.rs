//! Protection mode: freezing recently rearranged entities.
//!
//! "After a rearrangement has taken place, the involved services and servers
//! are protected for a certain time, i.e., they are excluded from further
//! actions. This protection mode prevents the system from oscillation, e.g.,
//! moving services back and forth." (Section 4) The paper's simulations use
//! 30 minutes (Section 5.1).

use autoglobe_landscape::ServerId;
use autoglobe_monitor::{SimDuration, SimTime, Subject};
use std::collections::BTreeMap;

/// Tracks which subjects are protected until when.
#[derive(Debug, Clone, Default)]
pub struct ProtectionRegistry {
    until: BTreeMap<Subject, SimTime>,
}

impl ProtectionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtectionRegistry::default()
    }

    /// Protect `subject` until `now + duration`. Extends (never shortens) an
    /// existing protection.
    pub fn protect(&mut self, subject: Subject, now: SimTime, duration: SimDuration) {
        let until = now + duration;
        let entry = self.until.entry(subject).or_insert(until);
        if *entry < until {
            *entry = until;
        }
    }

    /// True if `subject` is protected at `now`.
    pub fn is_protected(&self, subject: Subject, now: SimTime) -> bool {
        self.until.get(&subject).is_some_and(|&until| now < until)
    }

    /// When `subject`'s protection expires, if protected at `now`.
    pub fn protected_until(&self, subject: Subject, now: SimTime) -> Option<SimTime> {
        self.until
            .get(&subject)
            .copied()
            .filter(|&until| now < until)
    }

    /// Server ids protected at `now`, ascending. The host-ranking
    /// prefilter probes every server of the landscape, so it snapshots
    /// this small set once per ranking instead of paying a tree lookup
    /// per server; membership here is exactly [`Self::is_protected`] on
    /// `Subject::Server` at the same `now`.
    pub fn protected_servers(&self, now: SimTime) -> Vec<ServerId> {
        self.until
            .iter()
            .filter_map(|(subject, &until)| match subject {
                Subject::Server(s) if now < until => Some(*s),
                _ => None,
            })
            .collect()
    }

    /// Remove expired entries (call periodically; correctness does not
    /// depend on it).
    pub fn expire(&mut self, now: SimTime) {
        self.until.retain(|_, &mut until| now < until);
    }

    /// Number of currently tracked (possibly expired) entries.
    pub fn len(&self) -> usize {
        self.until.len()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.until.is_empty()
    }

    /// Lift protection from a subject (administrator override).
    pub fn unprotect(&mut self, subject: Subject) {
        self.until.remove(&subject);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autoglobe_landscape::ServerId;

    fn subject(n: u32) -> Subject {
        Subject::Server(ServerId::new(n))
    }

    const THIRTY_MIN: SimDuration = SimDuration::from_minutes(30);

    #[test]
    fn protection_expires_after_duration() {
        let mut p = ProtectionRegistry::new();
        let t0 = SimTime::from_minutes(10);
        p.protect(subject(0), t0, THIRTY_MIN);
        assert!(p.is_protected(subject(0), t0));
        assert!(p.is_protected(subject(0), SimTime::from_minutes(39)));
        assert!(!p.is_protected(subject(0), SimTime::from_minutes(40)));
        assert!(!p.is_protected(subject(1), t0));
    }

    #[test]
    fn protect_extends_but_never_shortens() {
        let mut p = ProtectionRegistry::new();
        p.protect(subject(0), SimTime::from_minutes(0), THIRTY_MIN);
        // A later, shorter protection must not shorten the existing one.
        p.protect(
            subject(0),
            SimTime::from_minutes(5),
            SimDuration::from_minutes(5),
        );
        assert!(p.is_protected(subject(0), SimTime::from_minutes(29)));
        // A later, longer one extends.
        p.protect(subject(0), SimTime::from_minutes(20), THIRTY_MIN);
        assert!(p.is_protected(subject(0), SimTime::from_minutes(49)));
        assert!(!p.is_protected(subject(0), SimTime::from_minutes(50)));
    }

    #[test]
    fn protected_until_reports_deadline() {
        let mut p = ProtectionRegistry::new();
        p.protect(subject(0), SimTime::ZERO, THIRTY_MIN);
        assert_eq!(
            p.protected_until(subject(0), SimTime::from_minutes(10)),
            Some(SimTime::from_minutes(30))
        );
        assert_eq!(
            p.protected_until(subject(0), SimTime::from_minutes(31)),
            None
        );
        assert_eq!(p.protected_until(subject(9), SimTime::ZERO), None);
    }

    #[test]
    fn expire_compacts_the_registry() {
        let mut p = ProtectionRegistry::new();
        p.protect(subject(0), SimTime::ZERO, SimDuration::from_minutes(10));
        p.protect(subject(1), SimTime::ZERO, SimDuration::from_minutes(60));
        assert_eq!(p.len(), 2);
        p.expire(SimTime::from_minutes(30));
        assert_eq!(p.len(), 1);
        assert!(p.is_protected(subject(1), SimTime::from_minutes(30)));
    }

    #[test]
    fn protected_servers_snapshot_matches_is_protected() {
        use autoglobe_landscape::{InstanceId, ServiceId};
        let mut p = ProtectionRegistry::new();
        p.protect(subject(7), SimTime::ZERO, THIRTY_MIN);
        p.protect(subject(2), SimTime::ZERO, SimDuration::from_minutes(5));
        p.protect(
            Subject::Service(ServiceId::new(1)),
            SimTime::ZERO,
            THIRTY_MIN,
        );
        p.protect(
            Subject::Instance(InstanceId::new(3)),
            SimTime::ZERO,
            THIRTY_MIN,
        );
        // Both servers inside their windows, ascending; non-servers omitted.
        assert_eq!(
            p.protected_servers(SimTime::from_minutes(1)),
            vec![ServerId::new(2), ServerId::new(7)]
        );
        // The short protection has lapsed by minute 10.
        assert_eq!(
            p.protected_servers(SimTime::from_minutes(10)),
            vec![ServerId::new(7)]
        );
    }

    #[test]
    fn unprotect_lifts_immediately() {
        let mut p = ProtectionRegistry::new();
        p.protect(subject(0), SimTime::ZERO, THIRTY_MIN);
        p.unprotect(subject(0));
        assert!(!p.is_protected(subject(0), SimTime::from_minutes(1)));
        assert!(p.is_empty());
    }
}
