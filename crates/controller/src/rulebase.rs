//! The controller's rule bases.
//!
//! "Since the action-selection process depends on the specific situation,
//! our controller is able to handle dedicated rule bases for different
//! exceptional situations (triggers). ... Further, our controller
//! facilitates dynamic adaptations. For example, an administrator can add
//! service-specific rule bases for mission critical services." (Section 4.1)
//! Analogously, the server-selection controller has per-action rule bases
//! (Section 4.2). The default rule base below comprises 45 rules — the
//! paper's production rule base "comprises about 40 rules".

use autoglobe_fuzzy::{parse_rules, FuzzyError, RuleBase};
use autoglobe_landscape::xml::RuleBaseDescription;
use autoglobe_landscape::{ActionKind, LandscapeError};
use autoglobe_monitor::TriggerKind;
use std::collections::BTreeMap;

/// The complete set of rule bases the controller runs with: one per trigger
/// kind for action selection, one per action kind for server selection, plus
/// optional service-specific extensions layered on top.
///
/// All four maps are `BTreeMap`s on purpose: `service_trigger_keys` /
/// `service_action_keys` are *iterated* when the selectors pre-build their
/// engines, and a `HashMap` there would make iteration order (and any future
/// order-dependent consumer) vary run to run — seed-invisible
/// nondeterminism the rest of the decision path is carefully built to
/// exclude.
#[derive(Debug, Clone)]
pub struct RuleBases {
    triggers: BTreeMap<TriggerKind, RuleBase>,
    /// `(trigger, service name) → extension rules`.
    service_triggers: BTreeMap<(TriggerKind, String), RuleBase>,
    actions: BTreeMap<ActionKind, RuleBase>,
    /// `(action, service name) → extension rules`.
    service_actions: BTreeMap<(ActionKind, String), RuleBase>,
}

impl RuleBases {
    /// An empty collection (no rules at all — the controller will never act).
    pub fn empty() -> Self {
        RuleBases {
            triggers: BTreeMap::new(),
            service_triggers: BTreeMap::new(),
            actions: BTreeMap::new(),
            service_actions: BTreeMap::new(),
        }
    }

    /// The default AutoGlobe rule base (45 rules).
    pub fn paper_defaults() -> Self {
        let mut rb = RuleBases::empty();
        rb.triggers.insert(
            TriggerKind::ServiceOverloaded,
            parse_rules(SERVICE_OVERLOADED).expect("default rules parse"),
        );
        rb.triggers.insert(
            TriggerKind::ServiceIdle,
            parse_rules(SERVICE_IDLE).expect("default rules parse"),
        );
        rb.triggers.insert(
            TriggerKind::ServerOverloaded,
            parse_rules(SERVER_OVERLOADED).expect("default rules parse"),
        );
        rb.triggers.insert(
            TriggerKind::ServerIdle,
            parse_rules(SERVER_IDLE).expect("default rules parse"),
        );
        for (kind, text) in [
            (ActionKind::Start, SELECT_PLACEMENT),
            (ActionKind::ScaleOut, SELECT_PLACEMENT),
            (ActionKind::Move, SELECT_PLACEMENT),
            (ActionKind::ScaleUp, SELECT_SCALE_UP),
            (ActionKind::ScaleDown, SELECT_SCALE_DOWN),
        ] {
            rb.actions
                .insert(kind, parse_rules(text).expect("default rules parse"));
        }
        rb
    }

    /// The action-selection rule base for a trigger, with the
    /// service-specific extension (if any) layered on top.
    pub fn for_trigger(&self, trigger: TriggerKind, service_name: &str) -> RuleBase {
        let mut base = self.triggers.get(&trigger).cloned().unwrap_or_default();
        if let Some(extra) = self
            .service_triggers
            .get(&(trigger, service_name.to_string()))
        {
            base.extend_from(extra);
        }
        base
    }

    /// The server-selection rule base for an action, with the
    /// service-specific extension (if any) layered on top.
    pub fn for_action(&self, action: ActionKind, service_name: &str) -> RuleBase {
        let mut base = self.actions.get(&action).cloned().unwrap_or_default();
        if let Some(extra) = self
            .service_actions
            .get(&(action, service_name.to_string()))
        {
            base.extend_from(extra);
        }
        base
    }

    /// Replace the rule base of a trigger.
    pub fn set_trigger_rules(&mut self, trigger: TriggerKind, rules: RuleBase) {
        self.triggers.insert(trigger, rules);
    }

    /// Replace the rule base of an action.
    pub fn set_action_rules(&mut self, action: ActionKind, rules: RuleBase) {
        self.actions.insert(action, rules);
    }

    /// Attach a service-specific extension to a trigger rule base.
    pub fn add_service_trigger_rules(
        &mut self,
        trigger: TriggerKind,
        service_name: impl Into<String>,
        rules: RuleBase,
    ) {
        self.service_triggers
            .insert((trigger, service_name.into()), rules);
    }

    /// Attach a service-specific extension to an action rule base.
    pub fn add_service_action_rules(
        &mut self,
        action: ActionKind,
        service_name: impl Into<String>,
        rules: RuleBase,
    ) {
        self.service_actions
            .insert((action, service_name.into()), rules);
    }

    /// True if a service-specific extension exists for `(trigger, service)`.
    pub fn has_service_trigger_rules(&self, trigger: TriggerKind, service_name: &str) -> bool {
        self.service_triggers
            .contains_key(&(trigger, service_name.to_string()))
    }

    /// True if a service-specific extension exists for `(action, service)`.
    pub fn has_service_action_rules(&self, action: ActionKind, service_name: &str) -> bool {
        self.service_actions
            .contains_key(&(action, service_name.to_string()))
    }

    /// All `(trigger, service)` pairs with service-specific extensions, in
    /// sorted (deterministic) order.
    pub fn service_trigger_keys(&self) -> impl Iterator<Item = (TriggerKind, &str)> {
        self.service_triggers.keys().map(|(t, s)| (*t, s.as_str()))
    }

    /// All `(action, service)` pairs with service-specific extensions, in
    /// sorted (deterministic) order.
    pub fn service_action_keys(&self) -> impl Iterator<Item = (ActionKind, &str)> {
        self.service_actions.keys().map(|(a, s)| (*a, s.as_str()))
    }

    /// Total number of rules across all bases.
    pub fn total_rules(&self) -> usize {
        self.triggers.values().map(RuleBase::len).sum::<usize>()
            + self
                .service_triggers
                .values()
                .map(RuleBase::len)
                .sum::<usize>()
            + self.actions.values().map(RuleBase::len).sum::<usize>()
            + self
                .service_actions
                .values()
                .map(RuleBase::len)
                .sum::<usize>()
    }

    /// Load rule bases from XML `<ruleBase>` descriptions (see
    /// [`autoglobe_landscape::xml::schema`]). Descriptions with a `service`
    /// attribute become service-specific extensions; others replace the
    /// default base for their trigger/action.
    pub fn apply_descriptions(
        &mut self,
        descriptions: &[RuleBaseDescription],
    ) -> Result<(), LandscapeError> {
        for d in descriptions {
            let rules = parse_rules(&d.text).map_err(|e: FuzzyError| LandscapeError::Schema {
                message: format!("rule base `{}`: {e}", d.key),
            })?;
            match d.key.split_once(':') {
                Some(("trigger", name)) => {
                    let trigger =
                        TriggerKind::from_name(name).ok_or_else(|| LandscapeError::Schema {
                            message: format!("unknown trigger `{name}`"),
                        })?;
                    match &d.service {
                        Some(svc) => self.add_service_trigger_rules(trigger, svc.clone(), rules),
                        None => self.set_trigger_rules(trigger, rules),
                    }
                }
                Some(("action", name)) => {
                    let action = ActionKind::from_variable_name(name).ok_or_else(|| {
                        LandscapeError::Schema {
                            message: format!("unknown action `{name}`"),
                        }
                    })?;
                    match &d.service {
                        Some(svc) => self.add_service_action_rules(action, svc.clone(), rules),
                        None => self.set_action_rules(action, rules),
                    }
                }
                _ => {
                    return Err(LandscapeError::Schema {
                        message: format!("rule base key `{}` must be trigger:* or action:*", d.key),
                    })
                }
            }
        }
        Ok(())
    }
}

impl Default for RuleBases {
    fn default() -> Self {
        RuleBases::paper_defaults()
    }
}

/// Rules fired when a *service* is overloaded (its instances are, on
/// average, running hot). The paper's sample rules from Section 3 appear
/// verbatim as the first two.
const SERVICE_OVERLOADED: &str = "
# The two sample rules of the paper, Section 3:
IF cpuLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium)
THEN scaleUp IS applicable

IF cpuLoad IS high AND performanceIndex IS high
THEN scaleOut IS applicable

# Overloaded service: grow the instance pool when the whole service is hot.
IF serviceLoad IS high AND instancesOfService IS one
THEN scaleOut IS applicable

IF serviceLoad IS high AND cpuLoad IS high
THEN scaleOut IS applicable WITH 0.85

IF serviceLoad IS high AND memLoad IS high
THEN scaleOut IS applicable WITH 0.8

# `NOT low` rather than `medium`: identical on [0, 0.5] (the falling edge
# of *low* mirrors the rising edge of *medium*) but it keeps covering the
# [0.5, 0.7] band where *medium* fades before *high* has ramped up. With
# `medium` here, raising a hot service's host CPU from 0.39 to 0.61 dropped
# the best remedy below the execution threshold — more load, less action.
IF serviceLoad IS high AND NOT cpuLoad IS low
THEN scaleOut IS applicable WITH 0.6

# One hot instance while the service average is fine: rebalance it.
IF instanceLoad IS high AND serviceLoad IS medium AND instancesOnServer IS many
THEN move IS applicable WITH 0.9

IF instanceLoad IS high AND serviceLoad IS medium
THEN move IS applicable WITH 0.7

# Hot instance on a crowded weak host: lift it to a bigger box.
IF instanceLoad IS high AND cpuLoad IS high AND memLoad IS high
THEN scaleUp IS applicable WITH 0.9

# Last resort: prefer the service over its neighbours.
IF serviceLoad IS high AND NOT cpuLoad IS high
THEN increasePriority IS applicable WITH 0.3
";

/// Rules fired when a *service* is idle.
const SERVICE_IDLE: &str = "
IF serviceLoad IS low AND instancesOfService IS many
THEN scaleIn IS applicable WITH 0.75

IF serviceLoad IS low AND instancesOfService IS few
THEN scaleIn IS applicable WITH 0.35

# An idle instance on a busy host wastes room others need.
IF instanceLoad IS low AND cpuLoad IS high AND instancesOfService IS many
THEN scaleIn IS applicable WITH 0.9

# An idle service hogging a powerful host should vacate it — but only if
# its absolute demand would actually fit on a weaker host (otherwise the
# controller oscillates between scale-up and scale-down).
IF instanceLoad IS low AND serviceLoad IS low AND performanceIndex IS high AND instanceDemand IS small
THEN scaleDown IS applicable WITH 0.6

IF serviceLoad IS low AND instancesOfService IS one
THEN reducePriority IS applicable WITH 0.3
";

/// Rules fired when a *server* is overloaded. The controller runs these once
/// per service on the server (Figure 7) and merges the ranked actions.
const SERVER_OVERLOADED: &str = "
# Hot instance on a strong host: add capacity elsewhere.
IF cpuLoad IS high AND instanceLoad IS high AND performanceIndex IS high
THEN scaleOut IS applicable

# Hot instance on a weak host: lift it.
IF cpuLoad IS high AND instanceLoad IS high AND (performanceIndex IS low OR performanceIndex IS medium)
THEN scaleUp IS applicable

# Crowded host: move something away.
IF cpuLoad IS high AND instancesOnServer IS many
THEN move IS applicable

IF cpuLoad IS high AND instanceLoad IS medium AND instancesOnServer IS few
THEN move IS applicable WITH 0.8

IF memLoad IS high AND instancesOnServer IS many
THEN move IS applicable WITH 0.9

# A light instance is the cheapest to relocate.
IF cpuLoad IS high AND instanceLoad IS low AND instancesOnServer IS many
THEN move IS applicable WITH 0.5

IF cpuLoad IS high AND instanceLoad IS low AND instanceDemand IS small
THEN move IS applicable WITH 0.5

# The service is hot overall, not just here: scale it out.
IF cpuLoad IS high AND serviceLoad IS high
THEN scaleOut IS applicable WITH 0.9

IF cpuLoad IS high AND instanceLoad IS high AND instancesOfService IS one
THEN scaleOut IS applicable

# The service is quiet elsewhere: retire this instance instead.
IF cpuLoad IS high AND serviceLoad IS low AND instancesOfService IS many
THEN scaleIn IS applicable WITH 0.6

IF memLoad IS high AND instanceLoad IS high
THEN scaleUp IS applicable WITH 0.7

# Nothing moves? De-prioritize background services.
IF cpuLoad IS high AND serviceLoad IS low
THEN reducePriority IS applicable WITH 0.25
";

/// Rules fired when a *server* is idle: consolidate to free it up.
const SERVER_IDLE: &str = "
IF cpuLoad IS low AND instanceLoad IS low AND instancesOfService IS many
THEN scaleIn IS applicable WITH 0.75

IF cpuLoad IS low AND serviceLoad IS low AND instancesOfService IS few
THEN scaleIn IS applicable WITH 0.35

# An idle instance on a powerful host should make room. (Deliberately no
# move-to-peer rule here: moving between two equally idle hosts achieves
# nothing and oscillates at exactly the protection-expiry cadence.)
IF cpuLoad IS low AND instanceLoad IS low AND performanceIndex IS high AND instanceDemand IS small
THEN scaleDown IS applicable WITH 0.8
";

/// Server-selection rules for placement actions (start, scale-out, move):
/// prefer lightly loaded hosts, then powerful ones.
const SELECT_PLACEMENT: &str = "
IF cpuLoad IS low AND memLoad IS low
THEN score IS applicable

IF cpuLoad IS low AND performanceIndex IS high
THEN score IS applicable

IF cpuLoad IS low AND instancesOnServer IS none
THEN score IS applicable WITH 0.9

IF cpuLoad IS medium AND memLoad IS low
THEN score IS applicable WITH 0.5

IF memory IS large AND memLoad IS low
THEN score IS applicable WITH 0.6

IF cpuLoad IS low AND (instancesOnServer IS none OR instancesOnServer IS one)
THEN score IS applicable WITH 0.8

IF swapSpace IS large AND tempSpace IS large AND cpuLoad IS low
THEN score IS applicable WITH 0.4
";

/// Server-selection rules for scale-up: the power of the target dominates.
const SELECT_SCALE_UP: &str = "
IF performanceIndex IS high AND cpuLoad IS low
THEN score IS applicable

IF performanceIndex IS high AND cpuLoad IS medium
THEN score IS applicable WITH 0.6

IF numberOfCpus IS many AND memLoad IS low
THEN score IS applicable WITH 0.7

IF cpuClock IS fast AND cpuCache IS large AND cpuLoad IS low
THEN score IS applicable WITH 0.6

IF performanceIndex IS medium AND cpuLoad IS low
THEN score IS applicable WITH 0.5
";

/// Server-selection rules for scale-down: prefer the weakest sufficient
/// host so powerful ones stay available.
const SELECT_SCALE_DOWN: &str = "
IF performanceIndex IS low AND cpuLoad IS low
THEN score IS applicable

IF performanceIndex IS medium AND cpuLoad IS low
THEN score IS applicable WITH 0.6

IF performanceIndex IS low AND cpuLoad IS medium
THEN score IS applicable WITH 0.4

IF instancesOnServer IS none AND performanceIndex IS low
THEN score IS applicable WITH 0.8
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_have_about_forty_rules() {
        // The placement rule base is shared by start/scale-out/move, so
        // count distinct rules, not per-action copies.
        let rb = RuleBases::paper_defaults();
        let mut distinct = std::collections::BTreeSet::new();
        for trigger in TriggerKind::ALL {
            for rule in rb.for_trigger(trigger, "").rules() {
                distinct.insert(format!("{trigger}:{rule}"));
            }
        }
        let mut selection = std::collections::BTreeSet::new();
        for kind in ActionKind::ALL {
            for rule in rb.for_action(kind, "").rules() {
                selection.insert(rule.to_string());
            }
        }
        let total = distinct.len() + selection.len();
        assert!(
            (40..=55).contains(&total),
            "paper says 'about 40 rules', got {total} distinct"
        );
    }

    #[test]
    fn every_trigger_has_rules() {
        let rb = RuleBases::paper_defaults();
        for trigger in TriggerKind::ALL {
            assert!(
                !rb.for_trigger(trigger, "anything").is_empty(),
                "{trigger} has no rules"
            );
        }
    }

    #[test]
    fn every_target_needing_action_has_selection_rules() {
        let rb = RuleBases::paper_defaults();
        for kind in ActionKind::ALL {
            if kind.needs_target() {
                assert!(
                    !rb.for_action(kind, "anything").is_empty(),
                    "{kind} has no server-selection rules"
                );
            }
        }
    }

    #[test]
    fn paper_sample_rules_are_present_verbatim() {
        let rb = RuleBases::paper_defaults();
        let overloaded = rb.for_trigger(TriggerKind::ServiceOverloaded, "x");
        let texts: Vec<String> = overloaded.rules().iter().map(|r| r.to_string()).collect();
        assert!(texts.iter().any(|t| t.contains("scaleUp IS applicable")
            && t.contains("performanceIndex IS low OR performanceIndex IS medium")));
        assert!(texts.iter().any(|t| t
            == "IF (cpuLoad IS high AND performanceIndex IS high) THEN scaleOut IS applicable"));
    }

    #[test]
    fn service_specific_rules_layer_on_top() {
        let mut rb = RuleBases::paper_defaults();
        let base_len = rb.for_trigger(TriggerKind::ServiceOverloaded, "DB").len();
        rb.add_service_trigger_rules(
            TriggerKind::ServiceOverloaded,
            "DB",
            parse_rules("IF cpuLoad IS high THEN increasePriority IS applicable").unwrap(),
        );
        assert_eq!(
            rb.for_trigger(TriggerKind::ServiceOverloaded, "DB").len(),
            base_len + 1
        );
        // Other services are unaffected.
        assert_eq!(
            rb.for_trigger(TriggerKind::ServiceOverloaded, "FI").len(),
            base_len
        );
    }

    #[test]
    fn descriptions_replace_and_extend() {
        let mut rb = RuleBases::paper_defaults();
        rb.apply_descriptions(&[
            RuleBaseDescription {
                key: "trigger:serviceIdle".into(),
                service: None,
                text: "IF serviceLoad IS low THEN scaleIn IS applicable".into(),
            },
            RuleBaseDescription {
                key: "action:move".into(),
                service: Some("FI".into()),
                text: "IF performanceIndex IS high THEN score IS applicable".into(),
            },
        ])
        .unwrap();
        assert_eq!(rb.for_trigger(TriggerKind::ServiceIdle, "x").len(), 1);
        let default_move = RuleBases::paper_defaults()
            .for_action(ActionKind::Move, "FI")
            .len();
        assert_eq!(
            rb.for_action(ActionKind::Move, "FI").len(),
            default_move + 1
        );
    }

    #[test]
    fn bad_descriptions_are_rejected() {
        let mut rb = RuleBases::empty();
        for (key, text) in [
            ("trigger:bogus", "IF a IS b THEN c IS d"),
            ("action:fly", "IF a IS b THEN c IS d"),
            ("neither", "IF a IS b THEN c IS d"),
            ("trigger:serviceIdle", "not a rule"),
        ] {
            let result = rb.apply_descriptions(&[RuleBaseDescription {
                key: key.into(),
                service: None,
                text: text.into(),
            }]);
            assert!(result.is_err(), "should reject key={key} text={text}");
        }
    }

    #[test]
    fn service_keys_iterate_in_sorted_order_regardless_of_insertion() {
        // The selectors iterate these key sets when pre-building engines;
        // sorted order (BTreeMap-backed) keeps that — and any future
        // order-dependent consumer — deterministic run to run.
        let rules = || parse_rules("IF cpuLoad IS high THEN scaleOut IS applicable").unwrap();
        let score_rules =
            || parse_rules("IF performanceIndex IS high THEN score IS applicable").unwrap();
        let mut forward = RuleBases::paper_defaults();
        let mut reverse = RuleBases::paper_defaults();
        let services = ["Web", "DB", "FI", "CRM", "APO"];
        for svc in services {
            forward.add_service_trigger_rules(TriggerKind::ServiceOverloaded, svc, rules());
            forward.add_service_action_rules(ActionKind::Move, svc, score_rules());
        }
        for svc in services.iter().rev() {
            reverse.add_service_trigger_rules(TriggerKind::ServiceOverloaded, *svc, rules());
            reverse.add_service_action_rules(ActionKind::Move, *svc, score_rules());
        }
        let fwd_triggers: Vec<_> = forward.service_trigger_keys().collect();
        let rev_triggers: Vec<_> = reverse.service_trigger_keys().collect();
        assert_eq!(fwd_triggers, rev_triggers, "insertion order must not leak");
        let mut sorted = fwd_triggers.clone();
        sorted.sort();
        assert_eq!(fwd_triggers, sorted, "keys iterate sorted");
        let fwd_actions: Vec<_> = forward.service_action_keys().collect();
        let rev_actions: Vec<_> = reverse.service_action_keys().collect();
        assert_eq!(fwd_actions, rev_actions);
        let mut sorted = fwd_actions.clone();
        sorted.sort();
        assert_eq!(fwd_actions, sorted);
    }

    #[test]
    fn empty_rule_bases_yield_empty_lookups() {
        let rb = RuleBases::empty();
        assert_eq!(rb.total_rules(), 0);
        assert!(rb.for_trigger(TriggerKind::ServerIdle, "x").is_empty());
        assert!(rb.for_action(ActionKind::Move, "x").is_empty());
    }
}
