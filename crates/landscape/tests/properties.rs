//! Property-based tests: XML round-trips and allocation-table invariants.

use autoglobe_landscape::xml::LandscapeDescription;
use autoglobe_landscape::{
    Action, ActionKind, Landscape, ServerSpec, ServiceKind, ServiceSpec,
};
use proptest::prelude::*;

fn server_strategy(n: usize) -> impl Strategy<Value = ServerSpec> {
    (
        Just(n),
        1.0f64..16.0,
        1u32..=16,
        500u32..4000,
        1024u64..65536,
    )
        .prop_map(|(i, idx, cpus, clock, mem)| {
            ServerSpec::new(format!("server{i}"), (idx * 10.0).round() / 10.0)
                .with_cpus(cpus, clock, 512)
                .with_memory(mem, mem * 2)
        })
}

fn service_strategy(n: usize) -> impl Strategy<Value = ServiceSpec> {
    (
        Just(n),
        0u32..3,
        proptest::option::of(3u32..10),
        any::<bool>(),
        proptest::option::of(1.0f64..8.0),
        0.0f64..0.3,
        0.0f64..0.01,
        proptest::collection::btree_set(
            proptest::sample::select(ActionKind::ALL.to_vec()),
            0..ActionKind::ALL.len(),
        ),
    )
        .prop_map(
            |(i, min_inst, max_inst, exclusive, min_idx, base, per_user, actions)| {
                let mut spec = ServiceSpec::new(
                    format!("service{i}"),
                    ServiceKind::ApplicationServer,
                )
                .with_instances(min_inst, max_inst.map(|m| m.max(min_inst.max(1))))
                .with_exclusive(exclusive)
                .with_load_model((base * 1000.0).round() / 1000.0, (per_user * 10000.0).round() / 10000.0)
                .with_allowed_actions(actions);
                if let Some(idx) = min_idx {
                    spec = spec.with_min_performance_index((idx * 10.0).round() / 10.0);
                }
                spec
            },
        )
}

fn description_strategy() -> impl Strategy<Value = LandscapeDescription> {
    (1usize..6, 1usize..5).prop_flat_map(|(ns, nv)| {
        let servers: Vec<_> = (0..ns).map(server_strategy).collect();
        let services: Vec<_> = (0..nv).map(service_strategy).collect();
        (servers, services).prop_map(|(servers, services)| LandscapeDescription {
            servers,
            services,
            allocation: vec![],
            rule_bases: vec![],
        })
    })
}

proptest! {
    /// Any generated description serializes to XML and parses back
    /// structurally identical.
    #[test]
    fn xml_round_trip(description in description_strategy()) {
        let xml = description.to_xml();
        let reparsed = LandscapeDescription::from_xml(&xml).unwrap();
        prop_assert_eq!(description, reparsed);
    }

    /// Names containing XML-special characters survive escaping.
    #[test]
    fn special_characters_round_trip(raw in "[A-Za-z<>&\"' ]{1,20}") {
        prop_assume!(!raw.trim().is_empty());
        let description = LandscapeDescription {
            servers: vec![ServerSpec::new(raw.clone(), 1.0)],
            services: vec![],
            allocation: vec![],
            rule_bases: vec![],
        };
        let xml = description.to_xml();
        let reparsed = LandscapeDescription::from_xml(&xml).unwrap();
        prop_assert_eq!(&reparsed.servers[0].name, &raw);
    }

    /// Applying any sequence of (pre-validated) actions keeps the allocation
    /// table consistent: instance counts match, every instance's server
    /// exists, and min/max bounds hold for scale actions the landscape
    /// accepted.
    #[test]
    fn random_action_sequences_preserve_invariants(
        seed_ops in proptest::collection::vec((0usize..4, 0usize..4, 0usize..4), 1..40),
    ) {
        let mut l = Landscape::new();
        let s0 = l.add_server(ServerSpec::fsc_bx300("A")).unwrap();
        let s1 = l.add_server(ServerSpec::fsc_bx600("B")).unwrap();
        let s2 = l.add_server(ServerSpec::hp_bl40p("C")).unwrap();
        let servers = [s0, s1, s2];
        let svc = l
            .add_service(
                ServiceSpec::new("S", ServiceKind::ApplicationServer)
                    .with_instances(1, Some(5))
                    .with_memory(128),
            )
            .unwrap();
        l.start_instance(svc, s0).unwrap();

        for (op, a, b) in seed_ops {
            let instances = l.instances_of(svc);
            let action = match op {
                0 => Action::ScaleOut { service: svc, target: servers[a % 3] },
                1 => {
                    let Some(&inst) = instances.get(a % instances.len().max(1)) else { continue };
                    Action::ScaleIn { instance: inst }
                }
                2 => {
                    let Some(&inst) = instances.get(a % instances.len().max(1)) else { continue };
                    Action::Move { instance: inst, target: servers[b % 3] }
                }
                _ => {
                    let Some(&inst) = instances.get(a % instances.len().max(1)) else { continue };
                    Action::ScaleUp { instance: inst, target: servers[b % 3] }
                }
            };
            // Apply may reject; rejection must not mutate state.
            let before = l.instances_of(svc).len();
            let result = l.apply(&action);
            let after = l.instances_of(svc).len();
            match (result.is_ok(), action.kind()) {
                (true, ActionKind::ScaleOut) => prop_assert_eq!(after, before + 1),
                (true, ActionKind::ScaleIn) => prop_assert_eq!(after, before - 1),
                (true, _) => prop_assert_eq!(after, before),
                (false, _) => prop_assert_eq!(after, before),
            }
            // Global invariants.
            let count = l.instances_of(svc).len();
            prop_assert!(count >= 1, "min instances");
            prop_assert!(count <= 5, "max instances");
            for inst in l.instances() {
                prop_assert!(l.server(inst.server).is_ok());
            }
        }
    }

    /// `can_host` is consistent with `apply(ScaleOut)`: if can_host says yes
    /// and the instance-count maximum is not reached, the action succeeds.
    #[test]
    fn can_host_predicts_scale_out(mem in 64u64..4096) {
        let mut l = Landscape::new();
        let srv = l.add_server(ServerSpec::fsc_bx300("A")).unwrap();
        let svc = l
            .add_service(
                ServiceSpec::new("S", ServiceKind::Generic)
                    .with_instances(0, None)
                    .with_memory(mem),
            )
            .unwrap();
        let can = l.can_host(svc, srv);
        let did = l.apply(&Action::ScaleOut { service: svc, target: srv }).is_ok();
        prop_assert_eq!(can, did);
    }
}

proptest! {
    /// The XML parser never panics, whatever bytes it is fed — it either
    /// parses or returns a positioned error.
    #[test]
    fn xml_parser_never_panics(input in ".{0,300}") {
        let _ = autoglobe_landscape::xml::parse(&input);
    }

    /// Near-miss documents (valid XML with random attribute soup) never
    /// panic the schema layer either.
    #[test]
    fn schema_layer_never_panics(
        attr in "[a-zA-Z]{1,12}",
        value in "[^\"<&]{0,16}",
    ) {
        let doc = format!(
            r#"<landscape><servers><server name="x" performanceIndex="1" {attr}="{value}"/></servers></landscape>"#
        );
        let _ = LandscapeDescription::from_xml(&doc);
    }
}
