//! Seeded property tests: XML round-trips and allocation-table invariants.

use autoglobe_landscape::xml::LandscapeDescription;
use autoglobe_landscape::{Action, ActionKind, Landscape, ServerSpec, ServiceKind, ServiceSpec};
use autoglobe_rng::{check, Rng};

fn random_server(rng: &mut Rng, i: usize) -> ServerSpec {
    let idx = rng.random_range(1.0..=16.0);
    let cpus = rng.random_int(1..=16) as u32;
    let clock = rng.random_int(500..=3999) as u32;
    let mem = rng.random_int(1024..=65_535);
    ServerSpec::new(format!("server{i}"), (idx * 10.0).round() / 10.0)
        .with_cpus(cpus, clock, 512)
        .with_memory(mem, mem * 2)
}

fn random_service(rng: &mut Rng, i: usize) -> ServiceSpec {
    let min_inst = rng.random_int(0..=2) as u32;
    let max_inst = if rng.random_bool(0.5) {
        Some(rng.random_int(3..=9) as u32)
    } else {
        None
    };
    let exclusive = rng.random_bool(0.5);
    let base = rng.random_range(0.0..=0.3);
    let per_user = rng.random_range(0.0..=0.01);
    let actions: Vec<ActionKind> = ActionKind::ALL
        .into_iter()
        .filter(|_| rng.random_bool(0.5))
        .collect();
    let mut spec = ServiceSpec::new(format!("service{i}"), ServiceKind::ApplicationServer)
        .with_instances(min_inst, max_inst.map(|m| m.max(min_inst.max(1))))
        .with_exclusive(exclusive)
        .with_load_model(
            (base * 1000.0).round() / 1000.0,
            (per_user * 10_000.0).round() / 10_000.0,
        )
        .with_allowed_actions(actions);
    if rng.random_bool(0.5) {
        let idx = rng.random_range(1.0..=8.0);
        spec = spec.with_min_performance_index((idx * 10.0).round() / 10.0);
    }
    spec
}

fn random_description(rng: &mut Rng) -> LandscapeDescription {
    let ns = 1 + rng.random_below(5);
    let nv = 1 + rng.random_below(4);
    LandscapeDescription {
        servers: (0..ns).map(|i| random_server(rng, i)).collect(),
        services: (0..nv).map(|i| random_service(rng, i)).collect(),
        allocation: vec![],
        rule_bases: vec![],
    }
}

#[test]
fn xml_round_trip() {
    // Any generated description serializes to XML and parses back
    // structurally identical.
    check::cases(128, |rng| {
        let description = random_description(rng);
        let xml = description.to_xml();
        let reparsed = LandscapeDescription::from_xml(&xml).unwrap();
        assert_eq!(description, reparsed);
    });
}

#[test]
fn special_characters_round_trip() {
    // Names containing XML-special characters survive escaping.
    const ALPHABET: [char; 10] = ['A', 'z', 'M', '<', '>', '&', '"', '\'', ' ', 'q'];
    check::cases(256, |rng| {
        let len = 1 + rng.random_below(20);
        let raw: String = (0..len).map(|_| *rng.choice(&ALPHABET)).collect();
        if raw.trim().is_empty() {
            return;
        }
        let description = LandscapeDescription {
            servers: vec![ServerSpec::new(raw.clone(), 1.0)],
            services: vec![],
            allocation: vec![],
            rule_bases: vec![],
        };
        let xml = description.to_xml();
        let reparsed = LandscapeDescription::from_xml(&xml).unwrap();
        assert_eq!(&reparsed.servers[0].name, &raw);
    });
}

#[test]
fn random_action_sequences_preserve_invariants() {
    // Applying any sequence of actions keeps the allocation table
    // consistent: instance counts match, every instance's server exists, and
    // min/max bounds hold; rejected actions must not mutate state.
    check::cases(192, |rng| {
        let mut l = Landscape::new();
        let s0 = l.add_server(ServerSpec::fsc_bx300("A")).unwrap();
        let s1 = l.add_server(ServerSpec::fsc_bx600("B")).unwrap();
        let s2 = l.add_server(ServerSpec::hp_bl40p("C")).unwrap();
        let servers = [s0, s1, s2];
        let svc = l
            .add_service(
                ServiceSpec::new("S", ServiceKind::ApplicationServer)
                    .with_instances(1, Some(5))
                    .with_memory(128),
            )
            .unwrap();
        l.start_instance(svc, s0).unwrap();

        let ops = 1 + rng.random_below(39);
        for _ in 0..ops {
            let (op, a, b) = (
                rng.random_below(4),
                rng.random_below(4),
                rng.random_below(4),
            );
            let instances = l.instances_of(svc);
            let action = match op {
                0 => Action::ScaleOut {
                    service: svc,
                    target: servers[a % 3],
                },
                1 => {
                    let Some(&inst) = instances.get(a % instances.len().max(1)) else {
                        continue;
                    };
                    Action::ScaleIn { instance: inst }
                }
                2 => {
                    let Some(&inst) = instances.get(a % instances.len().max(1)) else {
                        continue;
                    };
                    Action::Move {
                        instance: inst,
                        target: servers[b % 3],
                    }
                }
                _ => {
                    let Some(&inst) = instances.get(a % instances.len().max(1)) else {
                        continue;
                    };
                    Action::ScaleUp {
                        instance: inst,
                        target: servers[b % 3],
                    }
                }
            };
            let before = l.instances_of(svc).len();
            let result = l.apply(&action);
            let after = l.instances_of(svc).len();
            match (result.is_ok(), action.kind()) {
                (true, ActionKind::ScaleOut) => assert_eq!(after, before + 1),
                (true, ActionKind::ScaleIn) => assert_eq!(after, before - 1),
                (true, _) => assert_eq!(after, before),
                (false, _) => assert_eq!(after, before),
            }
            let count = l.instances_of(svc).len();
            assert!(count >= 1, "min instances");
            assert!(count <= 5, "max instances");
            for inst in l.instances() {
                assert!(l.server(inst.server).is_ok());
            }
        }
    });
}

#[test]
fn can_host_predicts_scale_out() {
    // `can_host` is consistent with `apply(ScaleOut)`: if can_host says yes
    // and the instance-count maximum is not reached, the action succeeds.
    check::cases(256, |rng| {
        let mem = rng.random_int(64..=4095);
        let mut l = Landscape::new();
        let srv = l.add_server(ServerSpec::fsc_bx300("A")).unwrap();
        let svc = l
            .add_service(
                ServiceSpec::new("S", ServiceKind::Generic)
                    .with_instances(0, None)
                    .with_memory(mem),
            )
            .unwrap();
        let can = l.can_host(svc, srv);
        let did = l
            .apply(&Action::ScaleOut {
                service: svc,
                target: srv,
            })
            .is_ok();
        assert_eq!(can, did);
    });
}

#[test]
fn xml_parser_never_panics() {
    // The XML parser never panics, whatever bytes it is fed — it either
    // parses or returns a positioned error.
    check::cases(512, |rng| {
        let len = rng.random_below(300);
        let input: String = (0..len)
            .map(|_| char::from_u32(rng.random_int(1..=0x2FF) as u32).unwrap_or('?'))
            .collect();
        let _ = autoglobe_landscape::xml::parse(&input);
    });
}

#[test]
fn schema_layer_never_panics() {
    // Near-miss documents (valid XML with random attribute soup) never
    // panic the schema layer either.
    check::cases(256, |rng| {
        let attr_len = 1 + rng.random_below(12);
        let attr: String = (0..attr_len)
            .map(|_| {
                let c = rng.random_int(0..=51) as u8;
                (if c < 26 { b'a' + c } else { b'A' + c - 26 }) as char
            })
            .collect();
        let value_len = rng.random_below(16);
        let value: String = (0..value_len)
            .map(|_| {
                // Printable ASCII except `"`, `<` and `&`.
                loop {
                    let c = rng.random_int(0x20..=0x7E) as u8 as char;
                    if c != '"' && c != '<' && c != '&' {
                        return c;
                    }
                }
            })
            .collect();
        let doc = format!(
            r#"<landscape><servers><server name="x" performanceIndex="1" {attr}="{value}"/></servers></landscape>"#
        );
        let _ = LandscapeDescription::from_xml(&doc);
    });
}
