//! The declarative XML description language.
//!
//! The paper describes services and servers "using a declarative XML
//! language" based on early Global Grid Forum drafts (Sections 1, 5.1, 6).
//! That language was never published, so this module defines an isomorphic
//! one: a from-scratch minimal XML parser ([`parse`]) and a schema layer
//! ([`schema`]) that turns documents into [`crate::Landscape`]s plus named
//! fuzzy rule bases.
//!
//! The parser supports the subset of XML a configuration language needs:
//! elements, attributes, text content, comments, CDATA, the five predefined
//! entities and numeric character references, and an optional XML
//! declaration. It rejects mismatched tags with byte-accurate positions.
//!
//! ```
//! use autoglobe_landscape::xml::parse;
//! let doc = parse(r#"<landscape><server name="Blade1" performanceIndex="1"/></landscape>"#).unwrap();
//! assert_eq!(doc.root.name, "landscape");
//! assert_eq!(doc.root.children.len(), 1);
//! assert_eq!(doc.root.children[0].attr("name"), Some("Blade1"));
//! ```

pub mod schema;

pub use schema::{LandscapeDescription, RuleBaseDescription};

use crate::error::LandscapeError;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Element {
    /// Tag name.
    pub name: String,
    /// Attributes in document order (duplicates rejected at parse time).
    pub attributes: BTreeMap<String, String>,
    /// Child elements, in document order.
    pub children: Vec<Element>,
    /// Concatenated text content directly inside this element (child element
    /// text is *not* included), entity-decoded, surrounding whitespace kept.
    pub text: String,
}

impl Element {
    /// Attribute value lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes.get(name).map(String::as_str)
    }

    /// Attribute value or a schema error naming the element.
    pub fn require_attr(&self, name: &str) -> Result<&str, LandscapeError> {
        self.attr(name).ok_or_else(|| LandscapeError::Schema {
            message: format!("<{}> is missing required attribute `{name}`", self.name),
        })
    }

    /// First child with the given tag name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The element's text with surrounding whitespace trimmed.
    pub fn trimmed_text(&self) -> &str {
        self.text.trim()
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}", self.name)?;
        for (k, v) in &self.attributes {
            write!(f, " {k}=\"{}\"", escape(v))?;
        }
        if self.children.is_empty() && self.text.trim().is_empty() {
            return write!(f, "/>");
        }
        write!(f, ">")?;
        if !self.text.trim().is_empty() {
            write!(f, "{}", escape(self.text.trim()))?;
        }
        for c in &self.children {
            write!(f, "{c}")?;
        }
        write!(f, "</{}>", self.name)
    }
}

/// A parsed document: exactly one root element.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// The document's root element.
    pub root: Element,
}

/// Escape the five predefined entities for serialization.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

struct Cursor<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: impl Into<String>) -> LandscapeError {
        LandscapeError::Xml {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn advance(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn skip_misc(&mut self) -> Result<(), LandscapeError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.starts_with("<?") {
                // XML declaration / processing instruction.
                match self.input[self.pos..].find("?>") {
                    Some(offset) => self.advance(offset + 2),
                    None => return Err(self.err("unterminated processing instruction")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), LandscapeError> {
        debug_assert!(self.starts_with("<!--"));
        match self.input[self.pos + 4..].find("-->") {
            Some(offset) => {
                self.advance(4 + offset + 3);
                Ok(())
            }
            None => Err(self.err("unterminated comment")),
        }
    }

    fn read_name(&mut self) -> Result<String, LandscapeError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let c = b as char;
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        let first = self.bytes[start] as char;
        if first.is_ascii_digit() || first == '-' || first == '.' {
            return Err(LandscapeError::Xml {
                position: start,
                message: format!("names may not start with `{first}`"),
            });
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn read_attribute_value(&mut self) -> Result<String, LandscapeError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.advance(1);
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let raw = &self.input[start..self.pos];
                self.advance(1);
                return decode_entities(raw, start);
            }
            if b == b'<' {
                return Err(self.err("`<` not allowed inside attribute value"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated attribute value"))
    }

    fn parse_element(&mut self) -> Result<Element, LandscapeError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected `<`"));
        }
        self.advance(1);
        let name = self.read_name()?;
        let mut element = Element {
            name,
            ..Element::default()
        };

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.advance(1);
                    break;
                }
                Some(b'/') => {
                    if self.starts_with("/>") {
                        self.advance(2);
                        return Ok(element);
                    }
                    return Err(self.err("stray `/` in tag"));
                }
                Some(_) => {
                    let attr_start = self.pos;
                    let attr_name = self.read_name()?;
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.err(format!("attribute `{attr_name}` needs `=value`")));
                    }
                    self.advance(1);
                    self.skip_whitespace();
                    let value = self.read_attribute_value()?;
                    if element
                        .attributes
                        .insert(attr_name.clone(), value)
                        .is_some()
                    {
                        return Err(LandscapeError::Xml {
                            position: attr_start,
                            message: format!("duplicate attribute `{attr_name}`"),
                        });
                    }
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }

        // Content.
        loop {
            if self.starts_with("<!--") {
                self.skip_comment()?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                let body_start = self.pos + 9;
                match self.input[body_start..].find("]]>") {
                    Some(offset) => {
                        element
                            .text
                            .push_str(&self.input[body_start..body_start + offset]);
                        self.pos = body_start + offset + 3;
                    }
                    None => return Err(self.err("unterminated CDATA section")),
                }
                continue;
            }
            if self.starts_with("</") {
                self.advance(2);
                let close_pos = self.pos;
                let close_name = self.read_name()?;
                if close_name != element.name {
                    return Err(LandscapeError::Xml {
                        position: close_pos,
                        message: format!(
                            "mismatched closing tag: expected </{}>, found </{close_name}>",
                            element.name
                        ),
                    });
                }
                self.skip_whitespace();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected `>` after closing tag name"));
                }
                self.advance(1);
                return Ok(element);
            }
            match self.peek() {
                Some(b'<') => {
                    element.children.push(self.parse_element()?);
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'<' {
                            break;
                        }
                        self.pos += 1;
                    }
                    element
                        .text
                        .push_str(&decode_entities(&self.input[start..self.pos], start)?);
                }
                None => {
                    return Err(self.err(format!("unterminated element <{}>", element.name)));
                }
            }
        }
    }
}

fn decode_entities(raw: &str, base: usize) -> Result<String, LandscapeError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    let mut offset = 0usize;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let semi = after.find(';').ok_or(LandscapeError::Xml {
            position: base + offset + amp,
            message: "unterminated entity reference".into(),
        })?;
        let entity = &after[..semi];
        match entity {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code =
                    u32::from_str_radix(&entity[2..], 16).map_err(|_| LandscapeError::Xml {
                        position: base + offset + amp,
                        message: format!("invalid character reference `&{entity};`"),
                    })?;
                out.push(char::from_u32(code).ok_or(LandscapeError::Xml {
                    position: base + offset + amp,
                    message: format!("character reference `&{entity};` is not a char"),
                })?);
            }
            _ if entity.starts_with('#') => {
                let code: u32 = entity[1..].parse().map_err(|_| LandscapeError::Xml {
                    position: base + offset + amp,
                    message: format!("invalid character reference `&{entity};`"),
                })?;
                out.push(char::from_u32(code).ok_or(LandscapeError::Xml {
                    position: base + offset + amp,
                    message: format!("character reference `&{entity};` is not a char"),
                })?);
            }
            _ => {
                return Err(LandscapeError::Xml {
                    position: base + offset + amp,
                    message: format!("unknown entity `&{entity};`"),
                })
            }
        }
        let consumed = amp + 1 + semi + 1;
        offset += consumed;
        rest = &rest[consumed..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Parse an XML document.
pub fn parse(input: &str) -> Result<Document, LandscapeError> {
    let mut cursor = Cursor {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    cursor.skip_misc()?;
    if cursor.peek() != Some(b'<') {
        return Err(cursor.err("expected root element"));
    }
    let root = cursor.parse_element()?;
    cursor.skip_misc()?;
    if cursor.pos != input.len() {
        return Err(cursor.err("trailing content after root element"));
    }
    Ok(Document { root })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_elements_and_attributes() {
        let doc = parse(
            r#"<landscape version="1">
                 <servers>
                   <server name="Blade1" performanceIndex="1"/>
                   <server name="Blade2" performanceIndex="2"/>
                 </servers>
               </landscape>"#,
        )
        .unwrap();
        assert_eq!(doc.root.name, "landscape");
        assert_eq!(doc.root.attr("version"), Some("1"));
        let servers = doc.root.child("servers").unwrap();
        assert_eq!(servers.children_named("server").count(), 2);
        assert_eq!(servers.children[1].attr("name"), Some("Blade2"));
    }

    #[test]
    fn text_content_and_trimming() {
        let doc =
            parse("<rules>\n  IF cpuLoad IS high THEN scaleOut IS applicable\n</rules>").unwrap();
        assert_eq!(
            doc.root.trimmed_text(),
            "IF cpuLoad IS high THEN scaleOut IS applicable"
        );
    }

    #[test]
    fn entities_decode_in_text_and_attributes() {
        let doc =
            parse(r#"<a note="x &lt; y &amp; z">&quot;quoted&quot; &#65;&#x42;</a>"#).unwrap();
        assert_eq!(doc.root.attr("note"), Some("x < y & z"));
        assert_eq!(doc.root.trimmed_text(), "\"quoted\" AB");
    }

    #[test]
    fn cdata_is_verbatim() {
        let doc = parse("<r><![CDATA[a < b && c > d]]></r>").unwrap();
        assert_eq!(doc.root.trimmed_text(), "a < b && c > d");
    }

    #[test]
    fn comments_and_declaration_are_skipped() {
        let doc = parse(
            "<?xml version=\"1.0\"?>\n<!-- top comment -->\n<root><!-- inner --><child/></root>\n<!-- trailing -->",
        )
        .unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn mismatched_tags_are_rejected_with_position() {
        let err = parse("<a><b></a></b>").unwrap_err();
        match err {
            LandscapeError::Xml { position, message } => {
                assert!(message.contains("mismatched"));
                assert!(position > 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attributes_are_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn various_malformed_documents() {
        for bad in [
            "",
            "text only",
            "<a>",
            "<a><b></b>",
            "<a attr></a>",
            "<a attr=novalue></a>",
            "<a 1bad=\"x\"/>",
            "<a>&unknown;</a>",
            "<a>&#xZZ;</a>",
            "<a/><b/>",
            "<a><!-- unterminated </a>",
            "<a attr=\"unterminated/>",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn single_quotes_work() {
        let doc = parse("<a x='hello world'/>").unwrap();
        assert_eq!(doc.root.attr("x"), Some("hello world"));
    }

    #[test]
    fn display_round_trips() {
        let original = parse(
            r#"<landscape><server name="B&amp;1" idx="1"/><rules>IF a IS b THEN c IS d</rules></landscape>"#,
        )
        .unwrap();
        let reserialized = parse(&original.root.to_string()).unwrap();
        assert_eq!(original, reserialized);
    }

    #[test]
    fn require_attr_reports_schema_error() {
        let doc = parse("<server/>").unwrap();
        assert!(matches!(
            doc.root.require_attr("name"),
            Err(LandscapeError::Schema { .. })
        ));
    }

    #[test]
    fn whitespace_in_closing_tag() {
        let doc = parse("<a></a >").unwrap();
        assert_eq!(doc.root.name, "a");
    }
}
