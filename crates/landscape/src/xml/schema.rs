//! Schema layer: from parsed XML to landscape descriptions.
//!
//! Document shape (all sections optional except `<servers>`/`<services>`
//! being required for a non-empty landscape):
//!
//! ```xml
//! <landscape>
//!   <servers>
//!     <server name="Blade1" category="FSC-BX300" performanceIndex="1"
//!             cpus="1" cpuClockMHz="933" cpuCacheKB="512"
//!             memoryMB="2048" swapMB="4096" tempSpaceMB="20480"/>
//!   </servers>
//!   <services>
//!     <service name="FI" kind="applicationServer" subsystem="ERP"
//!              minInstances="2" maxInstances="8" exclusive="false"
//!              minPerformanceIndex="1" baseLoad="0.05" loadPerUser="0.004"
//!              memoryPerInstanceMB="512" priority="normal">
//!       <allowedActions>scaleIn scaleOut move</allowedActions>
//!     </service>
//!   </services>
//!   <allocation>
//!     <instance service="FI" server="Blade1"/>
//!   </allocation>
//!   <ruleBase trigger="serviceOverloaded">
//!     IF cpuLoad IS high THEN scaleOut IS applicable
//!   </ruleBase>
//!   <ruleBase action="scaleOut">
//!     IF cpuLoad IS low AND memLoad IS low THEN score IS applicable
//!   </ruleBase>
//! </landscape>
//! ```
//!
//! Rule-base text is carried verbatim (the fuzzy DSL lives in
//! `autoglobe-fuzzy`; the controller crate compiles it) so this crate stays
//! independent of the fuzzy engine.

use super::{parse, Element};
use crate::action::ActionKind;
use crate::allocation::Landscape;
use crate::error::LandscapeError;
use crate::server::ServerSpec;
use crate::service::{Priority, ServiceKind, ServiceSpec};

/// A named rule base carried by the description: either per-trigger
/// (action-selection, Section 4.1) or per-action (server-selection,
/// Section 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleBaseDescription {
    /// `trigger:<name>` or `action:<name>` — e.g. `trigger:serviceOverloaded`.
    pub key: String,
    /// Optional service this rule base is specific to ("an administrator can
    /// add service-specific rule bases for mission critical services").
    pub service: Option<String>,
    /// Verbatim rule DSL text.
    pub text: String,
}

/// A declaratively described landscape, before name resolution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LandscapeDescription {
    /// Server specifications.
    pub servers: Vec<ServerSpec>,
    /// Service specifications.
    pub services: Vec<ServiceSpec>,
    /// Initial allocation: `(service name, server name)` pairs, one per
    /// instance to start.
    pub allocation: Vec<(String, String)>,
    /// Attached fuzzy rule bases.
    pub rule_bases: Vec<RuleBaseDescription>,
}

impl LandscapeDescription {
    /// Parse a description from XML text.
    pub fn from_xml(input: &str) -> Result<Self, LandscapeError> {
        let doc = parse(input)?;
        if doc.root.name != "landscape" {
            return Err(LandscapeError::Schema {
                message: format!(
                    "root element must be <landscape>, found <{}>",
                    doc.root.name
                ),
            });
        }
        let mut description = LandscapeDescription::default();

        if let Some(servers) = doc.root.child("servers") {
            for el in servers.children_named("server") {
                description.servers.push(parse_server(el)?);
            }
        }
        if let Some(services) = doc.root.child("services") {
            for el in services.children_named("service") {
                description.services.push(parse_service(el)?);
            }
        }
        if let Some(allocation) = doc.root.child("allocation") {
            for el in allocation.children_named("instance") {
                description.allocation.push((
                    el.require_attr("service")?.to_string(),
                    el.require_attr("server")?.to_string(),
                ));
            }
        }
        for el in doc.root.children_named("ruleBase") {
            let key = match (el.attr("trigger"), el.attr("action")) {
                (Some(t), None) => format!("trigger:{t}"),
                (None, Some(a)) => format!("action:{a}"),
                _ => {
                    return Err(LandscapeError::Schema {
                        message: "<ruleBase> needs exactly one of `trigger` or `action`".into(),
                    })
                }
            };
            description.rule_bases.push(RuleBaseDescription {
                key,
                service: el.attr("service").map(str::to_string),
                text: el.trimmed_text().to_string(),
            });
        }
        Ok(description)
    }

    /// Materialize the description: register servers and services and start
    /// the initial allocation.
    pub fn build(&self) -> Result<Landscape, LandscapeError> {
        let mut landscape = Landscape::new();
        for server in &self.servers {
            landscape.add_server(server.clone())?;
        }
        for service in &self.services {
            landscape.add_service(service.clone())?;
        }
        for (service_name, server_name) in &self.allocation {
            let service = landscape.service_by_name(service_name)?;
            let server = landscape.server_by_name(server_name)?;
            landscape.start_instance(service, server)?;
        }
        Ok(landscape)
    }

    /// Serialize back to XML (round-trips through [`LandscapeDescription::from_xml`]).
    pub fn to_xml(&self) -> String {
        let mut out = String::from("<landscape>\n  <servers>\n");
        for s in &self.servers {
            out.push_str(&format!(
                "    <server name=\"{}\" category=\"{}\" performanceIndex=\"{}\" cpus=\"{}\" \
                 cpuClockMHz=\"{}\" cpuCacheKB=\"{}\" memoryMB=\"{}\" swapMB=\"{}\" tempSpaceMB=\"{}\"/>\n",
                super::escape(&s.name),
                super::escape(&s.category),
                s.performance_index,
                s.num_cpus,
                s.cpu_clock_mhz,
                s.cpu_cache_kb,
                s.memory_mb,
                s.swap_mb,
                s.temp_space_mb,
            ));
        }
        out.push_str("  </servers>\n  <services>\n");
        for s in &self.services {
            out.push_str(&format!(
                "    <service name=\"{}\" kind=\"{}\"",
                super::escape(&s.name),
                s.kind.name()
            ));
            if let Some(sub) = &s.subsystem {
                out.push_str(&format!(" subsystem=\"{}\"", super::escape(sub)));
            }
            out.push_str(&format!(" minInstances=\"{}\"", s.min_instances));
            if let Some(max) = s.max_instances {
                out.push_str(&format!(" maxInstances=\"{max}\""));
            }
            out.push_str(&format!(" exclusive=\"{}\"", s.exclusive));
            if let Some(idx) = s.min_performance_index {
                out.push_str(&format!(" minPerformanceIndex=\"{idx}\""));
            }
            out.push_str(&format!(
                " baseLoad=\"{}\" loadPerUser=\"{}\" memoryPerInstanceMB=\"{}\" priority=\"{}\">",
                s.base_load,
                s.load_per_user,
                s.memory_per_instance_mb,
                priority_name(s.priority),
            ));
            out.push_str("<allowedActions>");
            let names: Vec<&str> = s
                .allowed_actions
                .iter()
                .map(|a| a.variable_name())
                .collect();
            out.push_str(&names.join(" "));
            out.push_str("</allowedActions></service>\n");
        }
        out.push_str("  </services>\n  <allocation>\n");
        for (service, server) in &self.allocation {
            out.push_str(&format!(
                "    <instance service=\"{}\" server=\"{}\"/>\n",
                super::escape(service),
                super::escape(server)
            ));
        }
        out.push_str("  </allocation>\n");
        for rb in &self.rule_bases {
            let (attr, value) = rb
                .key
                .split_once(':')
                .unwrap_or(("trigger", rb.key.as_str()));
            out.push_str(&format!("  <ruleBase {attr}=\"{}\"", super::escape(value)));
            if let Some(svc) = &rb.service {
                out.push_str(&format!(" service=\"{}\"", super::escape(svc)));
            }
            out.push_str(&format!(">{}</ruleBase>\n", super::escape(&rb.text)));
        }
        out.push_str("</landscape>\n");
        out
    }
}

fn parse_server(el: &Element) -> Result<ServerSpec, LandscapeError> {
    let name = el.require_attr("name")?;
    let performance_index =
        parse_f64(el, "performanceIndex")?.ok_or_else(|| LandscapeError::Schema {
            message: format!("<server name=\"{name}\"> needs performanceIndex"),
        })?;
    let mut spec = ServerSpec::new(name, performance_index);
    if let Some(cat) = el.attr("category") {
        spec.category = cat.to_string();
    }
    if let Some(v) = parse_u64(el, "cpus")? {
        spec.num_cpus = v as u32;
    }
    if let Some(v) = parse_u64(el, "cpuClockMHz")? {
        spec.cpu_clock_mhz = v as u32;
    }
    if let Some(v) = parse_u64(el, "cpuCacheKB")? {
        spec.cpu_cache_kb = v as u32;
    }
    if let Some(v) = parse_u64(el, "memoryMB")? {
        spec.memory_mb = v;
    }
    if let Some(v) = parse_u64(el, "swapMB")? {
        spec.swap_mb = v;
    }
    if let Some(v) = parse_u64(el, "tempSpaceMB")? {
        spec.temp_space_mb = v;
    }
    spec.validate()?;
    Ok(spec)
}

fn parse_service(el: &Element) -> Result<ServiceSpec, LandscapeError> {
    let name = el.require_attr("name")?;
    let kind_name = el.attr("kind").unwrap_or("generic");
    let kind = ServiceKind::from_name(kind_name).ok_or_else(|| LandscapeError::Schema {
        message: format!("unknown service kind `{kind_name}`"),
    })?;
    let mut spec = ServiceSpec::new(name, kind);
    if let Some(sub) = el.attr("subsystem") {
        spec.subsystem = Some(sub.to_string());
    }
    if let Some(v) = parse_u64(el, "minInstances")? {
        spec.min_instances = v as u32;
    }
    if let Some(v) = parse_u64(el, "maxInstances")? {
        spec.max_instances = Some(v as u32);
    }
    if let Some(v) = el.attr("exclusive") {
        spec.exclusive = parse_bool(v).ok_or_else(|| LandscapeError::Schema {
            message: format!("invalid boolean `{v}` for exclusive"),
        })?;
    }
    if let Some(v) = parse_f64(el, "minPerformanceIndex")? {
        spec.min_performance_index = Some(v);
    }
    if let Some(v) = parse_f64(el, "baseLoad")? {
        spec.base_load = v;
    }
    if let Some(v) = parse_f64(el, "loadPerUser")? {
        spec.load_per_user = v;
    }
    if let Some(v) = parse_u64(el, "memoryPerInstanceMB")? {
        spec.memory_per_instance_mb = v;
    }
    if let Some(v) = el.attr("priority") {
        spec.priority = match v {
            "low" => Priority::Low,
            "normal" => Priority::Normal,
            "high" => Priority::High,
            other => {
                return Err(LandscapeError::Schema {
                    message: format!("unknown priority `{other}`"),
                })
            }
        };
    }
    if let Some(actions_el) = el.child("allowedActions") {
        let mut actions = Vec::new();
        for word in actions_el.trimmed_text().split_whitespace() {
            let kind =
                ActionKind::from_variable_name(word).ok_or_else(|| LandscapeError::Schema {
                    message: format!("unknown action `{word}` in <allowedActions>"),
                })?;
            actions.push(kind);
        }
        spec = spec.with_allowed_actions(actions);
    }
    spec.validate()?;
    Ok(spec)
}

fn parse_f64(el: &Element, attr: &str) -> Result<Option<f64>, LandscapeError> {
    el.attr(attr)
        .map(|v| {
            v.parse::<f64>().map_err(|_| LandscapeError::Schema {
                message: format!("<{}> attribute {attr}=\"{v}\" is not a number", el.name),
            })
        })
        .transpose()
}

fn parse_u64(el: &Element, attr: &str) -> Result<Option<u64>, LandscapeError> {
    el.attr(attr)
        .map(|v| {
            v.parse::<u64>().map_err(|_| LandscapeError::Schema {
                message: format!("<{}> attribute {attr}=\"{v}\" is not an integer", el.name),
            })
        })
        .transpose()
}

fn parse_bool(v: &str) -> Option<bool> {
    match v {
        "true" | "1" | "yes" => Some(true),
        "false" | "0" | "no" => Some(false),
        _ => None,
    }
}

fn priority_name(p: Priority) -> &'static str {
    match p {
        Priority::Low => "low",
        Priority::Normal => "normal",
        Priority::High => "high",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <landscape>
          <servers>
            <server name="Blade1" category="FSC-BX300" performanceIndex="1"
                    cpus="1" cpuClockMHz="933" memoryMB="2048"/>
            <server name="DBServer1" category="HP" performanceIndex="9"
                    cpus="4" cpuClockMHz="2800" memoryMB="12288"/>
          </servers>
          <services>
            <service name="FI" kind="applicationServer" subsystem="ERP"
                     minInstances="2" maxInstances="8" baseLoad="0.05"
                     loadPerUser="0.004" memoryPerInstanceMB="512">
              <allowedActions>scaleIn scaleOut move</allowedActions>
            </service>
            <service name="DB-ERP" kind="database" subsystem="ERP"
                     exclusive="true" minPerformanceIndex="5" priority="high">
              <allowedActions></allowedActions>
            </service>
          </services>
          <allocation>
            <instance service="FI" server="Blade1"/>
            <instance service="DB-ERP" server="DBServer1"/>
          </allocation>
          <ruleBase trigger="serviceOverloaded">
            IF cpuLoad IS high THEN scaleOut IS applicable
          </ruleBase>
          <ruleBase action="scaleOut" service="FI">
            IF cpuLoad IS low THEN score IS applicable
          </ruleBase>
        </landscape>"#;

    #[test]
    fn parses_full_description() {
        let d = LandscapeDescription::from_xml(SAMPLE).unwrap();
        assert_eq!(d.servers.len(), 2);
        assert_eq!(d.services.len(), 2);
        assert_eq!(d.allocation.len(), 2);
        assert_eq!(d.rule_bases.len(), 2);

        assert_eq!(d.servers[1].performance_index, 9.0);
        assert_eq!(d.servers[1].num_cpus, 4);

        let fi = &d.services[0];
        assert_eq!(fi.min_instances, 2);
        assert_eq!(fi.max_instances, Some(8));
        assert!(fi.allows(ActionKind::ScaleOut));
        assert!(!fi.allows(ActionKind::ScaleUp));

        let db = &d.services[1];
        assert!(db.exclusive);
        assert_eq!(db.min_performance_index, Some(5.0));
        assert_eq!(db.priority, Priority::High);
        assert!(db.allowed_actions.is_empty());

        assert_eq!(d.rule_bases[0].key, "trigger:serviceOverloaded");
        assert!(d.rule_bases[0].text.contains("THEN scaleOut IS applicable"));
        assert_eq!(d.rule_bases[1].key, "action:scaleOut");
        assert_eq!(d.rule_bases[1].service.as_deref(), Some("FI"));
    }

    #[test]
    fn build_materializes_allocation() {
        let d = LandscapeDescription::from_xml(SAMPLE).unwrap();
        let l = d.build().unwrap();
        assert_eq!(l.num_servers(), 2);
        assert_eq!(l.num_services(), 2);
        assert_eq!(l.num_instances(), 2);
        let fi = l.service_by_name("FI").unwrap();
        let blade1 = l.server_by_name("Blade1").unwrap();
        assert_eq!(l.instances_of(fi).len(), 1);
        assert_eq!(l.instances_on(blade1).len(), 1);
    }

    #[test]
    fn xml_round_trip() {
        let d = LandscapeDescription::from_xml(SAMPLE).unwrap();
        let xml = d.to_xml();
        let d2 = LandscapeDescription::from_xml(&xml).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn unknown_root_is_rejected() {
        assert!(matches!(
            LandscapeDescription::from_xml("<other/>"),
            Err(LandscapeError::Schema { .. })
        ));
    }

    #[test]
    fn missing_required_attributes() {
        assert!(LandscapeDescription::from_xml(
            "<landscape><servers><server performanceIndex=\"1\"/></servers></landscape>"
        )
        .is_err());
        assert!(LandscapeDescription::from_xml(
            "<landscape><servers><server name=\"A\"/></servers></landscape>"
        )
        .is_err());
    }

    #[test]
    fn bad_values_are_schema_errors() {
        for bad in [
            r#"<landscape><servers><server name="A" performanceIndex="fast"/></servers></landscape>"#,
            r#"<landscape><services><service name="S" kind="mystery"/></services></landscape>"#,
            r#"<landscape><services><service name="S" exclusive="maybe"/></services></landscape>"#,
            r#"<landscape><services><service name="S" priority="urgent"/></services></landscape>"#,
            r#"<landscape><services><service name="S"><allowedActions>fly</allowedActions></service></services></landscape>"#,
            r#"<landscape><ruleBase>text</ruleBase></landscape>"#,
            r#"<landscape><ruleBase trigger="a" action="b">text</ruleBase></landscape>"#,
        ] {
            assert!(
                LandscapeDescription::from_xml(bad).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn allocation_with_unknown_names_fails_at_build() {
        let d = LandscapeDescription::from_xml(
            r#"<landscape>
                 <servers><server name="A" performanceIndex="1"/></servers>
                 <services><service name="S"/></services>
                 <allocation><instance service="S" server="Nonexistent"/></allocation>
               </landscape>"#,
        )
        .unwrap();
        assert!(d.build().is_err());
    }

    #[test]
    fn empty_landscape_builds() {
        let d = LandscapeDescription::from_xml("<landscape/>").unwrap();
        let l = d.build().unwrap();
        assert_eq!(l.num_servers(), 0);
        assert_eq!(l.num_instances(), 0);
    }
}
