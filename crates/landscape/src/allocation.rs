//! The live allocation table: which instance runs where.
//!
//! Services managed by AutoGlobe are virtualized through *service IP
//! addresses* (paper Section 2): every instance owns a virtual IP that is
//! bound to the NIC of whichever host currently runs it. Moving an instance
//! unbinds the IP from the old host and rebinds it on the target, so clients
//! never observe the move. [`Landscape`] models exactly that: a pool of
//! servers, a catalogue of services, and a table of instances with their IP
//! bindings, mutated through [`Landscape::apply`] which enforces the
//! declarative constraints first.

use crate::action::Action;
use crate::constraints::check_action;
use crate::error::LandscapeError;
use crate::ids::{InstanceId, ServerId, ServiceId};
use crate::server::ServerSpec;
use crate::service::{Priority, ServiceSpec};
use std::collections::BTreeMap;
use std::fmt;

/// A virtual service IP address, allocated from the `10.0.0.0/16` pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualIp(u32);

impl VirtualIp {
    /// The n-th address of the pool.
    pub fn nth(n: u32) -> Self {
        VirtualIp(n)
    }

    /// The raw pool index.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VirtualIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Skip .0 and .255 host parts for realism.
        let host = self.0 % 254 + 1;
        let subnet = self.0 / 254;
        write!(f, "10.0.{subnet}.{host}")
    }
}

/// One running instance of a service.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Unique instance id.
    pub id: InstanceId,
    /// The service this is an instance of.
    pub service: ServiceId,
    /// The host the instance currently runs on.
    pub server: ServerId,
    /// The instance's virtual service IP (stable across moves).
    pub ip: VirtualIp,
}

/// What [`Landscape::apply`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// A new instance was started.
    Started(InstanceId),
    /// An instance was stopped.
    Stopped(InstanceId),
    /// An instance was moved between hosts.
    Moved {
        /// The moved instance.
        instance: InstanceId,
        /// Where it ran before.
        from: ServerId,
        /// Where it runs now.
        to: ServerId,
    },
    /// A service's priority changed.
    PriorityChanged {
        /// The affected service.
        service: ServiceId,
        /// The new priority.
        priority: Priority,
    },
}

/// The managed landscape: server pool, service catalogue, allocation table.
#[derive(Debug, Clone, Default)]
pub struct Landscape {
    servers: Vec<ServerSpec>,
    services: Vec<ServiceSpec>,
    priorities: Vec<Priority>,
    /// Per-server availability: a failed host cannot run or receive
    /// instances until it is repaired (self-healing, Section 2: "Failure
    /// situations like a program crash are remedied for example with a
    /// restart").
    available: Vec<bool>,
    instances: BTreeMap<InstanceId, Instance>,
    next_instance: u32,
    next_ip: u32,
    /// Bumped on every successful mutation (registration, availability,
    /// instance start/stop/move, priority change). Callers that cache
    /// decisions derived from the landscape — e.g. the controller's
    /// fuzzy-score caches — compare revisions to know when to invalidate.
    revision: u64,
}

impl Landscape {
    /// An empty landscape.
    pub fn new() -> Self {
        Landscape::default()
    }

    // ---- registration ----------------------------------------------------

    /// Register a server. Names must be unique.
    pub fn add_server(&mut self, spec: ServerSpec) -> Result<ServerId, LandscapeError> {
        spec.validate()?;
        if self.servers.iter().any(|s| s.name == spec.name) {
            return Err(LandscapeError::DuplicateServer { name: spec.name });
        }
        let id = ServerId::new(self.servers.len() as u32);
        self.servers.push(spec);
        self.available.push(true);
        self.revision += 1;
        Ok(id)
    }

    /// Register a service. Names must be unique.
    pub fn add_service(&mut self, spec: ServiceSpec) -> Result<ServiceId, LandscapeError> {
        spec.validate()?;
        if self.services.iter().any(|s| s.name == spec.name) {
            return Err(LandscapeError::DuplicateService { name: spec.name });
        }
        let id = ServiceId::new(self.services.len() as u32);
        self.priorities.push(spec.priority);
        self.services.push(spec);
        self.revision += 1;
        Ok(id)
    }

    // ---- lookups ----------------------------------------------------------

    /// Spec of a server.
    pub fn server(&self, id: ServerId) -> Result<&ServerSpec, LandscapeError> {
        self.servers
            .get(id.index())
            .ok_or(LandscapeError::UnknownServer { id })
    }

    /// Spec of a service.
    pub fn service(&self, id: ServiceId) -> Result<&ServiceSpec, LandscapeError> {
        self.services
            .get(id.index())
            .ok_or(LandscapeError::UnknownService { id })
    }

    /// A running instance.
    pub fn instance(&self, id: InstanceId) -> Result<&Instance, LandscapeError> {
        self.instances
            .get(&id)
            .ok_or(LandscapeError::UnknownInstance { id })
    }

    /// Find a server by name.
    pub fn server_by_name(&self, name: &str) -> Result<ServerId, LandscapeError> {
        self.servers
            .iter()
            .position(|s| s.name == name)
            .map(|i| ServerId::new(i as u32))
            .ok_or_else(|| LandscapeError::NoSuchName {
                kind: "server",
                name: name.to_string(),
            })
    }

    /// Find a service by name.
    pub fn service_by_name(&self, name: &str) -> Result<ServiceId, LandscapeError> {
        self.services
            .iter()
            .position(|s| s.name == name)
            .map(|i| ServiceId::new(i as u32))
            .ok_or_else(|| LandscapeError::NoSuchName {
                kind: "service",
                name: name.to_string(),
            })
    }

    /// All server ids.
    pub fn server_ids(&self) -> impl Iterator<Item = ServerId> + '_ {
        (0..self.servers.len() as u32).map(ServerId::new)
    }

    /// All service ids.
    pub fn service_ids(&self) -> impl Iterator<Item = ServiceId> + '_ {
        (0..self.services.len() as u32).map(ServiceId::new)
    }

    /// Number of registered servers.
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of registered services.
    pub fn num_services(&self) -> usize {
        self.services.len()
    }

    /// All running instances.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// Number of running instances (all services).
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Exclusive upper bound on every instance id ever issued. Instance
    /// ids are allocated densely from 0, so `id.index() < bound` holds for
    /// all past and present instances — dense arenas indexed by
    /// `InstanceId::index` can be sized from this.
    pub fn instance_id_bound(&self) -> u32 {
        self.next_instance
    }

    /// Ids of all instances of `service`.
    pub fn instances_of(&self, service: ServiceId) -> Vec<InstanceId> {
        self.instances
            .values()
            .filter(|i| i.service == service)
            .map(|i| i.id)
            .collect()
    }

    /// Ids of all instances currently on `server`.
    pub fn instances_on(&self, server: ServerId) -> Vec<InstanceId> {
        self.instances
            .values()
            .filter(|i| i.server == server)
            .map(|i| i.id)
            .collect()
    }

    /// Number of running instances of `service` (the `instancesOfService`
    /// input variable of Table 1).
    pub fn instance_count_of(&self, service: ServiceId) -> usize {
        self.instances
            .values()
            .filter(|i| i.service == service)
            .count()
    }

    /// Number of instances on `server` (the `instancesOnServer` input
    /// variable of Tables 1 and 3).
    pub fn instance_count_on(&self, server: ServerId) -> usize {
        self.instances
            .values()
            .filter(|i| i.server == server)
            .count()
    }

    /// Total memory footprint of the instances on `server`, in MB.
    pub fn memory_used_on(&self, server: ServerId) -> u64 {
        self.instances
            .values()
            .filter(|i| i.server == server)
            .map(|i| {
                self.services
                    .get(i.service.index())
                    .map(|s| s.memory_per_instance_mb)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Whether a server is available (not failed).
    pub fn is_available(&self, server: ServerId) -> bool {
        self.available.get(server.index()).copied().unwrap_or(false)
    }

    /// Monotonic change counter: bumped on every successful mutation. Two
    /// equal revisions on the same `Landscape` value guarantee no allocation,
    /// availability, registration or priority change happened in between.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Mark a server failed or repaired. Marking a host failed does not
    /// remove its instances — the controller's failure handling restarts
    /// them elsewhere.
    pub fn set_available(
        &mut self,
        server: ServerId,
        available: bool,
    ) -> Result<(), LandscapeError> {
        self.server(server)?;
        self.available[server.index()] = available;
        self.revision += 1;
        Ok(())
    }

    /// The current priority of a service.
    pub fn priority(&self, service: ServiceId) -> Result<Priority, LandscapeError> {
        self.priorities
            .get(service.index())
            .copied()
            .ok_or(LandscapeError::UnknownService { id: service })
    }

    // ---- raw mutations (no constraint checks) ------------------------------

    /// Start an instance of `service` on `server`, allocating a fresh
    /// virtual IP. Does **not** check constraints — use [`Landscape::apply`]
    /// for checked execution.
    pub fn start_instance(
        &mut self,
        service: ServiceId,
        server: ServerId,
    ) -> Result<InstanceId, LandscapeError> {
        self.service(service)?;
        self.server(server)?;
        let id = InstanceId::new(self.next_instance);
        self.next_instance += 1;
        let ip = VirtualIp::nth(self.next_ip);
        self.next_ip += 1;
        self.instances.insert(
            id,
            Instance {
                id,
                service,
                server,
                ip,
            },
        );
        self.revision += 1;
        Ok(id)
    }

    /// Stop an instance. Does **not** check constraints.
    pub fn stop_instance(&mut self, id: InstanceId) -> Result<Instance, LandscapeError> {
        let inst = self
            .instances
            .remove(&id)
            .ok_or(LandscapeError::UnknownInstance { id })?;
        self.revision += 1;
        Ok(inst)
    }

    /// Move an instance to `target`, rebinding its virtual IP. Does **not**
    /// check constraints.
    pub fn move_instance(
        &mut self,
        id: InstanceId,
        target: ServerId,
    ) -> Result<ServerId, LandscapeError> {
        self.server(target)?;
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(LandscapeError::UnknownInstance { id })?;
        let from = inst.server;
        inst.server = target;
        self.revision += 1;
        Ok(from)
    }

    // ---- checked execution --------------------------------------------------

    /// Check constraints and execute an action.
    ///
    /// This is the path the controller uses after the fuzzy decision
    /// (Section 4.1: "The first action of the list is selected and verified
    /// once more" — verification happens at execution time because the
    /// controller handles several exceptional situations concurrently).
    pub fn apply(&mut self, action: &Action) -> Result<ApplyOutcome, LandscapeError> {
        check_action(self, action)?;
        Ok(match *action {
            Action::Start { service, target } | Action::ScaleOut { service, target } => {
                ApplyOutcome::Started(self.start_instance(service, target)?)
            }
            Action::Stop { instance } | Action::ScaleIn { instance } => {
                self.stop_instance(instance)?;
                ApplyOutcome::Stopped(instance)
            }
            Action::ScaleUp { instance, target }
            | Action::ScaleDown { instance, target }
            | Action::Move { instance, target } => {
                let from = self.move_instance(instance, target)?;
                ApplyOutcome::Moved {
                    instance,
                    from,
                    to: target,
                }
            }
            Action::IncreasePriority { service } => {
                let p = self.priority(service)?.increased();
                self.priorities[service.index()] = p;
                self.revision += 1;
                ApplyOutcome::PriorityChanged {
                    service,
                    priority: p,
                }
            }
            Action::ReducePriority { service } => {
                let p = self.priority(service)?.reduced();
                self.priorities[service.index()] = p;
                self.revision += 1;
                ApplyOutcome::PriorityChanged {
                    service,
                    priority: p,
                }
            }
        })
    }

    /// True if `service` may run on `server` from a static-constraint point
    /// of view (minimum performance index, exclusivity, memory) — the
    /// candidate filter of the server-selection process (Section 4.2:
    /// "Initially, these are all servers on which an instance of the service
    /// can be started").
    pub fn can_host(&self, service: ServiceId, server: ServerId) -> bool {
        let Ok(svc) = self.service(service) else {
            return false;
        };
        let Ok(srv) = self.server(server) else {
            return false;
        };
        if !self.is_available(server) {
            return false;
        }
        if let Some(min_idx) = svc.min_performance_index {
            if srv.performance_index < min_idx {
                return false;
            }
        }
        // Exclusivity in both directions.
        let residents = self.instances_on(server);
        if svc.exclusive
            && residents
                .iter()
                .any(|i| self.instances[i].service != service)
        {
            return false;
        }
        for i in &residents {
            let other = self.instances[i].service;
            if other != service {
                if let Ok(o) = self.service(other) {
                    if o.exclusive {
                        return false;
                    }
                }
            }
        }
        // Memory.
        if self.memory_used_on(server) + svc.memory_per_instance_mb > srv.memory_mb {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceKind;

    fn small_landscape() -> (Landscape, ServiceId, ServerId, ServerId) {
        let mut l = Landscape::new();
        let s1 = l.add_server(ServerSpec::fsc_bx300("Blade1")).unwrap();
        let s2 = l.add_server(ServerSpec::fsc_bx600("Blade2")).unwrap();
        let fi = l
            .add_service(ServiceSpec::new("FI", ServiceKind::ApplicationServer))
            .unwrap();
        (l, fi, s1, s2)
    }

    #[test]
    fn registration_and_lookup() {
        let (l, fi, s1, _s2) = small_landscape();
        assert_eq!(l.num_servers(), 2);
        assert_eq!(l.num_services(), 1);
        assert_eq!(l.server_by_name("Blade1").unwrap(), s1);
        assert_eq!(l.service_by_name("FI").unwrap(), fi);
        assert!(l.server_by_name("nope").is_err());
        assert!(l.service_by_name("nope").is_err());
        assert_eq!(l.server(s1).unwrap().name, "Blade1");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut l = Landscape::new();
        l.add_server(ServerSpec::fsc_bx300("A")).unwrap();
        assert!(matches!(
            l.add_server(ServerSpec::fsc_bx600("A")),
            Err(LandscapeError::DuplicateServer { .. })
        ));
        l.add_service(ServiceSpec::new("S", ServiceKind::Generic))
            .unwrap();
        assert!(matches!(
            l.add_service(ServiceSpec::new("S", ServiceKind::Database)),
            Err(LandscapeError::DuplicateService { .. })
        ));
    }

    #[test]
    fn instances_get_unique_ips_that_survive_moves() {
        let (mut l, fi, s1, s2) = small_landscape();
        let i1 = l.start_instance(fi, s1).unwrap();
        let i2 = l.start_instance(fi, s1).unwrap();
        let ip1 = l.instance(i1).unwrap().ip;
        let ip2 = l.instance(i2).unwrap().ip;
        assert_ne!(ip1, ip2);
        // Move rebinds the host but keeps the service IP (Section 2).
        let from = l.move_instance(i1, s2).unwrap();
        assert_eq!(from, s1);
        let inst = l.instance(i1).unwrap();
        assert_eq!(inst.server, s2);
        assert_eq!(inst.ip, ip1);
    }

    #[test]
    fn instance_queries() {
        let (mut l, fi, s1, s2) = small_landscape();
        let i1 = l.start_instance(fi, s1).unwrap();
        let _i2 = l.start_instance(fi, s2).unwrap();
        assert_eq!(l.instance_count_of(fi), 2);
        assert_eq!(l.instance_count_on(s1), 1);
        assert_eq!(l.instances_of(fi).len(), 2);
        assert_eq!(l.instances_on(s1), vec![i1]);
        assert_eq!(l.num_instances(), 2);
        assert_eq!(l.memory_used_on(s1), 512);
    }

    #[test]
    fn stop_removes_instance() {
        let (mut l, fi, s1, _s2) = small_landscape();
        let i1 = l.start_instance(fi, s1).unwrap();
        let removed = l.stop_instance(i1).unwrap();
        assert_eq!(removed.id, i1);
        assert!(l.instance(i1).is_err());
        assert!(l.stop_instance(i1).is_err());
    }

    #[test]
    fn apply_scale_out_and_in() {
        let (mut l, fi, s1, s2) = small_landscape();
        let _i1 = l.start_instance(fi, s1).unwrap();
        let outcome = l
            .apply(&Action::ScaleOut {
                service: fi,
                target: s2,
            })
            .unwrap();
        let ApplyOutcome::Started(new_id) = outcome else {
            panic!("expected Started, got {outcome:?}")
        };
        assert_eq!(l.instance(new_id).unwrap().server, s2);
        let outcome = l.apply(&Action::ScaleIn { instance: new_id }).unwrap();
        assert_eq!(outcome, ApplyOutcome::Stopped(new_id));
    }

    #[test]
    fn apply_priority_changes() {
        let (mut l, fi, _s1, _s2) = small_landscape();
        assert_eq!(l.priority(fi).unwrap(), Priority::Normal);
        l.apply(&Action::IncreasePriority { service: fi }).unwrap();
        assert_eq!(l.priority(fi).unwrap(), Priority::High);
        l.apply(&Action::ReducePriority { service: fi }).unwrap();
        l.apply(&Action::ReducePriority { service: fi }).unwrap();
        assert_eq!(l.priority(fi).unwrap(), Priority::Low);
    }

    #[test]
    fn can_host_respects_min_performance_index() {
        let (mut l, _fi, s1, s2) = small_landscape();
        let db = l
            .add_service(
                ServiceSpec::new("DB", ServiceKind::Database).with_min_performance_index(2.0),
            )
            .unwrap();
        assert!(!l.can_host(db, s1), "BX300 (index 1) below minimum 2");
        assert!(l.can_host(db, s2), "BX600 (index 2) meets minimum");
    }

    #[test]
    fn can_host_respects_exclusivity_both_ways() {
        let (mut l, fi, s1, s2) = small_landscape();
        let db = l
            .add_service(ServiceSpec::new("DB", ServiceKind::Database).with_exclusive(true))
            .unwrap();
        // FI already on s1 → exclusive DB cannot join.
        l.start_instance(fi, s1).unwrap();
        assert!(!l.can_host(db, s1));
        assert!(l.can_host(db, s2));
        // DB on s2 → non-exclusive FI cannot join either.
        l.start_instance(db, s2).unwrap();
        assert!(!l.can_host(fi, s2));
        // A second DB instance may join its own host.
        assert!(l.can_host(db, s2));
    }

    #[test]
    fn can_host_respects_memory() {
        let (mut l, _fi, s1, _s2) = small_landscape();
        let fat = l
            .add_service(ServiceSpec::new("fat", ServiceKind::Generic).with_memory(1500))
            .unwrap();
        assert!(
            l.can_host(fat, s1),
            "2048 MB blade fits one 1500 MB instance"
        );
        l.start_instance(fat, s1).unwrap();
        assert!(!l.can_host(fat, s1), "no room for a second");
    }

    #[test]
    fn virtual_ip_formatting() {
        assert_eq!(VirtualIp::nth(0).to_string(), "10.0.0.1");
        assert_eq!(VirtualIp::nth(253).to_string(), "10.0.0.254");
        assert_eq!(VirtualIp::nth(254).to_string(), "10.0.1.1");
        assert_eq!(VirtualIp::nth(254).raw(), 254);
    }
}
