//! Server (host) specifications.
//!
//! The attribute set mirrors Table 3 of the paper — the input variables of
//! the server-selection fuzzy controller: performance index, number of CPUs,
//! CPU clock, CPU cache size, memory size, swap space and temporary disk
//! space. The *performance index* relates host processing power (the paper's
//! simulated pool uses 1 for a single-CPU FSC-BX300 blade, 2 for a dual-CPU
//! BX600, 9 for a 4-way HP BL40p).

use crate::error::LandscapeError;

/// Static description of one server in the pool.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerSpec {
    /// Unique host name (e.g. `Blade1`, `DBServer3`).
    pub name: String,
    /// Hardware category, used for grouping in the console
    /// (e.g. `FSC-BX300`, `HP-ProliantBL40p`).
    pub category: String,
    /// Relative processing power; higher is faster.
    pub performance_index: f64,
    /// Number of CPUs.
    pub num_cpus: u32,
    /// CPU clock in MHz.
    pub cpu_clock_mhz: u32,
    /// Per-CPU cache size in KB.
    pub cpu_cache_kb: u32,
    /// Main memory in MB.
    pub memory_mb: u64,
    /// Swap space in MB.
    pub swap_mb: u64,
    /// Temporary disk space in MB.
    pub temp_space_mb: u64,
}

impl ServerSpec {
    /// Create a spec with the given name and performance index; all other
    /// attributes get modest blade-like defaults and can be overridden with
    /// the builder-style `with_*` methods.
    pub fn new(name: impl Into<String>, performance_index: f64) -> Self {
        ServerSpec {
            name: name.into(),
            category: "generic".into(),
            performance_index,
            num_cpus: 1,
            cpu_clock_mhz: 1000,
            cpu_cache_kb: 512,
            memory_mb: 2048,
            swap_mb: 4096,
            temp_space_mb: 10240,
        }
    }

    /// Set the hardware category.
    pub fn with_category(mut self, category: impl Into<String>) -> Self {
        self.category = category.into();
        self
    }

    /// Set CPU topology (count, clock MHz, cache KB).
    pub fn with_cpus(mut self, num: u32, clock_mhz: u32, cache_kb: u32) -> Self {
        self.num_cpus = num;
        self.cpu_clock_mhz = clock_mhz;
        self.cpu_cache_kb = cache_kb;
        self
    }

    /// Set memory and swap sizes in MB.
    pub fn with_memory(mut self, memory_mb: u64, swap_mb: u64) -> Self {
        self.memory_mb = memory_mb;
        self.swap_mb = swap_mb;
        self
    }

    /// Set temporary disk space in MB.
    pub fn with_temp_space(mut self, temp_space_mb: u64) -> Self {
        self.temp_space_mb = temp_space_mb;
        self
    }

    /// Validate the spec.
    pub fn validate(&self) -> Result<(), LandscapeError> {
        if self.name.is_empty() {
            return Err(LandscapeError::InvalidSpec {
                message: "server name must not be empty".into(),
            });
        }
        if !self.performance_index.is_finite() || self.performance_index <= 0.0 {
            return Err(LandscapeError::InvalidSpec {
                message: format!(
                    "server `{}`: performance index must be positive, got {}",
                    self.name, self.performance_index
                ),
            });
        }
        if self.num_cpus == 0 {
            return Err(LandscapeError::InvalidSpec {
                message: format!("server `{}`: must have at least one CPU", self.name),
            });
        }
        if self.memory_mb == 0 {
            return Err(LandscapeError::InvalidSpec {
                message: format!("server `{}`: must have memory", self.name),
            });
        }
        Ok(())
    }

    /// The paper's FSC-BX300 blade: 1× Pentium III 933 MHz, 2 GB RAM,
    /// performance index 1 (Section 5.1).
    pub fn fsc_bx300(name: impl Into<String>) -> Self {
        ServerSpec::new(name, 1.0)
            .with_category("FSC-BX300")
            .with_cpus(1, 933, 512)
            .with_memory(2048, 4096)
            .with_temp_space(20_480)
    }

    /// The paper's FSC-BX600 blade: 2× Pentium III 933 MHz, 4 GB RAM,
    /// performance index 2.
    pub fn fsc_bx600(name: impl Into<String>) -> Self {
        ServerSpec::new(name, 2.0)
            .with_category("FSC-BX600")
            .with_cpus(2, 933, 512)
            .with_memory(4096, 8192)
            .with_temp_space(20_480)
    }

    /// The paper's HP ProLiant BL40p: 4× Xeon MP 2.8 GHz, 12 GB RAM,
    /// performance index 9.
    pub fn hp_bl40p(name: impl Into<String>) -> Self {
        ServerSpec::new(name, 9.0)
            .with_category("HP-ProliantBL40p")
            .with_cpus(4, 2800, 2048)
            .with_memory(12_288, 24_576)
            .with_temp_space(102_400)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_hardware_presets() {
        let b300 = ServerSpec::fsc_bx300("Blade1");
        assert_eq!(b300.performance_index, 1.0);
        assert_eq!(b300.num_cpus, 1);
        assert_eq!(b300.memory_mb, 2048);
        assert!(b300.validate().is_ok());

        let b600 = ServerSpec::fsc_bx600("Blade9");
        assert_eq!(b600.performance_index, 2.0);
        assert_eq!(b600.num_cpus, 2);
        assert_eq!(b600.memory_mb, 4096);

        let db = ServerSpec::hp_bl40p("DBServer1");
        assert_eq!(db.performance_index, 9.0);
        assert_eq!(db.num_cpus, 4);
        assert_eq!(db.cpu_clock_mhz, 2800);
        assert_eq!(db.memory_mb, 12_288);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(ServerSpec::new("", 1.0).validate().is_err());
        assert!(ServerSpec::new("x", 0.0).validate().is_err());
        assert!(ServerSpec::new("x", -1.0).validate().is_err());
        assert!(ServerSpec::new("x", f64::NAN).validate().is_err());
        let mut no_cpu = ServerSpec::new("x", 1.0);
        no_cpu.num_cpus = 0;
        assert!(no_cpu.validate().is_err());
        let mut no_mem = ServerSpec::new("x", 1.0);
        no_mem.memory_mb = 0;
        assert!(no_mem.validate().is_err());
    }

    #[test]
    fn builder_methods_chain() {
        let s = ServerSpec::new("big", 4.0)
            .with_category("custom")
            .with_cpus(8, 3200, 4096)
            .with_memory(65536, 131072)
            .with_temp_space(1_000_000);
        assert_eq!(s.category, "custom");
        assert_eq!(s.num_cpus, 8);
        assert_eq!(s.temp_space_mb, 1_000_000);
        assert!(s.validate().is_ok());
    }
}
