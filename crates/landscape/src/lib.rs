//! # autoglobe-landscape — the managed hardware/software landscape
//!
//! This crate models the world the AutoGlobe controller administers
//! (paper Sections 1, 2 and 5.1):
//!
//! * **Servers** ([`ServerSpec`]) — pooled, virtualized hardware with the
//!   attributes the server-selection controller consumes (Table 3):
//!   performance index, CPU count/clock/cache, memory, swap, temp space.
//! * **Services** ([`ServiceSpec`]) — databases, central instances and
//!   application servers, with the declarative capabilities and constraints
//!   of Tables 5 and 6: min/max instances, exclusivity, minimum performance
//!   index, and the set of allowed actions.
//! * **Instances** ([`Instance`]) — running copies of a service, each bound
//!   to a server through a *service IP address* ([`VirtualIp`]); rebinding
//!   that IP is what makes services location-independent (Section 2).
//! * **Actions** ([`Action`]) — the controller's output vocabulary
//!   (Table 2): start, stop, scale-in/out/up/down, move, priority changes.
//! * **The allocation table** ([`Landscape`]) — which instance runs where,
//!   with transactional application of actions and constraint checking
//!   ([`constraints`]).
//! * **Shard maps** ([`shard`]) — explicit deterministic partitions of the
//!   landscape for the sharded control plane: every server hashes to one
//!   shard, services hash on their own id.
//! * **Synthetic landscapes** ([`synth`]) — seeded, tiered generator for
//!   the 100×–1000× scale ladder: paper-shaped subsystems at arbitrary
//!   server counts with millions of aggregate users.
//! * **The declarative XML description language** ([`xml`]) — landscapes,
//!   service constraints and fuzzy rule bases are described in XML, parsed
//!   by a from-scratch minimal XML parser (the paper uses a proprietary
//!   XML language based on early GGF drafts; ours is isomorphic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod action;
pub mod allocation;
pub mod constraints;
pub mod error;
pub mod ids;
pub mod server;
pub mod service;
pub mod shard;
pub mod synth;
pub mod xml;

pub use action::{Action, ActionKind};
pub use allocation::{ApplyOutcome, Instance, Landscape, VirtualIp};
pub use constraints::{check_action, ConstraintViolation};
pub use error::LandscapeError;
pub use ids::{InstanceId, ServerId, ServiceId};
pub use server::ServerSpec;
pub use service::{ServiceKind, ServiceSpec};
pub use shard::{DeltaSubject, SampleRing, ShardDelta, ShardId, ShardMap, WatchSnapshot};
pub use synth::{SynthConfig, SynthLandscape, SynthWorkload};
