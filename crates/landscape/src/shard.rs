//! Deterministic landscape sharding for the distributed control plane.
//!
//! The sharded control plane partitions ownership of the landscape across
//! N supervisors: every server hashes to exactly one shard, an instance
//! belongs to its host's shard, and services (which span servers) hash on
//! their own id. The map is *explicit* — shard assignment for every server
//! known at build time is precomputed into a table, so the partition in
//! force is inspectable and stable even if the hash function ever changes
//! under it — with the hash as fallback for servers registered later.
//!
//! The hash is a fixed splitmix64 finalizer over the raw id, so the same
//! landscape and shard count always produce the same partition, on any
//! host, in any process: the partition is part of the deterministic seed
//! contract, not an ephemeral runtime artifact.

use crate::allocation::Landscape;
use crate::ids::{ServerId, ServiceId};
use autoglobe_rng::splitmix64;

/// Index of a shard — also the id of the supervisor that owns it at
/// construction of a sharded control plane.
pub type ShardId = usize;

/// Domain salt separating the server hash stream from the service one, so
/// `srv#k` and `svc#k` do not systematically land on the same shard.
const SERVER_SALT: u64 = 0x5EED_5A4D_0001;
const SERVICE_SALT: u64 = 0x5EED_5A4D_0002;

/// An explicit, deterministic partition of a landscape into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    /// `server index → shard`, for every server known at build time.
    assignment: Vec<ShardId>,
}

impl ShardMap {
    /// Partition `landscape` into `shards` shards by hashing each
    /// `ServerId` into the explicit assignment table.
    ///
    /// # Panics
    /// Panics when `shards` is zero — an empty partition owns nothing.
    pub fn new(landscape: &Landscape, shards: usize) -> Self {
        assert!(shards >= 1, "a shard map needs at least one shard");
        let bound = landscape
            .server_ids()
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0);
        let mut assignment = vec![0; bound];
        for server in landscape.server_ids() {
            assignment[server.index()] = hash_shard(server.raw(), SERVER_SALT, shards);
        }
        ShardMap { shards, assignment }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `server`. Servers beyond the build-time table fall
    /// back to the same hash the table was built from, so late-registered
    /// servers get a stable home without rebuilding the map.
    pub fn shard_of(&self, server: ServerId) -> ShardId {
        self.assignment
            .get(server.index())
            .copied()
            .unwrap_or_else(|| hash_shard(server.raw(), SERVER_SALT, self.shards))
    }

    /// The shard owning `service`. Services span servers, so they hash on
    /// their own id rather than inheriting a host's shard.
    pub fn shard_of_service(&self, service: ServiceId) -> ShardId {
        hash_shard(service.raw(), SERVICE_SALT, self.shards)
    }

    /// All servers of `landscape` assigned to `shard`, ascending.
    pub fn servers_of(&self, landscape: &Landscape, shard: ShardId) -> Vec<ServerId> {
        landscape
            .server_ids()
            .filter(|&s| self.shard_of(s) == shard)
            .collect()
    }
}

/// splitmix64 finalizer over `(salt, raw id)` reduced modulo the shard
/// count. One mixing round is enough: consecutive ids must spread across
/// shards, not satisfy any cryptographic property.
fn hash_shard(raw: u32, salt: u64, shards: usize) -> ShardId {
    let mut state = salt ^ u64::from(raw);
    (splitmix64(&mut state) % shards as u64) as ShardId
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;
    use crate::service::{ServiceKind, ServiceSpec};

    fn landscape(servers: u32) -> Landscape {
        let mut l = Landscape::default();
        for i in 0..servers {
            l.add_server(ServerSpec::new(format!("srv{i}"), 1.0))
                .unwrap();
        }
        l.add_service(ServiceSpec::new("svc", ServiceKind::ApplicationServer))
            .unwrap();
        l
    }

    #[test]
    fn partition_is_total_deterministic_and_explicit() {
        let l = landscape(19);
        let a = ShardMap::new(&l, 4);
        let b = ShardMap::new(&l, 4);
        assert_eq!(a, b, "same landscape + shard count ⇒ same partition");
        for server in l.server_ids() {
            let shard = a.shard_of(server);
            assert!(shard < 4, "{server} assigned out-of-range shard {shard}");
            assert!(a.servers_of(&l, shard).contains(&server));
        }
        // The explicit table and the hash fallback agree, so a server
        // registered after the map was built lands where a rebuild would
        // have put it.
        let rebuilt = ShardMap::new(&landscape(40), 4);
        for server in landscape(40).server_ids() {
            assert_eq!(a.shard_of(server), rebuilt.shard_of(server));
        }
    }

    #[test]
    fn one_shard_owns_everything_and_many_shards_spread() {
        let l = landscape(19);
        let single = ShardMap::new(&l, 1);
        for server in l.server_ids() {
            assert_eq!(single.shard_of(server), 0);
        }
        for service in l.service_ids() {
            assert_eq!(single.shard_of_service(service), 0);
        }
        let spread = ShardMap::new(&l, 4);
        let owners: std::collections::BTreeSet<ShardId> =
            l.server_ids().map(|s| spread.shard_of(s)).collect();
        assert!(
            owners.len() > 1,
            "19 servers hashed into 4 shards must not collapse onto one owner"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardMap::new(&landscape(3), 0);
    }
}
