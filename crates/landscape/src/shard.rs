//! Deterministic landscape sharding for the distributed control plane.
//!
//! The sharded control plane partitions ownership of the landscape across
//! N supervisors: every server hashes to exactly one shard, an instance
//! belongs to its host's shard, and services (which span servers) hash on
//! their own id. The map is *explicit* — shard assignment for every server
//! known at build time is precomputed into a table, so the partition in
//! force is inspectable and stable even if the hash function ever changes
//! under it — with the hash as fallback for servers registered later.
//!
//! The hash is a fixed splitmix64 finalizer over the raw id, so the same
//! landscape and shard count always produce the same partition, on any
//! host, in any process: the partition is part of the deterministic seed
//! contract, not an ephemeral runtime artifact.

use crate::allocation::Landscape;
use crate::ids::{InstanceId, ServerId, ServiceId};
use autoglobe_rng::splitmix64;
use std::collections::VecDeque;

/// Index of a shard — also the id of the supervisor that owns it at
/// construction of a sharded control plane.
pub type ShardId = usize;

/// Domain salt separating the server hash stream from the service one, so
/// `srv#k` and `svc#k` do not systematically land on the same shard.
const SERVER_SALT: u64 = 0x5EED_5A4D_0001;
const SERVICE_SALT: u64 = 0x5EED_5A4D_0002;

/// An explicit, deterministic partition of a landscape into shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    /// `server index → shard`, for every server known at build time.
    assignment: Vec<ShardId>,
}

impl ShardMap {
    /// Partition `landscape` into `shards` shards by hashing each
    /// `ServerId` into the explicit assignment table.
    ///
    /// # Panics
    /// Panics when `shards` is zero — an empty partition owns nothing.
    pub fn new(landscape: &Landscape, shards: usize) -> Self {
        assert!(shards >= 1, "a shard map needs at least one shard");
        let bound = landscape
            .server_ids()
            .map(|s| s.index() + 1)
            .max()
            .unwrap_or(0);
        let mut assignment = vec![0; bound];
        for server in landscape.server_ids() {
            assignment[server.index()] = hash_shard(server.raw(), SERVER_SALT, shards);
        }
        ShardMap { shards, assignment }
    }

    /// Number of shards in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `server`. Servers beyond the build-time table fall
    /// back to the same hash the table was built from, so late-registered
    /// servers get a stable home without rebuilding the map.
    pub fn shard_of(&self, server: ServerId) -> ShardId {
        self.assignment
            .get(server.index())
            .copied()
            .unwrap_or_else(|| hash_shard(server.raw(), SERVER_SALT, self.shards))
    }

    /// The shard owning `service`. Services span servers, so they hash on
    /// their own id rather than inheriting a host's shard.
    pub fn shard_of_service(&self, service: ServiceId) -> ShardId {
        hash_shard(service.raw(), SERVICE_SALT, self.shards)
    }

    /// All servers of `landscape` assigned to `shard`, ascending.
    pub fn servers_of(&self, landscape: &Landscape, shard: ShardId) -> Vec<ServerId> {
        landscape
            .server_ids()
            .filter(|&s| self.shard_of(s) == shard)
            .collect()
    }
}

/// splitmix64 finalizer over `(salt, raw id)` reduced modulo the shard
/// count. One mixing round is enough: consecutive ids must spread across
/// shards, not satisfy any cryptographic property.
fn hash_shard(raw: u32, salt: u64, shards: usize) -> ShardId {
    let mut state = salt ^ u64::from(raw);
    (splitmix64(&mut state) % shards as u64) as ShardId
}

/// A monitored subject in delta records, by raw id.
///
/// The monitor crate's `Subject` lives above this crate, so delta
/// replication (which rides at the landscape layer) names subjects by
/// their raw landscape ids. The derived `Ord` matches `Subject`'s:
/// servers before services before instances, ascending by id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeltaSubject {
    /// A pooled server.
    Server(ServerId),
    /// A service (aggregate over its instances).
    Service(ServiceId),
    /// One running instance of a service.
    Instance(InstanceId),
}

/// A replicated advisor observation state, in plain seconds.
///
/// Mirrors the monitor crate's `WatchState` with `SimTime` flattened to
/// seconds, so the landscape layer can carry it without depending on the
/// monitor crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchSnapshot {
    /// Nothing unusual.
    Quiet,
    /// An overload watch window opened at `since_secs`.
    Overload {
        /// Window open time, in seconds of simulated time.
        since_secs: u64,
    },
    /// An idle watch window opened at `since_secs`.
    Idle {
        /// Window open time, in seconds of simulated time.
        since_secs: u64,
    },
}

/// The compact per-shard record a shard owner publishes at interval close.
///
/// Under delta replication only the lease owner of a shard ingests that
/// shard's measurement stream into its monitoring/archive state; everything
/// other replicas need is carried here:
///
/// * `loads` — the shard's measurements of this tick, in arrival order.
///   Non-owners apply them to their read-only replicated load view (the
///   planning input for cross-shard candidate hosts) without touching any
///   monitoring state.
/// * `watches` — the end-of-tick observation state of every advisor the
///   owner runs for this shard. Absorbed into the plane's [`SampleRing`],
///   these let a successor rebuild the owner's advisors exactly if the
///   owner dies (re-adoption replays ring samples newer than `now_secs`
///   through a restored advisor).
/// * `recoveries` — failure replays the owner performed this tick
///   (subject + time in seconds), mirrored by every other replica.
///
/// Landscape mutations (completed actions) are controller-typed
/// `ActionRecord`s and replicate inline at the `apply_remote` call sites of
/// the control plane — they are the mutation section of the delta, carried
/// one layer up.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardDelta {
    /// The shard this delta describes.
    pub shard: ShardId,
    /// The lease epoch the owner held when publishing.
    pub epoch: u64,
    /// Interval-close time, in seconds of simulated time.
    pub now_secs: u64,
    /// This tick's measurements for the shard, in arrival order:
    /// `(subject, cpu, mem)`.
    pub loads: Vec<(DeltaSubject, f64, f64)>,
    /// End-of-tick advisor states for the shard's monitored subjects.
    pub watches: Vec<(DeltaSubject, WatchSnapshot)>,
    /// Failure replays performed this tick: `(subject, time_secs)`.
    pub recoveries: Vec<(DeltaSubject, u64)>,
}

impl ShardDelta {
    /// An empty delta for `shard` at `epoch`, closed at `now_secs`.
    pub fn new(shard: ShardId, epoch: u64, now_secs: u64) -> Self {
        ShardDelta {
            shard,
            epoch,
            now_secs,
            loads: Vec::new(),
            watches: Vec::new(),
            recoveries: Vec::new(),
        }
    }

    /// True when the delta carries nothing.
    pub fn is_empty(&self) -> bool {
        self.loads.is_empty() && self.watches.is_empty() && self.recoveries.is_empty()
    }
}

/// One subject's retained history in the plane-global [`SampleRing`].
#[derive(Debug, Clone, Default)]
struct RingLane {
    /// `(time_secs, cpu, mem)`, oldest first, within retention of the
    /// newest sample.
    samples: VecDeque<(u64, f64, f64)>,
    /// The latest absorbed watch snapshot and the delta close time it was
    /// taken at.
    watch: Option<(WatchSnapshot, u64)>,
}

/// Plane-global bounded sample history plus latest advisor snapshots.
///
/// The sharded control plane feeds every routed measurement into the ring
/// once (dense per-kind lanes, same eviction rule as the monitor crate's
/// `LoadMonitor`: newest-sample time minus retention) and absorbs each
/// published [`ShardDelta`]'s watch states. When a shard owner dies, the
/// re-adopting successor rebuilds the dead owner's advisors from the ring:
/// samples up to the snapshot time restore the monitor window, samples
/// after it replay the headless interval.
#[derive(Debug, Clone)]
pub struct SampleRing {
    retention_secs: u64,
    servers: Vec<RingLane>,
    services: Vec<RingLane>,
    instances: Vec<RingLane>,
}

impl SampleRing {
    /// A ring retaining `retention_secs` of history per subject — at least
    /// the advisors' own retention, or restores will truncate the window.
    pub fn new(retention_secs: u64) -> Self {
        SampleRing {
            retention_secs,
            servers: Vec::new(),
            services: Vec::new(),
            instances: Vec::new(),
        }
    }

    fn lane_mut(&mut self, subject: DeltaSubject) -> &mut RingLane {
        let (lane, idx) = match subject {
            DeltaSubject::Server(id) => (&mut self.servers, id.index()),
            DeltaSubject::Service(id) => (&mut self.services, id.index()),
            DeltaSubject::Instance(id) => (&mut self.instances, id.index()),
        };
        if lane.len() <= idx {
            lane.resize_with(idx + 1, RingLane::default);
        }
        &mut lane[idx]
    }

    fn lane(&self, subject: DeltaSubject) -> Option<&RingLane> {
        match subject {
            DeltaSubject::Server(id) => self.servers.get(id.index()),
            DeltaSubject::Service(id) => self.services.get(id.index()),
            DeltaSubject::Instance(id) => self.instances.get(id.index()),
        }
    }

    /// Record one measurement. Out-of-order samples are dropped and
    /// samples older than retention (relative to the lane's newest) are
    /// evicted — the exact eviction rule of the monitor crate's
    /// `LoadMonitor`, so a restore replays the same window a live advisor
    /// would have retained.
    pub fn push(&mut self, subject: DeltaSubject, time_secs: u64, cpu: f64, mem: f64) {
        let retention = self.retention_secs;
        let lane = self.lane_mut(subject);
        if let Some(&(back, _, _)) = lane.samples.back() {
            if time_secs < back {
                return;
            }
        }
        lane.samples.push_back((time_secs, cpu, mem));
        let cutoff = time_secs.saturating_sub(retention);
        while let Some(&(front, _, _)) = lane.samples.front() {
            if front < cutoff {
                lane.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Absorb a published delta's advisor snapshots.
    pub fn absorb(&mut self, delta: &ShardDelta) {
        for &(subject, snapshot) in &delta.watches {
            self.lane_mut(subject).watch = Some((snapshot, delta.now_secs));
        }
    }

    /// Retained samples for `subject`, oldest first: `(time_secs, cpu, mem)`.
    pub fn samples_of(&self, subject: DeltaSubject) -> impl Iterator<Item = (u64, f64, f64)> + '_ {
        self.lane(subject)
            .map(|l| l.samples.iter().copied())
            .into_iter()
            .flatten()
    }

    /// The latest absorbed snapshot for `subject` and when it was taken:
    /// `(snapshot, snapshot_time_secs)`.
    pub fn watch_of(&self, subject: DeltaSubject) -> Option<(WatchSnapshot, u64)> {
        self.lane(subject).and_then(|l| l.watch)
    }

    /// Drop a departed subject's history (e.g. a stopped instance).
    pub fn remove(&mut self, subject: DeltaSubject) {
        let lane = match subject {
            DeltaSubject::Server(id) => self.servers.get_mut(id.index()),
            DeltaSubject::Service(id) => self.services.get_mut(id.index()),
            DeltaSubject::Instance(id) => self.instances.get_mut(id.index()),
        };
        if let Some(lane) = lane {
            lane.samples.clear();
            lane.watch = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerSpec;
    use crate::service::{ServiceKind, ServiceSpec};

    fn landscape(servers: u32) -> Landscape {
        let mut l = Landscape::default();
        for i in 0..servers {
            l.add_server(ServerSpec::new(format!("srv{i}"), 1.0))
                .unwrap();
        }
        l.add_service(ServiceSpec::new("svc", ServiceKind::ApplicationServer))
            .unwrap();
        l
    }

    #[test]
    fn partition_is_total_deterministic_and_explicit() {
        let l = landscape(19);
        let a = ShardMap::new(&l, 4);
        let b = ShardMap::new(&l, 4);
        assert_eq!(a, b, "same landscape + shard count ⇒ same partition");
        for server in l.server_ids() {
            let shard = a.shard_of(server);
            assert!(shard < 4, "{server} assigned out-of-range shard {shard}");
            assert!(a.servers_of(&l, shard).contains(&server));
        }
        // The explicit table and the hash fallback agree, so a server
        // registered after the map was built lands where a rebuild would
        // have put it.
        let rebuilt = ShardMap::new(&landscape(40), 4);
        for server in landscape(40).server_ids() {
            assert_eq!(a.shard_of(server), rebuilt.shard_of(server));
        }
    }

    #[test]
    fn one_shard_owns_everything_and_many_shards_spread() {
        let l = landscape(19);
        let single = ShardMap::new(&l, 1);
        for server in l.server_ids() {
            assert_eq!(single.shard_of(server), 0);
        }
        for service in l.service_ids() {
            assert_eq!(single.shard_of_service(service), 0);
        }
        let spread = ShardMap::new(&l, 4);
        let owners: std::collections::BTreeSet<ShardId> =
            l.server_ids().map(|s| spread.shard_of(s)).collect();
        assert!(
            owners.len() > 1,
            "19 servers hashed into 4 shards must not collapse onto one owner"
        );
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        ShardMap::new(&landscape(3), 0);
    }

    #[test]
    fn ring_retention_mirrors_load_monitor_eviction() {
        let mut ring = SampleRing::new(600);
        let s = DeltaSubject::Server(ServerId::new(0));
        for minute in 0..30u64 {
            ring.push(s, minute * 60, 0.5, 0.1);
        }
        // Newest sample at 1740 s; cutoff 1140 s; survivors 1140..=1740.
        let kept: Vec<u64> = ring.samples_of(s).map(|(t, _, _)| t).collect();
        assert_eq!(kept.len(), 11);
        assert_eq!(kept[0], 1140);
        assert_eq!(*kept.last().unwrap(), 1740);
        // Out-of-order pushes are dropped, like LoadMonitor::record.
        ring.push(s, 0, 0.9, 0.9);
        assert_eq!(ring.samples_of(s).count(), 11);
    }

    #[test]
    fn ring_absorbs_snapshots_and_forgets_removed_subjects() {
        let mut ring = SampleRing::new(600);
        let srv = DeltaSubject::Server(ServerId::new(2));
        let svc = DeltaSubject::Service(ServiceId::new(1));
        ring.push(srv, 60, 0.8, 0.2);
        let mut delta = ShardDelta::new(3, 7, 120);
        assert!(delta.is_empty());
        delta
            .watches
            .push((srv, WatchSnapshot::Overload { since_secs: 60 }));
        delta.watches.push((svc, WatchSnapshot::Quiet));
        delta.loads.push((srv, 0.8, 0.2));
        assert!(!delta.is_empty());
        ring.absorb(&delta);
        assert_eq!(
            ring.watch_of(srv),
            Some((WatchSnapshot::Overload { since_secs: 60 }, 120))
        );
        assert_eq!(ring.watch_of(svc), Some((WatchSnapshot::Quiet, 120)));
        assert_eq!(ring.watch_of(DeltaSubject::Server(ServerId::new(9))), None);
        ring.remove(srv);
        assert_eq!(ring.samples_of(srv).count(), 0);
        assert_eq!(ring.watch_of(srv), None);
    }

    #[test]
    fn delta_subject_order_is_servers_services_instances_ascending() {
        let mut subjects = vec![
            DeltaSubject::Instance(InstanceId::new(0)),
            DeltaSubject::Service(ServiceId::new(1)),
            DeltaSubject::Server(ServerId::new(5)),
            DeltaSubject::Service(ServiceId::new(0)),
            DeltaSubject::Server(ServerId::new(1)),
        ];
        subjects.sort();
        assert_eq!(
            subjects,
            vec![
                DeltaSubject::Server(ServerId::new(1)),
                DeltaSubject::Server(ServerId::new(5)),
                DeltaSubject::Service(ServiceId::new(0)),
                DeltaSubject::Service(ServiceId::new(1)),
                DeltaSubject::Instance(InstanceId::new(0)),
            ]
        );
    }
}
