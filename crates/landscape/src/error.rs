//! Error types for landscape manipulation and description parsing.

use crate::constraints::ConstraintViolation;
use crate::ids::{InstanceId, ServerId, ServiceId};
use std::fmt;

/// Errors raised while building or mutating a [`crate::Landscape`] or while
/// parsing a landscape description.
#[derive(Debug, Clone, PartialEq)]
pub enum LandscapeError {
    /// A server name was used twice.
    DuplicateServer {
        /// The duplicated name.
        name: String,
    },
    /// A service name was used twice.
    DuplicateService {
        /// The duplicated name.
        name: String,
    },
    /// An id did not resolve.
    UnknownServer {
        /// The missing id.
        id: ServerId,
    },
    /// An id did not resolve.
    UnknownService {
        /// The missing id.
        id: ServiceId,
    },
    /// An id did not resolve.
    UnknownInstance {
        /// The missing id.
        id: InstanceId,
    },
    /// A name lookup failed.
    NoSuchName {
        /// What was looked up ("server" or "service").
        kind: &'static str,
        /// The name that failed to resolve.
        name: String,
    },
    /// An action was rejected by constraint checking.
    Constraint(ConstraintViolation),
    /// XML syntax error.
    Xml {
        /// Byte offset of the problem.
        position: usize,
        /// Human-readable description.
        message: String,
    },
    /// The XML was well-formed but did not describe a valid landscape.
    Schema {
        /// Human-readable description.
        message: String,
    },
    /// A specification value was invalid (negative performance index, …).
    InvalidSpec {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for LandscapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LandscapeError::DuplicateServer { name } => write!(f, "duplicate server `{name}`"),
            LandscapeError::DuplicateService { name } => write!(f, "duplicate service `{name}`"),
            LandscapeError::UnknownServer { id } => write!(f, "unknown server {id}"),
            LandscapeError::UnknownService { id } => write!(f, "unknown service {id}"),
            LandscapeError::UnknownInstance { id } => write!(f, "unknown instance {id}"),
            LandscapeError::NoSuchName { kind, name } => write!(f, "no {kind} named `{name}`"),
            LandscapeError::Constraint(v) => write!(f, "constraint violation: {v}"),
            LandscapeError::Xml { position, message } => {
                write!(f, "XML error at byte {position}: {message}")
            }
            LandscapeError::Schema { message } => write!(f, "landscape schema error: {message}"),
            LandscapeError::InvalidSpec { message } => {
                write!(f, "invalid specification: {message}")
            }
        }
    }
}

impl std::error::Error for LandscapeError {}

impl From<ConstraintViolation> for LandscapeError {
    fn from(v: ConstraintViolation) -> Self {
        LandscapeError::Constraint(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            LandscapeError::DuplicateServer {
                name: "Blade1".into()
            }
            .to_string(),
            "duplicate server `Blade1`"
        );
        assert_eq!(
            LandscapeError::NoSuchName {
                kind: "server",
                name: "X".into()
            }
            .to_string(),
            "no server named `X`"
        );
        assert!(LandscapeError::UnknownInstance {
            id: InstanceId::new(7)
        }
        .to_string()
        .contains("inst#7"));
    }
}
