//! Synthetic landscape generation for the scale ladder.
//!
//! The paper's evaluation landscape has 19 servers and ~10 services
//! (Figure 11) — too small to expose superlinear behaviour in trigger
//! decisions or fan-out overheads. [`generate`] builds structurally similar
//! landscapes at any size: tiered server pools, per-subsystem service
//! stacks (database + central instance + application servers) with the
//! co-location and mobility constraints of Tables 5/6, an initial
//! allocation that satisfies those constraints, and aggregate user counts
//! that reach into the millions at the ~2,000-server rung.
//!
//! Generation is deterministic under [`SynthConfig::seed`]: the same
//! configuration always yields a byte-identical landscape and workload
//! list, so scale benchmarks and their CI smokes are reproducible.

use crate::action::ActionKind;
use crate::allocation::Landscape;
use crate::ids::{ServerId, ServiceId};
use crate::server::ServerSpec;
use crate::service::{ServiceKind, ServiceSpec};
use autoglobe_rng::Rng;

/// Parameters of one synthetic landscape.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Total number of servers in the pool.
    pub servers: usize,
    /// RNG seed — same seed, same landscape, byte for byte.
    pub seed: u64,
    /// Fraction of the application-tier capacity the aggregate user base
    /// demands at the daily peak (the paper's pool runs 60–80 % busy
    /// during main activity; the headroom is what the controller manages).
    pub peak_utilization: f64,
    /// CPU demand per interactive user on a performance-index-1 host
    /// (the paper calibrates ~150 users per index unit, ≈ 0.005).
    pub load_per_user: f64,
    /// Actions the application services allow (constrained-mobility style
    /// scale-in/scale-out by default; databases and central instances are
    /// always immobile, per Table 5).
    pub app_actions: Vec<ActionKind>,
}

impl SynthConfig {
    /// A configuration for `servers` hosts with the default service mix,
    /// constraint tables and calibration.
    pub fn sized(servers: usize, seed: u64) -> Self {
        SynthConfig {
            servers,
            seed,
            peak_utilization: 0.65,
            load_per_user: 0.004,
            app_actions: vec![ActionKind::ScaleOut, ActionKind::ScaleIn],
        }
    }
}

/// The workload coupling of one generated application service — enough for
/// a simulator to build its daily curves without re-deriving the topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthWorkload {
    /// Application service name.
    pub service: String,
    /// The subsystem's central-instance service.
    pub ci_service: String,
    /// The subsystem's database service.
    pub db_service: String,
    /// User base at the 100 % level.
    pub users: f64,
    /// True for the subsystem's batch-style service (night window).
    pub night_batch: bool,
    /// CPU demand per active user on the central instance.
    pub ci_load_per_user: f64,
    /// CPU demand per active user on the database.
    pub db_load_per_user: f64,
}

/// A generated landscape plus its workload couplings.
#[derive(Debug, Clone)]
pub struct SynthLandscape {
    /// Servers, services and the initial allocation.
    pub landscape: Landscape,
    /// One entry per application service.
    pub workloads: Vec<SynthWorkload>,
}

impl SynthLandscape {
    /// Aggregate user base over all application services.
    pub fn total_users(&self) -> f64 {
        self.workloads.iter().map(|w| w.users).sum()
    }

    /// Verify the initial allocation against the landscape's own declared
    /// constraints: exclusivity (both directions), minimum performance
    /// index and per-server memory. Returns the first violation found.
    pub fn validate_allocation(&self) -> Result<(), String> {
        let l = &self.landscape;
        for server in l.server_ids() {
            let srv = l.server(server).expect("known server");
            let residents = l.instances_on(server);
            let mut services: Vec<ServiceId> = residents
                .iter()
                .map(|i| l.instance(*i).expect("live instance").service)
                .collect();
            services.sort_unstable();
            services.dedup();
            let mut mem = 0u64;
            for &svc in &services {
                let spec = l.service(svc).expect("known service");
                if spec.exclusive && services.len() > 1 {
                    return Err(format!(
                        "exclusive service {} shares {} with {} other service(s)",
                        spec.name,
                        srv.name,
                        services.len() - 1
                    ));
                }
                if let Some(min_idx) = spec.min_performance_index {
                    if srv.performance_index < min_idx {
                        return Err(format!(
                            "{} (min index {min_idx}) placed on {} (index {})",
                            spec.name, srv.name, srv.performance_index
                        ));
                    }
                }
            }
            for &inst in &residents {
                let svc = l.instance(inst).expect("live instance").service;
                mem += l
                    .service(svc)
                    .expect("known service")
                    .memory_per_instance_mb;
            }
            if mem > srv.memory_mb {
                return Err(format!(
                    "{} memory over-committed: {mem} MB of {} MB",
                    srv.name, srv.memory_mb
                ));
            }
        }
        Ok(())
    }
}

/// The synthetic hardware tiers. The paper's pool spans performance
/// indices 1–9 (BX300/BX600/BL40p); a landscape two decades later spans a
/// wider range, with a dedicated database class that only database
/// services (minimum performance index 10) may claim.
const TIERS: [(&str, f64, u32, u32, u32, u64); 4] = [
    // (category, perf index, cpus, clock MHz, cache KB, memory MB)
    ("Edge", 2.0, 2, 2400, 1024, 8_192),
    ("Core", 4.0, 4, 2600, 2048, 16_384),
    ("Accel", 8.0, 8, 2800, 4096, 32_768),
    ("DbClass", 16.0, 16, 2600, 8192, 65_536),
];

/// Databases only accept hosts at or above this performance index — with
/// the tier table above, exactly the `DbClass` machines.
const DB_MIN_PERFORMANCE_INDEX: f64 = 10.0;

/// Build the tiered server pool: one `DbClass` machine per 16 servers
/// (at least one), one `Accel` per 8, the rest split between `Core` and
/// `Edge`. Returns the per-tier id lists.
fn build_servers(landscape: &mut Landscape, total: usize) -> [Vec<ServerId>; 4] {
    let db = (total / 16).max(1).min(total);
    let accel = (total / 8).min(total - db);
    let core = (total - db - accel) / 2;
    let edge = total - db - accel - core;
    let mut ids: [Vec<ServerId>; 4] = Default::default();
    for (tier, count) in [(0, edge), (1, core), (2, accel), (3, db)] {
        let (category, perf, cpus, clock, cache, memory) = TIERS[tier];
        for n in 1..=count {
            let spec = ServerSpec::new(format!("{category}{n}"), perf)
                .with_category(category)
                .with_cpus(cpus, clock, cache)
                .with_memory(memory, memory * 2)
                .with_temp_space(memory * 4);
            ids[tier].push(landscape.add_server(spec).expect("unique server name"));
        }
    }
    ids
}

/// Generate a deterministic synthetic landscape for `config`.
///
/// Topology: one subsystem per `DbClass` server. Each subsystem gets a
/// database (exclusive on every second subsystem, minimum performance
/// index [`DB_MIN_PERFORMANCE_INDEX`]), a central instance and two
/// application services — one interactive, one night-batch. Non-database
/// servers are dealt round-robin to the subsystems; roughly 60 % of each
/// subsystem's share receives an initial application instance (the rest is
/// the idle pool the controller scales into), with the RNG choosing which.
/// User counts are sized so the subsystem's peak demand is
/// `peak_utilization` of its application-tier capacity.
pub fn generate(config: &SynthConfig) -> SynthLandscape {
    assert!(config.servers >= 4, "need at least 4 servers");
    let mut rng = Rng::seed_from_u64(config.seed ^ 0x5EED_5CA1E);
    let mut landscape = Landscape::new();
    let [edge, core, accel, db_hosts] = build_servers(&mut landscape, config.servers);

    let subsystems = db_hosts.len();
    // Deal the application-tier servers (everything but DbClass)
    // round-robin to the subsystems, interleaving tiers so every
    // subsystem sees a similar mix.
    let mut app_hosts: Vec<Vec<ServerId>> = vec![Vec::new(); subsystems];
    for (k, server) in edge.iter().chain(&core).chain(&accel).copied().enumerate() {
        app_hosts[k % subsystems].push(server);
    }

    let mut workloads = Vec::new();
    for (j, db_host) in db_hosts.iter().enumerate() {
        let sub = format!("Sub{}", j + 1);
        let hosts = &mut app_hosts[j];
        hosts.sort_unstable();
        let capacity: f64 = hosts
            .iter()
            .map(|&s| landscape.server(s).expect("known server").performance_index)
            .sum();

        // Database: the subsystem's anchor, pinned to its DbClass machine.
        let db_svc = landscape
            .add_service(
                ServiceSpec::new(format!("DB-{sub}"), ServiceKind::Database)
                    .with_subsystem(&sub)
                    .with_exclusive(j % 2 == 0)
                    .with_min_performance_index(DB_MIN_PERFORMANCE_INDEX)
                    .with_instances(1, Some(1))
                    .immobile()
                    .with_load_model(0.05, 0.0)
                    .with_memory(16_384),
            )
            .expect("unique service name");
        landscape
            .start_instance(db_svc, *db_host)
            .expect("database placement");

        // Central instance: one immobile lock manager per subsystem.
        let ci_svc = landscape
            .add_service(
                ServiceSpec::new(format!("CI-{sub}"), ServiceKind::CentralInstance)
                    .with_subsystem(&sub)
                    .with_instances(1, Some(1))
                    .immobile()
                    .with_load_model(0.05, 0.0)
                    .with_memory(1_024),
            )
            .expect("unique service name");

        // Two application services per subsystem: interactive + batch.
        let max_instances = hosts.len().max(1) as u32;
        let mut app = |name: String| -> ServiceId {
            landscape
                .add_service(
                    ServiceSpec::new(name, ServiceKind::ApplicationServer)
                        .with_subsystem(&sub)
                        .with_instances(1, Some(max_instances))
                        .with_allowed_actions(config.app_actions.iter().copied())
                        .with_load_model(0.05, config.load_per_user)
                        .with_memory(512),
                )
                .expect("unique service name")
        };
        let online = app(format!("OLTP-{sub}"));
        let batch = app(format!("Batch-{sub}"));

        // Initial allocation: CI on the first eligible host, then
        // application instances on ~60 % of the subsystem's share, the
        // RNG picking which hosts and alternating the two services.
        let ci_host = hosts
            .iter()
            .copied()
            .find(|&s| landscape.can_host(ci_svc, s))
            .unwrap_or(*db_host);
        landscape
            .start_instance(ci_svc, ci_host)
            .expect("central-instance placement");

        let seats = (hosts.len() * 3).div_ceil(5).max(2.min(hosts.len()));
        let mut pool = hosts.clone();
        for seat in 0..seats {
            let service = if seat % 2 == 0 { online } else { batch };
            // Draw hosts until one passes the constraint check (memory on
            // the CI host may already be tight on tiny configurations).
            let mut placed = false;
            while !pool.is_empty() {
                let pick = rng.random_below(pool.len());
                let host = pool.swap_remove(pick);
                if landscape.can_host(service, host) {
                    landscape
                        .start_instance(service, host)
                        .expect("application placement");
                    placed = true;
                    break;
                }
            }
            if !placed {
                break;
            }
        }

        // Size the user base to the subsystem's application capacity; the
        // interactive service carries 60 % of it, the batch service 40 %.
        let users = config.peak_utilization * capacity / config.load_per_user;
        for (service, share, night_batch) in [(online, 0.6, false), (batch, 0.4, true)] {
            let name = landscape
                .service(service)
                .expect("known service")
                .name
                .clone();
            workloads.push(SynthWorkload {
                service: name,
                ci_service: format!("CI-{sub}"),
                db_service: format!("DB-{sub}"),
                users: users * share,
                night_batch,
                ci_load_per_user: config.load_per_user * 0.06,
                db_load_per_user: config.load_per_user * 0.43,
            });
        }
    }

    let synth = SynthLandscape {
        landscape,
        workloads,
    };
    debug_assert_eq!(synth.validate_allocation(), Ok(()));
    synth
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ladder sizes the scale benchmark walks (plus the paper's 19).
    const RUNGS: [usize; 4] = [50, 200, 1000, 2000];

    #[test]
    fn same_seed_yields_byte_identical_landscapes_at_every_rung() {
        for servers in RUNGS {
            let a = generate(&SynthConfig::sized(servers, 42));
            let b = generate(&SynthConfig::sized(servers, 42));
            assert_eq!(
                format!("{a:?}"),
                format!("{b:?}"),
                "{servers}-server landscape not reproducible"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::sized(200, 1));
        let b = generate(&SynthConfig::sized(200, 2));
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn generated_allocations_satisfy_their_own_constraints() {
        for servers in RUNGS {
            let synth = generate(&SynthConfig::sized(servers, 42));
            assert_eq!(
                synth.validate_allocation(),
                Ok(()),
                "{servers}-server allocation violates its own constraints"
            );
            assert_eq!(synth.landscape.num_servers(), servers);
        }
    }

    #[test]
    fn databases_are_segregated_and_constrained() {
        let synth = generate(&SynthConfig::sized(200, 42));
        let l = &synth.landscape;
        for service in l.service_ids() {
            let spec = l.service(service).unwrap();
            if spec.kind == ServiceKind::Database {
                assert_eq!(spec.min_performance_index, Some(DB_MIN_PERFORMANCE_INDEX));
                assert!(spec.allowed_actions.is_empty(), "databases are immobile");
                for inst in l.instances_of(service) {
                    let host = l.instance(inst).unwrap().server;
                    assert!(l.server(host).unwrap().performance_index >= DB_MIN_PERFORMANCE_INDEX);
                }
            }
        }
        // Exclusivity alternates, so both flavours are exercised.
        let flags: Vec<bool> = l
            .service_ids()
            .filter_map(|s| {
                let spec = l.service(s).unwrap();
                (spec.kind == ServiceKind::Database).then_some(spec.exclusive)
            })
            .collect();
        assert!(flags.iter().any(|&e| e) && flags.iter().any(|&e| !e));
    }

    #[test]
    fn the_top_rung_serves_millions_of_users() {
        let synth = generate(&SynthConfig::sized(2000, 42));
        assert!(
            synth.total_users() > 1_000_000.0,
            "2000-server rung carries only {} users",
            synth.total_users()
        );
        // And the workload couplings resolve against the landscape.
        for w in &synth.workloads {
            assert!(synth.landscape.service_by_name(&w.service).is_ok());
            assert!(synth.landscape.service_by_name(&w.ci_service).is_ok());
            assert!(synth.landscape.service_by_name(&w.db_service).is_ok());
        }
    }

    #[test]
    fn every_service_has_at_least_one_instance() {
        let synth = generate(&SynthConfig::sized(50, 7));
        for service in synth.landscape.service_ids() {
            assert!(
                synth.landscape.instance_count_of(service) >= 1,
                "service {:?} has no initial instance",
                synth.landscape.service(service).unwrap().name
            );
        }
    }
}
